#!/usr/bin/env python3
"""Mobile / dynamic network scenario: synchronization under continuous churn.

A convoy of mobile nodes drives along a road: every node always hears its
immediate predecessor and successor (the backbone of the line stays up), but
the longer-range links come and go as relative positions change.  This is the
kind of dynamic estimate graph the paper's model targets: edges appear and
disappear arbitrarily while the network stays connected.

The example runs AOPT on such a "sliding window" line plus random churn on a
few shortcut links and verifies that the global skew stays bounded and that
every node's neighbor levels respect the Lemma 5.1 subset chain at the end of
the run.
"""

from repro.analysis import report, skew
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.network import dynamics, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import RandomWalkDrift
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

N_NODES = 10
DURATION = 300.0


def main() -> None:
    params = Parameters(rho=0.01, mu=0.1)
    edge = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)

    # Mobility: always-on backbone, rotating shortcuts, plus random churn on
    # a few extra candidate links.
    graph = dynamics.sliding_window_line(
        N_NODES, window=3, shift_period=25.0, horizon=DURATION, params=edge
    )
    graph = dynamics.periodic_churn(
        graph,
        [(0, 5), (2, 8), (4, 9)],
        period=40.0,
        horizon=DURATION,
        params=edge,
        seed=7,
    )

    config = SimulationConfig(
        params=params,
        dt=0.05,
        duration=DURATION,
        drift=RandomWalkDrift(params.rho, graph.nodes, period=20.0, seed=11),
        estimate_strategy="uniform",
        estimate_seed=3,
    )
    aopt_config = default_aopt_config(
        graph,
        config,
        insertion_duration=insertion_mod.scaled_insertion_duration(0.02),
    )
    result = run_simulation(graph, aopt_factory(aopt_config), config)

    backbone = [(i, i + 1) for i in range(N_NODES - 1)]
    table = report.Table(
        f"Mobile convoy of {N_NODES} nodes under churn ({DURATION:.0f} time units)",
        ["metric", "value"],
    )
    table.add_row("global skew bound used by AOPT", aopt_config.global_skew.value(0.0))
    table.add_row("max global skew observed", result.trace.max_global_skew())
    table.add_row("final global skew", result.trace.final().global_skew())
    table.add_row("max backbone local skew", skew.max_local_skew(result.trace, backbone))
    table.add_row("messages delivered", result.engine.transport.delivered_count)
    table.print()

    chains_ok = all(
        result.engine.algorithm(node).levels.subset_chain_holds()
        for node in result.engine.nodes
    )
    print(f"Lemma 5.1 subset chains intact on every node: {chains_ok}")


if __name__ == "__main__":
    main()
