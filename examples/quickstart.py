#!/usr/bin/env python3
"""Quickstart: run AOPT on a small line network and inspect the skews.

This is the smallest end-to-end use of the library:

1. build a topology (a line of 8 nodes with uniform edge parameters);
2. pick the algorithm parameters (drift bound ``rho``, rate boost ``mu``);
3. choose an adversarial drift model (half the nodes fast, half slow);
4. run the simulation and report global skew, local skew and the gradient
   bound the paper guarantees.
"""

from repro.analysis import gradient, report, skew
from repro.core.parameters import Parameters
from repro.network import topology
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_aopt


def main() -> None:
    params = Parameters(rho=0.01, mu=0.1)
    edge = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)
    graph = topology.line(8, edge)

    fast_nodes, slow_nodes = half_split(graph.nodes)
    config = SimulationConfig(
        params=params,
        dt=0.05,
        duration=200.0,
        drift=TwoGroupAdversary(params.rho, fast_nodes, slow_nodes),
        estimate_strategy="toward_observer",
    )

    result = run_aopt(graph, config)
    aopt_config = default_aopt_config(graph, config)
    global_bound = aopt_config.global_skew.value(0.0)
    kappa = params.kappa_for(edge.epsilon, edge.tau)

    table = report.Table(
        "Quickstart: AOPT on a line of 8 nodes (200 time units)",
        ["metric", "measured", "bound"],
    )
    table.add_row("max global skew", result.trace.max_global_skew(), global_bound)
    table.add_row(
        "max local skew",
        skew.max_local_skew(result.trace, skew.edges_of(graph)),
        params.local_skew_bound(kappa, global_bound),
    )
    table.add_row(
        "end-to-end skew",
        skew.max_skew_between(result.trace, 0, 7),
        params.gradient_skew_bound(7 * kappa, global_bound),
    )
    table.print()

    violations = gradient.check_trace(result.trace, graph, global_bound, params)
    print(f"gradient bound violations over the whole run: {len(violations)}")
    print(f"mode usage (node-samples): {result.trace.mode_counts()}")


if __name__ == "__main__":
    main()
