#!/usr/bin/env python3
"""Edge insertion: gradual stabilization versus immediate insertion.

A line network accumulates skew between its endpoints; then an edge between
the endpoints appears.  The paper's algorithm inserts the new edge level by
level, so the skew on it is reduced gradually without ever violating the
gradient bound on the old edges.  The "immediate insertion" strategy
(discussed in Section 5.5) instead charges the new edge against every level at
once; its surrounding edges then see larger transient skews.

The example prints the skew on the new edge at a few checkpoints and the worst
local skew observed on the pre-existing edges after the insertion for both
strategies.
"""

from repro.analysis import report, skew, stabilization
from repro.baselines.immediate_insertion import immediate_insertion_factory
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.network import dynamics
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

N_NODES = 8
INSERTION_TIME = 40.0
DURATION = 700.0
GLOBAL_SKEW_BOUND = 40.0


def run_strategy(immediate: bool):
    params = Parameters(rho=0.01, mu=0.1)
    edge = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)
    scenario = dynamics.line_with_end_to_end_insertion(
        N_NODES, insertion_time=INSERTION_TIME, params=edge
    )
    fast_nodes, slow_nodes = half_split(scenario.graph.nodes)
    config = SimulationConfig(
        params=params,
        dt=0.05,
        duration=DURATION,
        drift=TwoGroupAdversary(params.rho, fast_nodes, slow_nodes),
        estimate_strategy="toward_observer",
    )
    aopt_config = default_aopt_config(
        scenario.graph,
        config,
        global_skew_bound=GLOBAL_SKEW_BOUND,
        insertion_duration=insertion_mod.scaled_insertion_duration(0.02),
        immediate_insertion=immediate,
    )
    factory = (
        immediate_insertion_factory(aopt_config)
        if immediate
        else aopt_factory(aopt_config)
    )
    result = run_simulation(scenario.graph, factory, config)
    u, v = scenario.new_edge
    kappa = params.kappa_for(edge.epsilon, edge.tau)
    bound = params.local_skew_bound(kappa, GLOBAL_SKEW_BOUND)
    measurement = stabilization.stabilization_time(
        result.trace, u, v, bound=bound, event_time=INSERTION_TIME
    )
    old_edges = [(i, i + 1) for i in range(N_NODES - 1)]
    return {
        "strategy": "immediate insertion" if immediate else "AOPT (staged insertion)",
        "bound": bound,
        "skew_at_insertion": result.trace.sample_at(INSERTION_TIME).skew(u, v),
        "stabilization_time": (
            measurement.elapsed_since_event if measurement.stabilized else float("nan")
        ),
        "old_edge_local_skew": skew.max_local_skew(
            result.trace, old_edges, start=INSERTION_TIME
        ),
        "final_new_edge_skew": result.trace.final().skew(u, v),
    }


def main() -> None:
    rows = [run_strategy(immediate=False), run_strategy(immediate=True)]
    table = report.Table(
        f"New end-to-end edge on a line of {N_NODES} nodes (insertion at t={INSERTION_TIME:.0f})",
        [
            "strategy",
            "skew at insertion",
            "time to reach gradient bound",
            "old-edge local skew after insertion",
            "final new-edge skew",
        ],
    )
    for row in rows:
        table.add_row(
            row["strategy"],
            row["skew_at_insertion"],
            row["stabilization_time"],
            row["old_edge_local_skew"],
            row["final_new_edge_skew"],
        )
    table.print()
    print(
        "The gradient bound used for the new edge is "
        f"{rows[0]['bound']:.3f} time units; AOPT reaches it within time "
        "proportional to the global skew estimate (Theorem 5.25)."
    )


if __name__ == "__main__":
    main()
