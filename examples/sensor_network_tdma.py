#!/usr/bin/env python3
"""Sensor-network TDMA scenario: why the *local* skew is the quantity that matters.

The introduction of the paper motivates gradient clock synchronization with
TDMA in wireless sensor networks: two nodes only interfere when they are
close, so the guard interval between their slots must cover the skew between
*neighboring* clocks, not the network-wide skew.

This example places sensors on a grid, drives their hardware clocks with an
adversarial drift ramp, and compares AOPT with the max-propagation baseline:
both keep the global skew bounded, but the baseline concentrates large jumps
on single edges, while AOPT keeps every edge within the gradient bound -- so a
TDMA schedule needs a much smaller guard interval.
"""

from repro.analysis import report, skew
from repro.baselines.max_algorithm import max_propagation_factory
from repro.core.algorithm import aopt_factory
from repro.core.parameters import Parameters
from repro.network import topology
from repro.network.edge import EdgeParams
from repro.sim.drift import RampAdversary
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

GRID_ROWS, GRID_COLS = 4, 4
DURATION = 250.0


def run_grid(algorithm_name: str):
    params = Parameters(rho=0.01, mu=0.1)
    edge = EdgeParams(epsilon=0.5, tau=0.25, delay=1.0)
    graph = topology.grid(GRID_ROWS, GRID_COLS, edge)
    config = SimulationConfig(
        params=params,
        dt=0.05,
        duration=DURATION,
        drift=RampAdversary(params.rho, graph.nodes, reverse_period=DURATION / 2),
        estimate_strategy="toward_observer",
    )
    if algorithm_name == "AOPT":
        aopt_config = default_aopt_config(graph, config)
        factory = aopt_factory(aopt_config)
    else:
        factory = max_propagation_factory(params.rho)
    result = run_simulation(graph, factory, config)
    edges = skew.edges_of(graph)
    return {
        "algorithm": algorithm_name,
        "global": result.trace.max_global_skew(),
        "local": skew.max_local_skew(result.trace, edges),
        "steady_local": skew.max_local_skew(
            result.trace, edges, start=skew.steady_state_window(result.trace)[0]
        ),
    }


def main() -> None:
    rows = [run_grid("AOPT"), run_grid("MaxPropagation")]
    table = report.Table(
        f"TDMA guard intervals on a {GRID_ROWS}x{GRID_COLS} sensor grid",
        ["algorithm", "max global skew", "max local skew", "steady local skew"],
    )
    for row in rows:
        table.add_row(row["algorithm"], row["global"], row["local"], row["steady_local"])
    table.print()
    aopt_local = rows[0]["local"]
    print(
        "A TDMA schedule only needs guard intervals covering the local skew: "
        f"{aopt_local:.3f} time units with AOPT on this grid."
    )


if __name__ == "__main__":
    main()
