"""Structured run telemetry: schema, JSONL sinks, and sweep event streams.

The observability layer over the whole stack.  Watchdog observers
(:mod:`repro.metrics.watchdogs`) detect threshold crossings *during* a
run; this package defines what those detections look like on the wire
(:mod:`repro.telemetry.schema` -- a versioned JSONL event schema), how
they are written (:mod:`repro.telemetry.events` -- the thread-safe,
strict-JSON, size-capped :class:`JsonlLog`), and how a whole sweep's
progress becomes one coherent stream
(:mod:`repro.telemetry.sweep` -- :class:`SweepTelemetry`, fed by
``run_sweep``'s progress callback and the per-run pipeline sinks).

Consumers: ``repro-experiments run/sweep --telemetry FILE`` writes the
stream to disk, the sweep service daemon tails it per job via
``GET /jobs/{id}/events`` and tallies watchdog firings on ``/healthz``,
and the CI telemetry smoke validates every line with
:func:`validate_jsonl`.  Everything here is standard library only -- the
no-numpy leg runs it all.
"""

from .events import JsonlLog
from .schema import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    TelemetryError,
    event_types,
    iter_jsonl,
    make_event,
    sanitize_json,
    validate_event,
    validate_jsonl,
    validate_records,
)
from .sweep import SweepTelemetry

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EVENT_TYPES",
    "JsonlLog",
    "SweepTelemetry",
    "TelemetryError",
    "event_types",
    "iter_jsonl",
    "make_event",
    "sanitize_json",
    "validate_event",
    "validate_jsonl",
    "validate_records",
]
