"""Sweep-level telemetry: one event stream for a whole ``run_sweep`` call.

A :class:`SweepTelemetry` turns everything that happens inside
:func:`repro.experiments.executor.run_sweep` into schema-stamped events
(:mod:`repro.telemetry.schema`) pushed through one ``write(record)``
callable -- a :meth:`JsonlLog.write_record <repro.telemetry.events.JsonlLog>`
bound method for the CLI's ``--telemetry FILE``, or the service's fan-out
(log + per-job buffer + counters) for the daemon.

Three event sources are merged:

* **sweep progress** -- ``run_started`` / ``run_finished`` mapped from the
  executor's :class:`SweepEvent` stream (duck-typed: anything with
  ``kind``/``index``/``spec``/``from_cache``/``batched`` works), plus
  ``sweep_started`` / ``sweep_finished`` brackets;
* **live watchdogs** -- :meth:`run_sink` hands the executor a per-run sink
  to attach to that run's metrics pipeline, so ``watchdog_fired`` and
  ``progress`` events stream out *during* the simulation with the run's
  index/hash/backend stamped on;
* **replayed watchdogs** -- runs that never had a live sink (served from
  cache, executed in a worker process, or re-run by the reference
  fallback) still carry their firings in the cached observer payload;
  :meth:`replay_watchdogs` re-emits them, flagged ``replayed: true``, so
  the stream is complete either way.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set

from .schema import make_event

#: Observer names with this prefix are watchdogs whose payloads carry
#: replayable firing events (kept as a string match so this module stays
#: import-light; :mod:`repro.metrics.watchdogs` is the source of truth).
WATCHDOG_PREFIX = "watchdog_"


class SweepTelemetry:
    """Event emitter for one sweep: maps executor progress onto the schema."""

    def __init__(self, write: Callable[[Dict[str, Any]], None]):
        self._write = write
        self._live: Set[int] = set()

    # -- low-level ------------------------------------------------------
    def emit(self, event_type: str, **fields: Any) -> None:
        """Build one schema-stamped record and push it to the writer."""
        self._write(make_event(event_type, **fields))

    # -- sweep brackets -------------------------------------------------
    def sweep_started(self, total: int) -> None:
        # A reused emitter starts each sweep with a clean live-run slate,
        # so cached results from an earlier sweep still replay.
        self._live.clear()
        self.emit("sweep_started", total=total)

    def sweep_finished(self, stats: Any) -> None:
        """Close the stream from a ``SweepStats``-shaped object."""
        self.emit(
            "sweep_finished",
            total=getattr(stats, "total", None),
            executed=getattr(stats, "executed", None),
            cached=getattr(stats, "cached", None),
            fallbacks=getattr(stats, "fallbacks", None),
            wall_time=getattr(stats, "wall_time", None),
        )

    # -- executor progress ----------------------------------------------
    def on_sweep_event(self, event: Any) -> None:
        """Translate one executor ``SweepEvent`` into schema events."""
        spec = event.spec
        common = {
            "run": event.index,
            "spec_hash": spec.content_hash(),
            "backend": spec.backend,
            "label": spec.label or spec.topology.name,
        }
        if event.kind == "start":
            self.emit("run_started", **common)
        elif event.kind == "cached":
            self.emit("run_finished", state="cached", **common)
        elif event.kind == "fallback":
            self.emit("run_finished", state="fallback", **common)
        else:  # executed
            self.emit(
                "run_finished",
                state="done",
                batched=bool(event.batched),
                **common,
            )

    # -- live per-run sinks ---------------------------------------------
    def run_sink(self, index: int, spec: Any) -> Callable[..., None]:
        """A pipeline sink for one run, with run identity stamped on.

        The returned callable has the ``sink(event_type, **fields)`` shape
        :meth:`MetricsPipeline.attach_sink <repro.metrics.pipeline.MetricsPipeline.attach_sink>`
        expects; the run is marked *live* so :meth:`was_live` can tell the
        executor not to also replay its cached watchdog events.
        """
        self._live.add(index)
        spec_hash = spec.content_hash()
        backend = spec.backend

        def sink(event_type: str, **fields: Any) -> None:
            self.emit(
                event_type,
                run=index,
                spec_hash=spec_hash,
                backend=backend,
                **fields,
            )

        return sink

    def was_live(self, index: int) -> bool:
        return index in self._live

    def forget_live(self, *indices: int) -> None:
        """Un-mark runs whose live execution never happened (a failed
        batch falling back to per-run execution), so their cached watchdog
        events are replayed after all."""
        for index in indices:
            self._live.discard(index)

    # -- replay from cached payloads -------------------------------------
    def replay_watchdogs(self, index: int, spec: Any, payload: Optional[Dict[str, Any]]) -> None:
        """Re-emit watchdog firings recorded in a cached result payload.

        Used for runs with no live sink: cache hits, worker-pool
        executions (a sink cannot cross the process boundary), and
        reference-fallback re-runs.  Events come out flagged
        ``replayed: true`` with the original simulation times.
        """
        if self.was_live(index) or not payload:
            return
        observers = (payload.get("observers") or {}).get("observers") or {}
        spec_hash = payload.get("spec_hash") or spec.content_hash()
        backend = payload.get("backend") or spec.backend
        for name, body in observers.items():
            if not name.startswith(WATCHDOG_PREFIX) or not isinstance(body, dict):
                continue
            if not body.get("applicable"):
                continue
            threshold = body.get("threshold")
            for record in body.get("events") or []:
                extra = {
                    key: value
                    for key, value in record.items()
                    if key not in ("time", "value")
                }
                self.emit(
                    "watchdog_fired",
                    run=index,
                    spec_hash=spec_hash,
                    backend=backend,
                    watchdog=name,
                    sim_time=record.get("time"),
                    value=record.get("value"),
                    threshold=threshold,
                    replayed=True,
                    **extra,
                )
