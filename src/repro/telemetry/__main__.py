"""Validate a telemetry JSONL stream: ``python -m repro.telemetry FILE...``.

Exit 0 if every line of every file parses as strict JSON and validates
against the versioned event schema; exit 1 with the offending line's
diagnostics otherwise.  This is the same check the CI telemetry smoke
runs, packaged for humans and shell scripts.
"""

from __future__ import annotations

import argparse
import sys

from .schema import TelemetryError, validate_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate telemetry JSONL streams against the event schema.",
    )
    parser.add_argument("files", nargs="+", help="JSONL file(s) to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.files:
        try:
            count = validate_jsonl(path)
        except (OSError, TelemetryError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: {count} valid event(s)")
    return status


if __name__ == "__main__":
    sys.exit(main())
