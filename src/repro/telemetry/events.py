"""Thread-safe JSONL event sinks (the transport half of ``repro.telemetry``).

:class:`JsonlLog` is the one writer every telemetry producer shares -- the
sweep service's daemon log, the CLI's ``--telemetry FILE`` stream, and the
in-memory buffers behind ``GET /jobs/{id}/events`` all funnel through it.
Three properties are load-bearing:

* **Strict JSON.**  Every record passes through
  :func:`~repro.telemetry.schema.sanitize_json` and is serialised with
  ``allow_nan=False``, so a stray ``float("nan")`` from an observer can
  never smuggle the non-JSON ``NaN`` token into the stream.
* **No torn lines.**  One lock guards the whole serialise-write-flush of a
  record, so daemon worker threads, HTTP handler threads and the janitor
  can share one log and a ``tail -f`` reader still sees whole JSON objects.
* **Bounded size.**  An optional ``max_bytes`` cap rotates the file to a
  single ``.1`` sibling (``sweep.jsonl`` -> ``sweep.jsonl.1``) once it
  grows past the cap -- checked opportunistically on write and on the
  service janitor's cadence via :meth:`rotate_if_over` -- so a long-lived
  daemon cannot fill the disk with telemetry.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, IO, Optional, Union

from .schema import EVENT_SCHEMA_VERSION, sanitize_json


class JsonlLog:
    """Append-only JSON-lines event log (thread-safe, stdlib-only).

    ``target`` may be a path (opened in append mode, parent directories
    created), an open text stream, or ``None`` to disable logging entirely
    -- callers just call :meth:`write` unconditionally.  ``max_bytes``
    (paths only) caps the file size via rotation to ``<name>.1``.
    """

    def __init__(
        self,
        target: Union[None, str, Path, IO[str]] = None,
        *,
        max_bytes: Optional[int] = None,
    ):
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        self._written = 0
        self.path: Optional[Path] = None
        self.max_bytes = max_bytes
        if target is None:
            return
        if isinstance(target, (str, Path)):
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._owns_handle = True
            try:
                self._written = self.path.stat().st_size
            except OSError:
                self._written = 0
        else:
            self._handle = target

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def write(self, event: str, **fields: Any) -> None:
        """Emit one schema-stamped event line; never raises."""
        if self._handle is None:
            return
        record = {
            "ts": round(time.time(), 3),
            "schema": EVENT_SCHEMA_VERSION,
            "event": event,
        }
        record.update(fields)
        self.write_record(record)

    def write_record(self, record: Any) -> None:
        """Emit one pre-built record as a single strict-JSON line."""
        if self._handle is None:
            return
        try:
            line = json.dumps(
                sanitize_json(record), sort_keys=True, allow_nan=False, default=str
            )
        except (TypeError, ValueError):
            fallback = {
                "ts": round(time.time(), 3),
                "schema": EVENT_SCHEMA_VERSION,
                "event": record.get("event", "unknown") if isinstance(record, dict) else "unknown",
            }
            line = json.dumps(fallback, sort_keys=True)
        with self._lock:
            self._rotate_locked()
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
                self._written += len(line) + 1
            except (OSError, ValueError):
                # A vanished disk or a closed stream must never take the
                # service down with it; telemetry is best-effort.
                pass

    # -- rotation -------------------------------------------------------
    def rotate_if_over(self) -> bool:
        """Rotate now if over the cap (the janitor's hook); returns whether."""
        with self._lock:
            return self._rotate_locked()

    def _rotate_locked(self) -> bool:
        # Caller holds the lock.  Streams and uncapped logs never rotate.
        if (
            self.max_bytes is None
            or self.path is None
            or self._handle is None
            or self._written < self.max_bytes
        ):
            return False
        try:
            self._handle.close()
            self.path.replace(self.path.with_name(self.path.name + ".1"))
            self._handle = self.path.open("a", encoding="utf-8")
            self._written = 0
        except OSError:
            # Rotation failing (e.g. read-only dir) must not kill logging;
            # reopen best-effort and keep appending to the oversized file.
            try:
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError:
                self._handle = None
            return False
        record = {
            "ts": round(time.time(), 3),
            "schema": EVENT_SCHEMA_VERSION,
            "event": "log_rotated",
            "max_bytes": self.max_bytes,
        }
        line = json.dumps(record, sort_keys=True, allow_nan=False)
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            self._written += len(line) + 1
        except (OSError, ValueError):
            pass
        return True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._owns_handle:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
