"""The versioned telemetry event schema.

Every JSONL telemetry line -- whether written by a per-run ``--telemetry``
stream, the sweep service's log, or buffered for ``GET /jobs/{id}/events``
-- is one JSON object built by :func:`make_event`:

.. code-block:: json

    {"ts": 1735689600.0, "schema": 1, "event": "watchdog_fired", ...}

``schema`` is the layout version (bumped whenever an event type gains or
loses required fields), ``event`` is one of :data:`EVENT_TYPES`, and each
event type pins a set of required fields.  :func:`validate_event` checks
one decoded record against the schema and :func:`validate_jsonl` checks a
whole file line by line -- the CI telemetry smoke runs the latter over a
real ``--telemetry`` stream, so the schema is enforced, not aspirational.

Strict JSON is part of the contract: ``json.dumps`` happily emits
``Infinity``/``NaN`` by default, which is *not* JSON and breaks every
downstream ``jq``/``json.loads`` consumer.  :func:`sanitize_json` replaces
non-finite floats up front (``NaN`` becomes ``null`` -- "not a measurement"
-- and infinities become explicit string sentinels), after which
serialising with ``allow_nan=False`` can never fail.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Tuple, Union


class TelemetryError(ValueError):
    """Raised on malformed telemetry events or streams."""


#: Bumped whenever an event type gains/loses required fields or the
#: envelope (``ts``/``schema``/``event``) changes shape.
EVENT_SCHEMA_VERSION = 1

#: Sentinels :func:`sanitize_json` substitutes for non-finite floats.
#: ``NaN`` maps to ``None`` ("not a measurement"), infinities to these
#: strings so their sign survives the round-trip.
INF_SENTINEL = "Infinity"
NEG_INF_SENTINEL = "-Infinity"

#: Event type -> required fields (beyond the ``ts``/``schema``/``event``
#: envelope every record carries).  Run-scoped events identify their run by
#: ``run`` (the spec's index in its sweep) plus ``spec_hash``; job-scoped
#: service events carry ``job``.
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    # -- per-run telemetry (the --telemetry stream) ---------------------
    "sweep_started": ("total",),
    "run_started": ("run", "spec_hash", "backend"),
    "progress": ("run", "sim_time", "samples"),
    "watchdog_fired": ("run", "watchdog", "sim_time", "value", "threshold"),
    "run_finished": ("run", "spec_hash", "state"),
    "sweep_finished": ("total", "executed", "cached"),
    # -- sweep service lifecycle (the daemon's service log) -------------
    "service_start": (),
    "service_stop": (),
    "http": (),
    "job_submitted": ("job",),
    "job_running": ("job",),
    "job_done": ("job",),
    "spec_progress": ("job",),
    "janitor_pruned": (),
    "log_rotated": (),
}


def event_types() -> Tuple[str, ...]:
    return tuple(sorted(EVENT_TYPES))


def sanitize_json(value: Any) -> Any:
    """Recursively replace non-finite floats with strict-JSON stand-ins.

    ``NaN`` becomes ``None``, ``inf``/``-inf`` become the explicit
    :data:`INF_SENTINEL`/:data:`NEG_INF_SENTINEL` strings; finite floats,
    ints, strings, bools and ``None`` pass through untouched (bit-exact),
    so sanitising a payload of ordinary measurements is the identity.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return INF_SENTINEL if value > 0 else NEG_INF_SENTINEL
        return value
    if isinstance(value, dict):
        return {key: sanitize_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(item) for item in value]
    return value


def make_event(event: str, **fields: Any) -> Dict[str, Any]:
    """Build one schema-stamped, strict-JSON-safe event record."""
    if event not in EVENT_TYPES:
        known = ", ".join(event_types())
        raise TelemetryError(f"unknown event type {event!r}; known: {known}")
    record: Dict[str, Any] = {
        "ts": round(time.time(), 3),
        "schema": EVENT_SCHEMA_VERSION,
        "event": event,
    }
    for key, value in fields.items():
        record[key] = sanitize_json(value)
    return record


def validate_event(record: Any) -> Dict[str, Any]:
    """Check one decoded record against the schema; returns it unchanged.

    Raises :class:`TelemetryError` on anything malformed: not an object, a
    missing/mistyped envelope, an unknown event type, a schema version
    mismatch, or a missing required field.
    """
    if not isinstance(record, dict):
        raise TelemetryError(f"telemetry record must be a JSON object, got {type(record).__name__}")
    for key in ("ts", "schema", "event"):
        if key not in record:
            raise TelemetryError(f"telemetry record is missing {key!r}: {record}")
    if not isinstance(record["ts"], (int, float)) or isinstance(record["ts"], bool):
        raise TelemetryError(f"'ts' must be a number, got {record['ts']!r}")
    if record["schema"] != EVENT_SCHEMA_VERSION:
        raise TelemetryError(
            f"schema version {record['schema']!r} does not match "
            f"{EVENT_SCHEMA_VERSION} for event {record.get('event')!r}"
        )
    event = record["event"]
    if event not in EVENT_TYPES:
        known = ", ".join(event_types())
        raise TelemetryError(f"unknown event type {event!r}; known: {known}")
    for field in EVENT_TYPES[event]:
        if field not in record:
            raise TelemetryError(f"event {event!r} is missing required field {field!r}: {record}")
    return record


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Decode a JSONL file line by line in strict mode (no NaN/Infinity)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line, parse_constant=_reject_constant)
            except ValueError as exc:
                raise TelemetryError(f"{path}:{number}: not valid strict JSON: {exc}") from None


def _reject_constant(name: str) -> Any:
    raise TelemetryError(f"non-strict JSON constant {name!r} in telemetry stream")


def validate_jsonl(path: Union[str, Path]) -> int:
    """Validate every line of a JSONL telemetry file; returns the line count."""
    count = 0
    for record in iter_jsonl(path):
        validate_event(record)
        count += 1
    return count


def validate_records(records: Iterable[Any]) -> int:
    """Validate an iterable of decoded records; returns how many there were."""
    count = 0
    for record in records:
        validate_event(record)
        count += 1
    return count
