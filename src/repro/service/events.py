"""JSONL request/job telemetry for the sweep service.

One JSON object per line, flushed per event, guarded by a lock so the HTTP
threads, the worker pool and the janitor can all log without interleaving.
The format is deliberately boring -- ``{"ts": ..., "event": ..., ...}`` --
so live sweep progress is a ``tail -f`` away and downstream tooling can
consume it without a parser beyond ``json.loads`` per line.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, IO, Optional, Union


class JsonlLog:
    """Append-only JSON-lines event log (thread-safe, stdlib-only).

    ``target`` may be a path (opened in append mode, parent directories
    created), an open text stream, or ``None`` to disable logging entirely
    -- callers just call :meth:`write` unconditionally.
    """

    def __init__(self, target: Union[None, str, Path, IO[str]] = None):
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        self.path: Optional[Path] = None
        if target is None:
            return
        if isinstance(target, (str, Path)):
            self.path = Path(target)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def write(self, event: str, **fields: Any) -> None:
        """Emit one event line; silently drops unserialisable fields."""
        if self._handle is None:
            return
        record = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            line = json.dumps({"ts": record["ts"], "event": event})
        with self._lock:
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                # A vanished disk or a closed stream must never take the
                # service down with it; telemetry is best-effort.
                pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._owns_handle:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
