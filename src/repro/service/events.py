"""Compatibility shim: the JSONL event log now lives in ``repro.telemetry``.

PR 7 generalized the service-private ``JsonlLog`` into the shared
telemetry transport (strict JSON, schema stamping, size-capped rotation);
import from :mod:`repro.telemetry` going forward.
"""

from ..telemetry.events import JsonlLog

__all__ = ["JsonlLog"]
