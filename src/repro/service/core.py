"""The sweep service core: job store, worker pool, single-flight coalescing.

A :class:`SweepService` owns the :class:`~repro.experiments.executor.ResultCache`
and a queue of :class:`Job` objects drained by background worker threads.
Each worker drives the exact same :func:`repro.experiments.executor.run_sweep`
loop the CLI uses -- the daemon adds *sharing*, not a second executor:

* **Cache first.**  A submitted spec whose result is already cached is
  marked done at submit time and never touches the queue.
* **Single-flight.**  Cache-miss specs are keyed by their cache path; the
  first job to submit a key *leases* it (and will execute it), every
  concurrent job submitting the same key *follows* the lease and waits for
  the one execution.  N clients submitting the identical spec cost one
  simulation, then everyone reads the same cache entry.
* **Progress.**  ``run_sweep`` progress events update per-spec job state
  and stream to the JSONL telemetry log, so ``GET /jobs/{id}`` and
  ``tail -f`` both see live sweep progress.

Everything is standard library (``threading``, ``queue``); the
``multiprocessing`` parallelism of the underlying sweep loop is still
available per job via ``ServiceConfig.sweep_workers``.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..experiments.executor import ResultCache, SweepEvent, run_sweep
from ..experiments.spec import ScenarioSpec
from ..telemetry.sweep import SweepTelemetry
from .events import JsonlLog

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")

#: Per-spec progress states.  ``cached`` and ``coalesced`` are terminal "done
#: without executing here" states; ``queued -> running -> done|failed`` is the
#: executing path.
SPEC_STATES = ("queued", "running", "cached", "coalesced", "done", "failed")

#: Telemetry events retained per job for ``GET /jobs/{id}/events``.  The
#: buffer is a ring: old events are dropped but their positions stay
#: addressable, so a ``?since=N`` cursor never re-reads or skips events
#: unless it fell behind the ring (reported via ``dropped``).
JOB_EVENT_BUFFER = 1000

_SHUTDOWN = object()


class ServiceError(RuntimeError):
    """Raised on invalid service configuration or submissions."""


class ServiceUnavailableError(ServiceError):
    """Raised by :meth:`SweepService.submit` while the service is draining.

    The HTTP layer maps this to ``503 Service Unavailable``, which the
    hardened client treats as retryable for idempotent requests.
    """


@dataclass
class ServiceConfig:
    """Tunables of a :class:`SweepService` (all have serve-CLI flags)."""

    #: Background worker threads draining the job queue.
    workers: int = 2
    #: ``multiprocessing`` workers *inside* each job's sweep loop.
    sweep_workers: int = 1
    strict_backend: bool = False
    batching: bool = True
    #: Hard cap on specs per submission (one grid expansion can explode).
    max_specs_per_job: int = 4096
    #: Finished jobs retained for ``GET /jobs/{id}`` before being forgotten.
    max_finished_jobs: int = 1000
    #: Janitor cadence; the janitor only runs when a prune policy is set.
    janitor_interval: float = 300.0
    prune_older_than: Optional[float] = None
    max_cache_bytes: Optional[int] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.sweep_workers < 1:
            raise ServiceError(
                f"sweep_workers must be >= 1, got {self.sweep_workers}"
            )


class _Inflight:
    """One leased cache key: followers wait on ``event``."""

    __slots__ = ("key", "result_key", "error", "event")

    def __init__(self, key: str):
        self.key = key
        #: Key the result actually landed under (differs from ``key`` only
        #: when the backend fell back to reference).
        self.result_key = key
        self.error: Optional[str] = None
        self.event = threading.Event()


class Job:
    """One sweep submission: a spec list plus per-spec progress.

    All mutation happens through the owning :class:`SweepService`; readers
    take :meth:`to_payload` snapshots under the job lock.
    """

    def __init__(self, job_id: str, specs: Sequence[ScenarioSpec], keys: Sequence[str]):
        self.id = job_id
        self.specs = list(specs)
        self.keys = list(keys)
        self.state = "queued"
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.stats: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        #: Indices this job will execute / indices waiting on another job.
        self.leased: List[int] = []
        self.followed: Dict[int, _Inflight] = {}
        self.progress: List[Dict[str, Any]] = [
            {
                "index": index,
                "label": spec.label or spec.topology.name,
                "spec_hash": spec.content_hash(),
                "result_key": key,
                "backend": spec.backend,
                "state": "queued",
                "from_cache": False,
            }
            for index, (spec, key) in enumerate(zip(self.specs, self.keys))
        ]
        #: Live telemetry ring for ``GET /jobs/{id}/events``.
        self.events: List[Dict[str, Any]] = []
        #: Events dropped off the front of the ring == stream index of
        #: ``events[0]``.
        self.events_dropped = 0

    # -- snapshots ------------------------------------------------------
    def spec_counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(SPEC_STATES, 0)
        for entry in self.progress:
            counts[entry["state"]] += 1
        return counts

    def to_payload(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "total": len(self.specs),
                "counts": self.spec_counts(),
                "stats": dict(self.stats) if self.stats else None,
                "specs": [dict(entry) for entry in self.progress],
            }

    def events_payload(self, since: int = 0) -> Dict[str, Any]:
        """The ``GET /jobs/{id}/events?since=N`` body.

        ``since`` is a cursor into the job's event stream (0 = from the
        beginning); pass the returned ``next`` on the following poll to read
        only new events.  ``dropped`` counts events that aged out of the
        ring before being read.
        """
        with self._lock:
            first = self.events_dropped
            cursor = max(int(since), first)
            window = self.events[cursor - first :]
            return {
                "job": self.id,
                "since": cursor,
                "next": first + len(self.events),
                "dropped": first,
                "events": [dict(event) for event in window],
            }

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    # -- mutation (service-internal) ------------------------------------
    def _record_event(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(record)
            overflow = len(self.events) - JOB_EVENT_BUFFER
            if overflow > 0:
                del self.events[:overflow]
                self.events_dropped += overflow

    def _update_spec(self, index: int, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            self.progress[index].update(fields)
            return dict(self.progress[index])

    def _mark_running(self) -> None:
        with self._lock:
            self.state = "running"
            self.started = time.time()

    def _finalize(self) -> None:
        with self._lock:
            failed = any(entry["state"] == "failed" for entry in self.progress)
            self.state = "failed" if failed else "done"
            if failed and self.error is None:
                self.error = "; ".join(
                    str(entry.get("error"))
                    for entry in self.progress
                    if entry["state"] == "failed" and entry.get("error")
                ) or "spec execution failed"
            self.finished = time.time()
        self._done.set()


class JobStore:
    """Thread-safe job registry with bounded retention of finished jobs."""

    def __init__(self, max_finished: int = 1000):
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_finished = max_finished

    def add(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.id] = job
            finished = [
                job_id
                for job_id, entry in self._jobs.items()
                if entry.state in ("done", "failed")
            ]
            for job_id in finished[: max(0, len(finished) - self.max_finished)]:
                del self._jobs[job_id]

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["total"] = len(self._jobs)
            return counts


class SweepService:
    """Job queue + worker pool + single-flight coalescing over one cache.

    ``start()`` spins up the worker (and optional janitor) threads;
    ``submit()`` is safe from any thread, including the HTTP server's
    per-connection threads; ``stop()`` drains and joins everything.
    """

    def __init__(
        self,
        cache_dir=None,
        *,
        config: Optional[ServiceConfig] = None,
        log: Optional[JsonlLog] = None,
    ):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(cache_dir)
        self.log = log or JsonlLog(None)
        self.jobs = JobStore(self.config.max_finished_jobs)
        self.started_at = time.time()
        self._queue: "queue.Queue" = queue.Queue()
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._janitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._running = False
        self._draining = False
        #: Lifetime totals, exposed on ``/healthz`` (and asserted by the
        #: coalescing tests: ``executed_specs`` counts actual simulations).
        self.counters = {
            "jobs_submitted": 0,
            "specs_submitted": 0,
            "specs_cached_at_submit": 0,
            "specs_coalesced": 0,
            "specs_executed": 0,
            "specs_failed": 0,
            "watchdogs_fired": 0,
        }
        #: Live watchdog firings by watchdog name (replays of cached
        #: results are excluded -- the same cached run would otherwise be
        #: counted once per cache hit).
        self.watchdog_counts: Dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SweepService":
        if self._running:
            return self
        self._stop.clear()
        self._draining = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"sweep-worker-{i}", daemon=True
            )
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()
        if self.config.prune_older_than is not None or self.config.max_cache_bytes is not None:
            self._janitor = threading.Thread(
                target=self._janitor_loop, name="cache-janitor", daemon=True
            )
            self._janitor.start()
        self._running = True
        self.log.write(
            "service_start",
            workers=self.config.workers,
            cache_dir=str(self.cache.cache_dir),
        )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if not self._running:
            return
        self._stop.set()
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout)
        if self._janitor is not None:
            self._janitor.join(timeout)
            self._janitor = None
        self._threads = []
        self._running = False
        self.log.write("service_stop")

    def drain(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Gracefully wind the service down: graceful sibling of :meth:`stop`.

        1. stop accepting submissions (``submit`` raises
           :class:`ServiceUnavailableError`, HTTP 503);
        2. fail every *queued* job with a clear status -- those sweeps never
           started, so clients must resubmit elsewhere;
        3. let in-flight jobs finish, bounded by ``timeout`` seconds total;
           workers still running at the deadline are abandoned (they are
           daemon threads) and counted as ``stuck_workers``.

        Returns a summary dict; ``clean`` is True when nothing was stuck.
        Safe to call on a never-started or already-drained service.
        """
        with self._lock:
            already = self._draining
            self._draining = True
            # Purge under the lock so submit() cannot enqueue concurrently.
            queued: List[Job] = []
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                queued.append(item)
        if not already:
            self.log.write("service_draining", drain_timeout=timeout, queued=len(queued))
        for job in queued:
            self._abort_job(job, "service shutting down before this job could run")
        # One sentinel per worker: each finishes its in-flight job (the
        # queue is now empty bar sentinels) and exits.
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        deadline = time.monotonic() + max(0.0, timeout)
        stuck = 0
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stuck += 1
        # Only now wake anything still parked in _await_followed (stuck
        # owners past the deadline) and the janitor.
        self._stop.set()
        if self._janitor is not None:
            self._janitor.join(1.0)
            self._janitor = None
        self._threads = []
        self._running = False
        summary = {
            "failed_queued_jobs": len(queued),
            "stuck_workers": stuck,
            "clean": stuck == 0,
        }
        self.log.write("service_drained", **summary)
        # Final flush point: rotate if the shutdown burst pushed the JSONL
        # log over its size cap, so the next start appends to a fresh file.
        self.log.rotate_if_over()
        return summary

    # -- submission -----------------------------------------------------
    def submit(self, specs: Sequence[ScenarioSpec]) -> Job:
        """Register a sweep; returns its (possibly already finished) job.

        Specs whose results are cached complete instantly; specs another
        in-flight job is already executing are *coalesced* onto that
        execution; only the rest are leased for execution by this job.  A
        fully cache-served submission never enters the queue at all.
        """
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining for shutdown and not accepting new sweeps"
            )
        if not specs:
            raise ServiceError("a sweep submission needs at least one spec")
        if len(specs) > self.config.max_specs_per_job:
            raise ServiceError(
                f"submission of {len(specs)} specs exceeds the per-job cap "
                f"of {self.config.max_specs_per_job}"
            )
        keys = [self.cache.key_for(spec) for spec in specs]
        # Probe the cache *before* taking the service lock: ``load`` reads
        # and JSON-parses the whole payload (traces included), and doing
        # that for thousands of specs under the lock would serialize every
        # concurrent submission and stall workers releasing leases.  The
        # race this opens is benign -- a spec cached between probe and
        # lease gets leased anyway and ``run_sweep``'s own probe serves it
        # from cache without re-executing.
        probes = [self.cache.load(spec) for spec in specs]
        hits = [payload is not None for payload in probes]
        job = Job(uuid.uuid4().hex[:12], specs, keys)
        enqueued = False
        with self._lock:
            if self._draining:
                # Re-check under the lock: drain() flips the flag and purges
                # the queue while holding it, so no job can slip in between
                # the purge and the workers exiting.
                raise ServiceUnavailableError(
                    "service is draining for shutdown and not accepting new sweeps"
                )
            leased_here = set()
            for index, (spec, key) in enumerate(zip(specs, keys)):
                if hits[index]:
                    job.progress[index].update(state="cached", from_cache=True)
                elif key in self._inflight:
                    job.followed[index] = self._inflight[key]
                    job.progress[index]["state"] = "coalesced"
                elif key in leased_here:
                    # Duplicate spec within one submission: the first
                    # occurrence executes, the rest follow its lease.
                    job.followed[index] = self._inflight[key]
                    job.progress[index]["state"] = "coalesced"
                else:
                    entry = _Inflight(key)
                    self._inflight[key] = entry
                    leased_here.add(key)
                    job.leased.append(index)
            self.counters["jobs_submitted"] += 1
            self.counters["specs_submitted"] += len(specs)
            self.counters["specs_cached_at_submit"] += sum(
                1 for entry in job.progress if entry["state"] == "cached"
            )
            self.counters["specs_coalesced"] += len(job.followed)
            self.jobs.add(job)
            # Enqueue under the same lock that created the leases so queue
            # order matches lease-creation order.  If a follower could slip
            # into the FIFO ahead of its owner, a worker would park in
            # _await_followed on an event whose owner is still *behind* it
            # in the queue -- a permanent deadlock with workers=1, and a
            # whole-pool wedge once N followers outrun their owners.
            if job.leased or job.followed:
                self._queue.put(job)
                enqueued = True
        self.log.write(
            "job_submitted",
            job=job.id,
            total=len(specs),
            cached=sum(1 for e in job.progress if e["state"] == "cached"),
            coalesced=len(job.followed),
            leased=len(job.leased),
        )
        # Cache-served specs never reach a worker, so their watchdog
        # firings are replayed into the job's event stream here (flagged
        # ``replayed``; live counters are untouched).  Coalesced specs'
        # events appear on the job that owns the execution.
        if any(hits):
            telemetry = self._telemetry_for(job)
            for index, (spec, payload) in enumerate(zip(specs, probes)):
                if payload is not None:
                    telemetry.replay_watchdogs(index, spec, payload)
        if not enqueued:
            job._finalize()
            self.log.write("job_done", job=job.id, state=job.state, cached=True)
        return job

    # -- workers --------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            try:
                self._run_job(item)
            except Exception as exc:  # pragma: no cover - defensive
                # A worker thread must survive anything a job throws at it;
                # the job is failed, its leases released, the pool lives on.
                self._abort_job(item, f"internal service error: {exc}")

    def _run_job(self, job: Job) -> None:
        job._mark_running()
        self.log.write("job_running", job=job.id)
        if job.leased:
            self._execute_leased(job)
        for index, entry in job.followed.items():
            self._await_followed(job, index, entry)
        job._finalize()
        with self._lock:
            self.counters["specs_failed"] += sum(
                1 for entry in job.progress if entry["state"] == "failed"
            )
        self.log.write("job_done", job=job.id, state=job.state, error=job.error)

    def _telemetry_for(self, job: Job) -> SweepTelemetry:
        """A sweep telemetry emitter fanning out to the service log, the
        job's event ring and the live watchdog counters."""

        def fan_out(record: Dict[str, Any]) -> None:
            self.log.write_record(record)
            job._record_event(record)
            if record.get("event") == "watchdog_fired" and not record.get("replayed"):
                name = str(record.get("watchdog") or "unknown")
                with self._lock:
                    self.counters["watchdogs_fired"] += 1
                    self.watchdog_counts[name] = self.watchdog_counts.get(name, 0) + 1

        return SweepTelemetry(fan_out)

    def _execute_leased(self, job: Job) -> None:
        indices = list(job.leased)
        specs = [job.specs[i] for i in indices]
        error: Optional[str] = None

        def on_event(event: SweepEvent) -> None:
            index = indices[event.index]
            if event.kind == "start":
                fields = {"state": "running"}
            elif event.kind == "cached":
                # Another writer completed this key between our submit-time
                # probe and the sweep's own probe -- still a shared win.
                fields = {"state": "cached", "from_cache": True}
            else:  # executed / fallback
                fields = {
                    "state": "done",
                    "from_cache": event.from_cache,
                    "result_key": self.cache.key_for(event.spec),
                }
                if event.kind == "fallback":
                    fields["fallback_backend"] = event.spec.backend
                if not event.from_cache:
                    with self._lock:
                        self.counters["specs_executed"] += 1
            snapshot = job._update_spec(index, **fields)
            self.log.write("spec_progress", job=job.id, **snapshot)

        try:
            _, stats = run_sweep(
                specs,
                cache=self.cache,
                workers=self.config.sweep_workers,
                use_cache=True,
                strict_backend=self.config.strict_backend,
                batching=self.config.batching,
                on_event=on_event,
                telemetry=self._telemetry_for(job),
            )
            job.stats = {
                "total": stats.total,
                "cached": stats.cached,
                "executed": stats.executed,
                "batched": stats.batched,
                "fallbacks": stats.fallbacks,
                "wall_time": stats.wall_time,
            }
        except Exception as exc:
            error = str(exc) or exc.__class__.__name__
            job.error = error
            for index in indices:
                if job.progress[index]["state"] not in ("done", "cached"):
                    job._update_spec(index, state="failed", error=error)
        finally:
            # Release every lease exactly once, success or not; followers
            # blocked on the events must never hang on a dead owner.
            with self._lock:
                for index in indices:
                    entry = self._inflight.pop(job.keys[index], None)
                    if entry is None:
                        continue
                    entry.result_key = job.progress[index]["result_key"]
                    if job.progress[index]["state"] == "failed":
                        entry.error = error or "execution failed"
                    entry.event.set()

    def _await_followed(self, job: Job, index: int, entry: _Inflight) -> None:
        while not entry.event.wait(timeout=1.0):
            if self._stop.is_set():
                job._update_spec(
                    index, state="failed", error="service stopped while waiting"
                )
                return
        if entry.error is not None:
            job._update_spec(index, state="failed", error=entry.error)
        else:
            snapshot = job._update_spec(
                index,
                state="done",
                from_cache=True,
                coalesced=True,
                result_key=entry.result_key,
            )
            self.log.write("spec_progress", job=job.id, **snapshot)

    def _abort_job(self, job: Job, message: str) -> None:
        job.error = message
        for entry in job.progress:
            if entry["state"] not in ("done", "cached", "failed"):
                entry.update(state="failed", error=message)
        with self._lock:
            for index in job.leased:
                inflight = self._inflight.pop(job.keys[index], None)
                if inflight is not None:
                    inflight.error = message
                    inflight.event.set()
        job._finalize()
        self.log.write("job_done", job=job.id, state=job.state, error=message)

    # -- janitor --------------------------------------------------------
    def run_janitor_once(self) -> Tuple[int, int]:
        """Apply the configured prune policy once; returns (removed, bytes)."""
        self.log.rotate_if_over()
        removed, freed = self.cache.prune(
            older_than=self.config.prune_older_than,
            max_bytes=self.config.max_cache_bytes,
        )
        if removed:
            self.log.write("janitor_pruned", removed=removed, freed_bytes=freed)
        return removed, freed

    def _janitor_loop(self) -> None:
        while not self._stop.wait(self.config.janitor_interval):
            try:
                self.run_janitor_once()
            except Exception:  # pragma: no cover - defensive
                pass

    # -- introspection --------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """The ``/healthz`` payload body (sans HTTP framing)."""
        from .. import __version__
        from ..experiments.executor import CACHE_FORMAT_VERSION
        from ..fastsim.backend import backend_available, backend_names

        with self._lock:
            counters = dict(self.counters)
            watchdogs = dict(self.watchdog_counts)
        return {
            "status": "ok",
            "version": __version__,
            "cache_format_version": CACHE_FORMAT_VERSION,
            "backends": {
                name: backend_available(name) for name in backend_names()
            },
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.config.workers,
            "sweep_workers": self.config.sweep_workers,
            "jobs": self.jobs.counts(),
            "counters": counters,
            "watchdogs": watchdogs,
            "cache": dict(self.cache.stats(), dir=str(self.cache.cache_dir)),
        }
