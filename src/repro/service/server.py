"""The HTTP/JSON front end of the sweep service (stdlib ``http.server``).

Thin and stateless by design -- every route is a translation between HTTP
and a :class:`~repro.service.core.SweepService` call:

======  ==================  ===================================================
POST    ``/sweeps``         submit specs (or a scenario + grid); returns the
                            job payload (``202``), fully-cached submissions
                            come back already ``done``
GET     ``/jobs/{id}``      job status: state, per-spec progress, sweep stats
GET     ``/jobs/{id}/events``  the job's live telemetry events (schema-stamped
                            JSONL records as a JSON list; ``?since=N`` resumes
                            from a cursor returned as ``next``)
GET     ``/results/{key}``  the raw cache file for a result key, byte-for-byte
                            (the key is the spec content hash plus its
                            ``.{backend}``/``.s{k}``/``.notrace``/
                            ``.obs-{digest}`` suffixes)
GET     ``/healthz``        liveness + version + cache/format info
GET     ``/specs``          registry listing (scenarios, components, backends,
                            observers)
======  ==================  ===================================================

``ThreadingHTTPServer`` gives one thread per connection; submissions enqueue
onto the service's worker pool and return immediately, so slow sweeps never
block the API.  Responses are JSON everywhere, errors are
``{"error": ...}`` with a matching status code.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..experiments import executor, registry
from ..experiments.spec import ScenarioSpec, SpecError
from ..fastsim.backend import backend_available, backend_names
from .core import ServiceError, ServiceUnavailableError, SweepService

#: Submissions larger than this are rejected up front (413) -- a grid body
#: has no business being megabytes of JSON.
MAX_BODY_BYTES = 50 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _specs_payload() -> Dict[str, Any]:
    """The ``GET /specs`` body: everything a client can name in a spec."""
    from ..metrics import DEFAULT_OBSERVERS, observer_names

    scenarios = []
    for name in registry.SCENARIOS.names():
        doc = (registry.SCENARIOS.get(name).__doc__ or "").strip().splitlines()
        scenarios.append({"name": name, "blurb": doc[0] if doc else ""})
    return {
        "scenarios": scenarios,
        "topologies": list(registry.TOPOLOGIES.names()),
        "dynamics": list(registry.DYNAMICS.names()),
        "drifts": list(registry.DRIFTS.names()),
        "delays": list(registry.DELAYS.names()),
        "algorithms": list(registry.ALGORITHMS.names()),
        "backends": [
            {"name": name, "available": backend_available(name)}
            for name in backend_names()
        ],
        "observers": [
            {"name": name, "default": name in DEFAULT_OBSERVERS}
            for name in observer_names()
        ],
    }


def _parse_submission(body: Dict[str, Any]) -> list:
    """Turn a ``POST /sweeps`` body into a spec list.

    Two shapes are accepted: ``{"specs": [<spec dict>, ...]}`` (explicit
    specs, e.g. from :meth:`ScenarioSpec.to_dict`) and ``{"scenario":
    <name>, "grid": {...}, "base": {...}}`` (server-side grid expansion,
    the HTTP twin of ``repro-experiments sweep``).
    """
    if not isinstance(body, dict):
        raise _HttpError(400, "request body must be a JSON object")
    if "specs" in body:
        raw = body["specs"]
        if not isinstance(raw, list) or not raw:
            raise _HttpError(400, "'specs' must be a non-empty list")
        try:
            return [ScenarioSpec.from_dict(item) for item in raw]
        except (SpecError, KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid spec: {exc}")
    if "scenario" in body:
        grid = body.get("grid") or {}
        base = body.get("base") or {}
        if not isinstance(grid, dict) or not isinstance(base, dict):
            raise _HttpError(400, "'grid' and 'base' must be JSON objects")
        try:
            if grid:
                return executor.expand_grid(body["scenario"], grid, base=base)
            return [registry.scenario(body["scenario"], **base)]
        except (
            registry.RegistryError,
            executor.ExecutorError,
            SpecError,
            TypeError,
            ValueError,
        ) as exc:
            raise _HttpError(400, f"invalid scenario submission: {exc}")
    raise _HttpError(400, "body needs either 'specs' or 'scenario'")


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one service via :func:`build_server`."""

    service: SweepService = None  # set on the generated subclass
    server_version = "repro-sweep-service"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs to the JSONL telemetry instead of stderr.
        self.service.log.write(
            "http", client=self.client_address[0], line=format % args
        )

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, body)

    def _send_bytes(
        self, status: int, body: bytes, content_type: str = "application/json"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _HttpError(400, "invalid Content-Length header")
        if length < 0:
            raise _HttpError(400, "invalid Content-Length header")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HttpError(400, "empty request body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")

    def _route(self) -> Tuple[str, Optional[str], Optional[str]]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [part for part in path.split("/") if part]
        if 1 <= len(parts) <= 3:
            head, tail, sub = (parts + [None, None])[:3]
            return head, tail, sub
        raise _HttpError(404, f"no such endpoint: {path}")

    def _query_int(self, name: str, default: int = 0) -> int:
        query = urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)
        raw = query.get(name, [None])[-1]
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise _HttpError(400, f"query parameter {name!r} must be an integer")

    # -- verbs ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            head, tail, sub = self._route()
            if head == "healthz" and tail is None:
                self._send_json(200, self.service.describe())
            elif head == "specs" and tail is None:
                self._send_json(200, _specs_payload())
            elif head == "jobs" and tail:
                job = self.service.jobs.get(tail)
                if job is None:
                    raise _HttpError(404, f"unknown job {tail!r}")
                if sub is None:
                    self._send_json(200, job.to_payload())
                elif sub == "events":
                    since = self._query_int("since", 0)
                    self._send_json(200, job.events_payload(since))
                else:
                    raise _HttpError(404, f"no such endpoint: {self.path}")
            elif head == "results" and tail and sub is None:
                self._send_result(tail)
            else:
                raise _HttpError(404, f"no such endpoint: {self.path}")
        except _HttpError as exc:
            self._send_json(exc.status, {"error": exc.message})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            head, tail, sub = self._route()
            if head != "sweeps" or tail is not None or sub is not None:
                raise _HttpError(404, f"no such endpoint: {self.path}")
            specs = _parse_submission(self._read_body())
            try:
                job = self.service.submit(specs)
            except ServiceUnavailableError as exc:
                # Draining for shutdown: tell clients to go elsewhere.
                raise _HttpError(503, str(exc))
            except ServiceError as exc:
                raise _HttpError(400, str(exc))
            self._send_json(202, job.to_payload())
        except _HttpError as exc:
            self._send_json(exc.status, {"error": exc.message})

    def _send_result(self, key: str) -> None:
        # The cache IS the result API: the response body is the cache file,
        # byte-for-byte, so clients and on-disk consumers agree exactly.
        try:
            path = self.service.cache.path_for_key(key)
        except executor.ExecutorError as exc:
            raise _HttpError(400, str(exc))
        try:
            body = path.read_bytes()
        except OSError:
            raise _HttpError(404, f"no cached result for key {key!r}")
        self._send_bytes(200, body)


def build_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 8765
) -> ThreadingHTTPServer:
    """An HTTP server wired to ``service`` (not yet serving; port 0 works)."""
    handler = type("BoundSweepHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


class SweepServer:
    """Convenience bundle: one service + one HTTP server, started together.

    ``serve_forever()`` blocks (the CLI path); ``start_background()`` runs
    the listener in a daemon thread and returns the base URL (the tests'
    path).  Either way ``shutdown()`` stops the listener and the service's
    worker pool.
    """

    def __init__(
        self,
        service: SweepService,
        host: str = "127.0.0.1",
        port: int = 8765,
    ):
        self.service = service
        self.httpd = build_server(service, host, port)
        self._thread = None
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self, drain_timeout: Optional[float] = None) -> None:
        self.service.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.shutdown(drain_timeout=drain_timeout)

    def start_background(self) -> str:
        import threading

        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="sweep-http", daemon=True
        )
        self._thread.start()
        return self.url

    def shutdown(self, drain_timeout: Optional[float] = None) -> None:
        """Stop the listener, then the service.

        With ``drain_timeout`` set, the service drains gracefully
        (:meth:`SweepService.drain`): in-flight jobs finish within the
        bound, queued jobs fail with a clear status.  Without it, the
        worker pool stops abruptly (the original behaviour).
        """
        if self._closed:
            return
        self._closed = True
        if drain_timeout is not None:
            # Refuse new submissions *before* closing the listener so any
            # request already in a handler thread gets a clean 503 instead
            # of a reset connection.
            self.service.drain(drain_timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()
