"""Long-running sweep service: job queue, worker pool, HTTP/JSON API.

The one-shot :mod:`repro.experiments` executor already has everything a
shared service needs -- content-hashed :class:`ScenarioSpec` identities, an
on-disk result cache, parallel workers, backend fallback -- but as a CLI
every user pays full simulation cost.  This package turns that machinery
into a daemon that serves many clients from one cache:

* :mod:`repro.service.core` -- :class:`SweepService`: a thread-safe job
  store, a job queue drained by a worker pool that drives the *same*
  :func:`repro.experiments.executor.run_sweep` loop as the CLI, and
  per-cache-key single-flight coalescing, so identical specs submitted by
  concurrent clients execute exactly once;
* :mod:`repro.service.server` -- the stdlib ``ThreadingHTTPServer`` front
  end (``POST /sweeps``, ``GET /jobs/{id}``, ``GET /results/{key}``,
  ``GET /healthz``, ``GET /specs``).  The cache is the API: result payloads
  are served byte-for-byte from the cache files, keyed by the spec content
  hash plus its ``.{backend}`` / ``.s{k}`` / ``.notrace`` / ``.obs-{digest}``
  observation suffixes;
* :mod:`repro.service.client` -- a small ``urllib``-only client
  (:class:`ServiceClient`) used by the tests, the CI smoke job and docs;
* :mod:`repro.service.events` -- JSONL request/job telemetry
  (:class:`JsonlLog`), so live sweep progress is ``tail -f``-able.

Everything here is standard library only; the daemon must import and run
on the no-numpy CI leg.  Start it with ``repro-experiments serve``.
"""

from .client import ClientError, JobFailed, RetryExhaustedError, ServiceClient
from .core import (
    Job,
    JobStore,
    ServiceConfig,
    ServiceError,
    ServiceUnavailableError,
    SweepService,
)
from .events import JsonlLog
from .server import SweepServer, build_server

__all__ = [
    "ClientError",
    "Job",
    "JobFailed",
    "JobStore",
    "JsonlLog",
    "RetryExhaustedError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailableError",
    "SweepServer",
    "SweepService",
    "build_server",
]
