"""A small stdlib-only client for the sweep service HTTP API.

Used by the test suite, the CI smoke job and the docs; kept deliberately
free of anything beyond ``urllib`` so it runs wherever the daemon does
(including the no-numpy CI leg)::

    from repro.experiments import scenario
    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit([scenario("quickstart_line", n=4)])
    job = client.wait(job["id"])
    for entry in job["specs"]:
        payload = client.result(entry["result_key"])
        print(entry["label"], payload["summary"]["max_global_skew"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from ..experiments.spec import ScenarioSpec


class ClientError(RuntimeError):
    """An HTTP-level failure talking to the sweep service.

    ``status`` is the HTTP status code (``None`` for transport failures,
    e.g. connection refused); ``payload`` is the decoded JSON error body
    when the server sent one.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobFailed(ClientError):
    """Raised by :meth:`ServiceClient.wait` when the job ends ``failed``."""

    def __init__(self, job: Dict[str, Any]):
        super().__init__(f"job {job.get('id')} failed: {job.get('error')}")
        self.job = job


class ServiceClient:
    """Talk to a running sweep service daemon."""

    def __init__(self, base_url: str, *, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                payload = {}
            message = payload.get("error") or f"HTTP {exc.code} on {method} {path}"
            raise ClientError(message, status=exc.code, payload=payload) from exc
        except urllib.error.URLError as exc:
            raise ClientError(
                f"cannot reach sweep service at {self.base_url}: {exc.reason}"
            ) from exc

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        return json.loads(self._request(method, path, body).decode("utf-8"))

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def specs(self) -> Dict[str, Any]:
        return self._json("GET", "/specs")

    def submit(
        self, specs: Iterable[Union[ScenarioSpec, Mapping[str, Any]]]
    ) -> Dict[str, Any]:
        """Submit explicit specs; returns the job payload (maybe done)."""
        serialised: List[Dict[str, Any]] = []
        for spec in specs:
            serialised.append(
                spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
            )
        return self._json("POST", "/sweeps", {"specs": serialised})

    def submit_grid(
        self,
        scenario: str,
        grid: Optional[Mapping[str, Any]] = None,
        base: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a named scenario + grid; the server expands the product."""
        return self._json(
            "POST",
            "/sweeps",
            {"scenario": scenario, "grid": dict(grid or {}), "base": dict(base or {})},
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def job_events(self, job_id: str, since: int = 0) -> Dict[str, Any]:
        """Telemetry events for a job; pass the returned ``next`` as the
        following ``since`` to read only new events."""
        return self._json("GET", f"/jobs/{job_id}/events?since={int(since)}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; raises :class:`JobFailed` on
        failure and :class:`ClientError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] == "done":
                return payload
            if payload["state"] == "failed":
                raise JobFailed(payload)
            if time.monotonic() >= deadline:
                raise ClientError(
                    f"job {job_id} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def result_bytes(self, result_key: str) -> bytes:
        """The raw cache payload for a result key, byte-for-byte."""
        return self._request("GET", f"/results/{result_key}")

    def result(self, result_key: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(result_key).decode("utf-8"))

    # -- conveniences ---------------------------------------------------
    def run(
        self,
        specs: Iterable[Union[ScenarioSpec, Mapping[str, Any]]],
        *,
        timeout: float = 300.0,
    ) -> List[Dict[str, Any]]:
        """Submit, wait and fetch: one result payload per spec, in order."""
        job = self.submit(specs)
        if job["state"] not in ("done", "failed"):
            job = self.wait(job["id"], timeout=timeout)
        if job["state"] == "failed":
            raise JobFailed(job)
        return [self.result(entry["result_key"]) for entry in job["specs"]]

    def wait_until_ready(self, *, timeout: float = 30.0, poll_interval: float = 0.2):
        """Block until ``/healthz`` answers (daemon startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval)
