"""A small stdlib-only client for the sweep service HTTP API.

Used by the test suite, the CI smoke job and the docs; kept deliberately
free of anything beyond the standard library so it runs wherever the daemon
does (including the no-numpy CI leg)::

    from repro.experiments import scenario
    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit([scenario("quickstart_line", n=4)])
    job = client.wait(job["id"])
    for entry in job["specs"]:
        payload = client.result(entry["result_key"])
        print(entry["label"], payload["summary"]["max_global_skew"])

The client is hardened against a flaky daemon:

* every request carries separate **connect** and **read** timeouts;
* transient failures retry with bounded, deterministic exponential backoff
  -- idempotent ``GET``\\ s on connection-refused, connection-reset and HTTP
  503, ``POST /sweeps`` only when the connection was never established (so
  a submission can never be duplicated);
* when the retry budget runs out, :class:`RetryExhaustedError` carries the
  full attempt log for diagnosis.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from ..experiments.spec import ScenarioSpec


class ClientError(RuntimeError):
    """An HTTP-level failure talking to the sweep service.

    ``status`` is the HTTP status code (``None`` for transport failures,
    e.g. connection refused); ``payload`` is the decoded JSON error body
    when the server sent one.
    """

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class RetryExhaustedError(ClientError):
    """Every attempt of a retryable request failed.

    ``attempts`` is the log: one ``{"attempt", "error", "status",
    "backoff"}`` dict per try, in order (``backoff`` is the sleep applied
    *after* that failure; the final entry has ``backoff: None``).
    ``status``/``payload`` reflect the last failure.
    """

    def __init__(
        self,
        message: str,
        attempts: List[Dict[str, Any]],
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(message, status=status, payload=payload)
        self.attempts = attempts


class JobFailed(ClientError):
    """Raised by :meth:`ServiceClient.wait` when the job ends ``failed``."""

    def __init__(self, job: Dict[str, Any]):
        super().__init__(f"job {job.get('id')} failed: {job.get('error')}")
        self.job = job


class _TransportFailure(Exception):
    """Internal: a socket-level failure, tagged with whether any byte of the
    request could have reached the server."""

    def __init__(self, cause: Exception, before_send: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.before_send = before_send


class _HttpFailure(Exception):
    """Internal: a non-2xx response (the request *was* processed or
    deliberately rejected)."""

    def __init__(self, message: str, status: int, payload: Dict[str, Any]):
        super().__init__(message)
        self.status = status
        self.payload = payload


#: HTTP statuses that signal "try again later" (the drain path returns 503).
RETRYABLE_STATUSES = (503,)


class ServiceClient:
    """Talk to a running sweep service daemon.

    ``timeout`` is the legacy single knob; ``connect_timeout`` and
    ``read_timeout`` override it per phase.  ``retries`` bounds the number
    of *re*-tries after the first attempt; backoff after failure ``i`` is
    ``min(backoff_base * 2**i, backoff_max)`` seconds -- deterministic, no
    jitter, so tests and incident timelines can reason about it.  ``sleep``
    is injectable for tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 3,
        backoff_base: float = 0.2,
        backoff_max: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme not in ("http", "https") or not split.hostname:
            raise ClientError(f"base_url must be http(s)://host[:port], got {base_url!r}")
        self._scheme = split.scheme
        self._host = split.hostname
        self._port = split.port or (443 if split.scheme == "https" else 80)
        self._prefix = split.path.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        if retries < 0:
            raise ClientError(f"retries must be >= 0, got {retries}")
        if backoff_base < 0.0 or backoff_max < 0.0:
            raise ClientError("backoff_base and backoff_max must be non-negative")
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._sleep = sleep

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        return cls(self._host, self._port, timeout=self.connect_timeout)

    def _attempt(self, method: str, path: str, data: Optional[bytes]) -> bytes:
        """One request attempt; raises _TransportFailure or _HttpFailure."""
        conn = self._connection()
        try:
            try:
                conn.connect()
            except (OSError, socket.timeout) as exc:
                # Connect failed: no byte of the request left this process,
                # so even a POST is safe to retry.
                raise _TransportFailure(exc, before_send=True)
            if conn.sock is not None:
                conn.sock.settimeout(self.read_timeout)
            headers = {"Content-Type": "application/json"} if data else {}
            try:
                conn.request(method, self._prefix + path, body=data, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
            except (OSError, socket.timeout, http.client.HTTPException) as exc:
                # The request may have reached (and been processed by) the
                # server; only idempotent methods may retry from here.
                raise _TransportFailure(exc, before_send=False)
        finally:
            conn.close()
        if 200 <= status < 300:
            return raw
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = {}
        message = payload.get("error") or f"HTTP {status} on {method} {path}"
        raise _HttpFailure(message, status, payload)

    def _retryable(self, method: str, failure: Exception) -> bool:
        if isinstance(failure, _TransportFailure):
            if failure.before_send:
                return True
            return method == "GET"
        if isinstance(failure, _HttpFailure):
            # A status line was read, so the server saw the request: only
            # idempotent methods retry, even on 503.
            return method == "GET" and failure.status in RETRYABLE_STATUSES
        return False

    def _backoff(self, failure_index: int) -> float:
        return min(self.backoff_base * (2 ** failure_index), self.backoff_max)

    def _raise(self, method: str, path: str, failure: Exception) -> None:
        if isinstance(failure, _HttpFailure):
            raise ClientError(
                str(failure), status=failure.status, payload=failure.payload
            ) from failure
        assert isinstance(failure, _TransportFailure)
        raise ClientError(
            f"cannot reach sweep service at {self.base_url}: {failure.cause}"
        ) from failure.cause

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        attempts: List[Dict[str, Any]] = []
        for attempt in range(self.retries + 1):
            try:
                return self._attempt(method, path, data)
            except (_TransportFailure, _HttpFailure) as failure:
                status = getattr(failure, "status", None)
                entry: Dict[str, Any] = {
                    "attempt": attempt + 1,
                    "error": str(failure),
                    "status": status,
                    "backoff": None,
                }
                attempts.append(entry)
                if not self._retryable(method, failure):
                    self._raise(method, path, failure)
                if attempt >= self.retries:
                    payload = getattr(failure, "payload", None)
                    raise RetryExhaustedError(
                        f"{method} {path} failed after {len(attempts)} attempt(s) "
                        f"against {self.base_url}: {failure}",
                        attempts,
                        status=status,
                        payload=payload,
                    ) from failure
                backoff = self._backoff(attempt)
                entry["backoff"] = backoff
                if backoff > 0.0:
                    self._sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        return json.loads(self._request(method, path, body).decode("utf-8"))

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def specs(self) -> Dict[str, Any]:
        return self._json("GET", "/specs")

    def submit(
        self, specs: Iterable[Union[ScenarioSpec, Mapping[str, Any]]]
    ) -> Dict[str, Any]:
        """Submit explicit specs; returns the job payload (maybe done)."""
        serialised: List[Dict[str, Any]] = []
        for spec in specs:
            serialised.append(
                spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
            )
        return self._json("POST", "/sweeps", {"specs": serialised})

    def submit_grid(
        self,
        scenario: str,
        grid: Optional[Mapping[str, Any]] = None,
        base: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a named scenario + grid; the server expands the product."""
        return self._json(
            "POST",
            "/sweeps",
            {"scenario": scenario, "grid": dict(grid or {}), "base": dict(base or {})},
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def job_events(self, job_id: str, since: int = 0) -> Dict[str, Any]:
        """Telemetry events for a job; pass the returned ``next`` as the
        following ``since`` to read only new events."""
        return self._json("GET", f"/jobs/{job_id}/events?since={int(since)}")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; raises :class:`JobFailed` on
        failure and :class:`ClientError` on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] == "done":
                return payload
            if payload["state"] == "failed":
                raise JobFailed(payload)
            if time.monotonic() >= deadline:
                raise ClientError(
                    f"job {job_id} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def result_bytes(self, result_key: str) -> bytes:
        """The raw cache payload for a result key, byte-for-byte."""
        return self._request("GET", f"/results/{result_key}")

    def result(self, result_key: str) -> Dict[str, Any]:
        return json.loads(self.result_bytes(result_key).decode("utf-8"))

    # -- conveniences ---------------------------------------------------
    def run(
        self,
        specs: Iterable[Union[ScenarioSpec, Mapping[str, Any]]],
        *,
        timeout: float = 300.0,
    ) -> List[Dict[str, Any]]:
        """Submit, wait and fetch: one result payload per spec, in order."""
        job = self.submit(specs)
        if job["state"] not in ("done", "failed"):
            job = self.wait(job["id"], timeout=timeout)
        if job["state"] == "failed":
            raise JobFailed(job)
        return [self.result(entry["result_key"]) for entry in job["specs"]]

    def wait_until_ready(self, *, timeout: float = 30.0, poll_interval: float = 0.2):
        """Block until ``/healthz`` answers (daemon startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.healthz()
            except ClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll_interval)
