"""NumPy-vectorized batch simulation backend (``backend="vec"``).

``repro.vecsim`` replaces the per-node Python loops of :mod:`repro.fastsim`
with whole-array NumPy kernels -- elementwise clock and max-estimate
advancement, CSR-reduced trigger evaluation, vectorized broadcast transport
-- while keeping bit-identity with the reference engine on the AOPT + oracle
scenario family.  A :class:`~repro.vecsim.engine.VecContext` additionally
stacks R independent runs into one set of concatenated arrays so a sweep of
compatible runs is advanced by a single kernel invocation per phase
("run batching"; see :func:`~repro.vecsim.engine.build_batch` and the
batching support in :mod:`repro.experiments.executor`).

numpy is an *optional* dependency (``pip install repro[vec]``): importing
this package without numpy raises ``ImportError``; the backend registry in
:mod:`repro.fastsim.backend` guards for that and raises
:class:`~repro.fastsim.backend.BackendUnavailableError` with the list of
runnable backends instead.

Modules:

* :mod:`repro.vecsim.kernels` -- the NumPy kernels, each documented against
  the scalar code it reproduces bit for bit;
* :mod:`repro.vecsim.engine` -- :class:`~repro.vecsim.engine.VecEngine`
  (single run) and :class:`~repro.vecsim.engine.VecContext` (run batching).
"""

from .engine import VecContext, VecEngine, build_batch

__all__ = ["VecContext", "VecEngine", "build_batch"]
