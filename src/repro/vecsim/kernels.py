"""NumPy kernels for the vectorized simulation backend.

Each kernel is the whole-array counterpart of one phase of
:meth:`repro.fastsim.engine.FastEngine._control_all`, written so that every
per-element float operation is the *same IEEE-754 operation in the same
order* as the scalar code it replaces:

* :func:`advance_max_estimates` mirrors the ``MaxEstimateTracker.advance``
  expressions (``m = max_estimate + delta * factor``; ``m = lg if lg > m``);
* :func:`edge_aheads` mirrors the inlined oracle estimate strategies of the
  fast engine's control loop (elementwise per CSR entry);
* :func:`evaluate_modes_vec` mirrors :func:`repro.core.aopt_step
  .evaluate_mode_flat` for *all* nodes at once: the per-level existential /
  universal trigger conditions become masked per-edge comparisons reduced
  per CSR row, and the reference's per-node early exit (sound because the
  thresholds grow with the level while the view sets shrink) becomes a
  global loop that stops once *no* row has a neighbor beyond the
  existential threshold.

All comparisons are exact (no tolerance is introduced or dropped), so the
mode decisions -- and therefore the traces -- are bit-identical to the
reference and fast backends.  Max reductions are order-insensitive, so CSR
row order never matters.
"""

from __future__ import annotations

import numpy as np

#: Threshold table rows (same layout as ``aopt_step.ThresholdTable``).
THR_FAST_AHEAD = 0
THR_FAST_BEHIND = 1
THR_SLOW_BEHIND = 2
THR_SLOW_AHEAD = 3


def _firing_levels(
    values: np.ndarray,
    thresholds: np.ndarray,
    table_id: np.ndarray,
    table_count: int,
    row: int,
    side: str,
) -> np.ndarray:
    """Per-edge highest level at which one trigger half holds.

    ``thresholds[tid, row]`` is one nondecreasing per-level threshold
    sequence (padded with ``+inf``), so the levels satisfying
    ``value >= thr[s]`` (``side='right'``) or ``value > thr[s]``
    (``side='left'``) form a prefix whose length ``np.searchsorted`` counts
    with the *exact same comparisons* the scalar kernel performs level by
    level.
    """
    if table_count == 1:
        return np.searchsorted(thresholds[0, row], values, side=side)
    counts = np.empty(len(values), dtype=np.int64)
    for tid in range(table_count):
        selector = table_id == tid
        counts[selector] = np.searchsorted(
            thresholds[tid, row], values[selector], side=side
        )
    return counts


def advance_max_estimates(
    hardware: np.ndarray,
    last_hardware: np.ndarray,
    max_estimate: np.ndarray,
    logical: np.ndarray,
    factor: np.ndarray,
    scratch: np.ndarray,
    flags: np.ndarray,
) -> None:
    """In-place max-estimate maintenance (``MaxEstimateTracker.advance``).

    ``scratch`` (float) and ``flags`` (bool) are reusable work arrays of the
    same length; every element operation matches the scalar tracker exactly.
    """
    np.subtract(hardware, last_hardware, out=scratch)  # delta
    np.less(scratch, 0.0, out=flags)
    np.copyto(scratch, 0.0, where=flags)
    np.copyto(last_hardware, hardware)
    np.multiply(scratch, factor, out=scratch)
    np.add(max_estimate, scratch, out=scratch)  # m = max_estimate + delta * factor
    np.greater(logical, scratch, out=flags)
    np.copyto(scratch, logical, where=flags)  # m = logical if logical > m
    np.copyto(max_estimate, scratch)


def broadcast_aheads(hardware: np.ndarray, logical: np.ndarray, view) -> np.ndarray:
    """Per-CSR-entry ``estimate - logical`` for broadcast-mode estimates.

    Mirrors ``BroadcastEstimateLayer.estimate`` elementwise: the stored
    broadcast value extrapolated at the observer's hardware rate,
    ``stored + max(0.0, hw_now - stored_hw)``.  Slots without a stored
    broadcast (``view.bc_valid`` false) produce finite garbage here and are
    masked out of the trigger evaluation by the caller.  The result aliases
    the view's scratch and is only valid until the next call.
    """
    owner = view.row_owner
    work = view.edge_f1
    np.take(hardware, owner, out=work)
    np.subtract(work, view.bc_hw, out=work)  # elapsed hardware
    np.maximum(work, 0.0, out=work)  # max(0.0, elapsed)
    np.add(view.bc_value, work, out=work)  # estimate
    owner_logical = np.take(logical, owner, out=view.edge_f2)
    return np.subtract(work, owner_logical, out=work)


def edge_aheads(strategy: int, logical: np.ndarray, view) -> np.ndarray:
    """Per-CSR-entry ``estimate - logical`` for the non-random strategies.

    Strategy codes follow ``fastsim.engine._STRATEGY_CODES``; the ``uniform``
    strategy (code 1) draws from a Python rng in set order and is filled by
    the engine instead (see ``VecEngine._fill_uniform_aheads``).  Work
    happens in the view's scratch buffers (``edge_f1`` / ``edge_f2`` /
    ``edge_f3`` / ``edge_b``) so the hot path allocates nothing; the result
    aliases one of them and is only valid until the next call.
    """
    epsilon = view.epsilon
    true_value = np.take(logical, view.neighbor_index, out=view.edge_f1)
    owner = np.take(logical, view.row_owner, out=view.edge_f2)
    work = view.edge_f3
    flags = view.edge_b
    if strategy == 0:  # zero error
        estimate = true_value
    elif strategy == 4:  # toward_observer
        np.subtract(owner, true_value, out=work)  # difference
        np.clip(work, view.neg_epsilon, epsilon, out=work)  # error
        np.add(true_value, work, out=work)  # estimate
        np.less(work, 0.0, out=flags)
        np.copyto(work, 0.0, where=flags)
        estimate = work
    elif strategy == 2:  # underestimate
        np.subtract(true_value, epsilon, out=work)
        np.less(work, 0.0, out=flags)
        np.copyto(work, 0.0, where=flags)
        estimate = work
    elif strategy == 3:  # overestimate
        np.add(true_value, epsilon, out=work)
        estimate = work
    else:  # pragma: no cover - guarded at engine construction
        raise ValueError(f"strategy {strategy} has no vectorized estimate rule")
    return np.subtract(estimate, owner, out=estimate if estimate is work else view.edge_f3)


def evaluate_modes_vec(
    view,
    ahead: np.ndarray,
    logical: np.ndarray,
    max_estimate: np.ndarray,
    iota: np.ndarray,
    mode: np.ndarray,
    equality_tolerance: float = 1e-9,
    valid: np.ndarray = None,
) -> np.ndarray:
    """All-nodes counterpart of :func:`repro.core.aopt_step.evaluate_mode_flat`.

    The scalar kernel walks levels ``s = 1, 2, ...`` and fires a trigger at
    the first ``s`` where its existential half holds and its universal half
    is unviolated.  Because each per-edge threshold sequence is nondecreasing
    in ``s`` while the level-``s`` view sets only shrink, every half holds on
    a *prefix* of levels: per node, "someone is behind at ``s``" holds
    exactly for ``s <= B`` and "someone is too far ahead at ``s``" exactly
    for ``s <= F``, where ``B`` / ``F`` are row-maxima of the per-edge prefix
    lengths (clamped to the edge's own level).  ``exists s: behind(s) and
    not far(s)`` then collapses to ``B > F`` -- the whole level loop becomes
    four exact searchsorted/row-max passes and one comparison.

    ``view`` is a combined CSR view (``edge_count``, ``level``, ``starts`` /
    ``empty``, ``thresholds`` of shape ``(T, 4, L)`` padded with ``+inf``,
    ``table_id``).  ``mode`` is the previous step's mode column (read for
    the "free" case only).  ``valid`` (broadcast estimate mode) masks CSR
    entries whose pair has not stored a broadcast yet: the scalar engines
    leave such neighbors out of the trigger view entirely, which is exactly
    a firing level of 0 here.  Returns the new mode codes.
    """
    n = len(logical)
    all_valid = valid is None or bool(valid.all())
    if view.edge_count and view.homogeneous and all_valid:
        # Single threshold table and every edge at max level: "someone
        # beyond threshold" becomes a comparison of the per-node extremum
        # against the (scalar) per-level threshold -- max commutes with the
        # exact comparison, so this is the scalar level loop verbatim, run
        # on n-sized arrays with the same early exit.
        ahead_max = view.row_max_values(ahead)
        neg_max = view.row_max_values(np.negative(ahead, out=view.edge_f1))
        table = view.thresholds[0]
        fast_ahead = table[THR_FAST_AHEAD]
        fast_behind = table[THR_FAST_BEHIND]
        slow_behind = table[THR_SLOW_BEHIND]
        slow_ahead = table[THR_SLOW_AHEAD]
        slow_fire = np.zeros(n, dtype=bool)
        fast_fire = np.zeros(n, dtype=bool)
        for s in range(view.max_level):
            someone_behind = neg_max >= slow_behind[s]
            if not someone_behind.any():
                break
            slow_fire |= someone_behind & (ahead_max <= slow_ahead[s])
        for s in range(view.max_level):
            someone_ahead = ahead_max >= fast_ahead[s]
            if not someone_ahead.any():
                break
            fast_fire |= someone_ahead & (neg_max <= fast_behind[s])
    elif view.edge_count:
        neg_ahead = -ahead
        level = view.level
        thresholds = view.thresholds
        table_id = view.table_id
        table_count = len(thresholds)
        # Per-edge prefix lengths of the four trigger halves, stacked so one
        # reduceat pass computes all four row-maxima.
        firing = np.stack(
            [
                _firing_levels(  # slow: someone at/beyond the behind threshold
                    neg_ahead, thresholds, table_id, table_count, THR_SLOW_BEHIND, "right"
                ),
                _firing_levels(  # slow: someone beyond the far-ahead threshold
                    ahead, thresholds, table_id, table_count, THR_SLOW_AHEAD, "left"
                ),
                _firing_levels(  # fast: someone at/beyond the ahead threshold
                    ahead, thresholds, table_id, table_count, THR_FAST_AHEAD, "right"
                ),
                _firing_levels(  # fast: someone beyond the far-behind threshold
                    neg_ahead, thresholds, table_id, table_count, THR_FAST_BEHIND, "left"
                ),
            ]
        )
        np.minimum(firing, level, out=firing)
        if not all_valid:
            np.copyto(firing, 0, where=~valid)
        rows = np.maximum.reduceat(firing, view.starts, axis=1)
        if view.empty.any():
            rows[:, view.empty] = 0
        # Slow trigger (Definition 4.6): fires at some level s iff s <= B
        # (behind) and s > F (far ahead), i.e. iff B > F; same for fast.
        slow_fire = rows[0] > rows[1]
        fast_fire = rows[2] > rows[3]
    else:
        slow_fire = np.zeros(n, dtype=bool)
        fast_fire = slow_fire
    # Max estimate triggers (Definition 4.7); "free" keeps the current mode.
    lag = max_estimate - logical
    return np.where(
        slow_fire,
        0,
        np.where(
            fast_fire,
            1,
            np.where(lag <= equality_tolerance, 0, np.where(lag >= iota, 1, mode)),
        ),
    )
