"""The NumPy-vectorized simulation engine and its run-batching context.

:class:`VecEngine` runs the same fixed-step simulation as
:class:`repro.fastsim.engine.FastEngine` (from which it inherits the whole
event / insertion-handshake / transport machinery) but executes the per-step
hot phases as NumPy array kernels over *all* nodes at once:

* max-estimate maintenance, oracle *and* broadcast estimates, trigger
  evaluation and clock advancement are whole-array operations
  (:mod:`repro.vecsim.kernels`);
* broadcast messages travel through flat ``(delivery_time, receiver, value)``
  arrays instead of a heap -- sound in oracle mode because the max-estimate
  flooding update is an order-insensitive maximum, and in broadcast estimate
  mode because a stable ``(delivery_time, message_id)`` sort plus
  keep-last-per-slot reproduces the reference transport's delivery order --
  while the rare ``INSERT_EDGE`` messages keep using the inherited heap;
* message-delay draws stay on the *Python* rng (bit-identity requires the
  exact Mersenne-Twister stream the reference consumes), but the draws are
  batched per step and turned into delays with the same float expressions.

Run batching
------------

A :class:`VecContext` owns the flat state columns; every engine's columns
are views into the context's arrays.  A context over ``R`` engines advances
all of them in lockstep: one kernel invocation per phase covers the
concatenated node (and CSR edge) ranges of every run, so a sweep of many
small compatible runs (same ``dt``, same duration, same estimate strategy)
pays the NumPy dispatch overhead once instead of ``R`` times.  Runs never
interact -- separate graphs, schedulers and rng streams -- so a batched run
is bit-identical to the same run executed alone (the differential suite
asserts this).

Bit-identity caveats encoded here:

* :class:`~repro.sim.drift.SinusoidalDrift` (and unknown drift models) use a
  scalar per-node fallback: ``math.sin`` and ``np.sin`` may differ in the
  last ulp;
* the ``uniform`` estimate strategy draws per neighbor in the reference's
  set-iteration order, so its estimates are filled by a scalar loop (the
  trigger evaluation stays vectorized);
* scenarios with ``drop_messages_on_edge_loss`` keep the inherited heap
  transport (per-message membership checks don't vectorize).
"""

from __future__ import annotations

import random as _random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.aopt_step import MODE_NAMES
from ..core.interfaces import AlgorithmFactory
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from ..sim.drift import (
    ConstantDrift,
    NoDrift,
    RampAdversary,
    RandomConstantDrift,
    RandomWalkDrift,
    TwoGroupAdversary,
)
from ..sim.delay import (
    DirectionalDelay,
    FixedFractionDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from ..sim.engine import EngineError
from ..sim.runner import SimulationConfig
from ..sim.trace import Trace
from ..fastsim.engine import FastEngine, FastsimError
from . import kernels

__all__ = ["VecEngine", "VecContext", "build_batch"]


# ----------------------------------------------------------------------
# Drift rate plans: fill a per-node rate array bit-identically to the
# scalar ``drift.rate(node, t)`` calls of the fast engine.
# ----------------------------------------------------------------------
class _RatePlan:
    def fill(self, out: np.ndarray, t: float) -> None:  # pragma: no cover
        raise NotImplementedError


class _UnitRatePlan(_RatePlan):
    def fill(self, out: np.ndarray, t: float) -> None:
        out.fill(1.0)


class _ConstantRatePlan(_RatePlan):
    """Any drift whose per-node rate never depends on time."""

    def __init__(self, rates: Sequence[float]):
        self._rates = np.asarray(rates, dtype=np.float64)

    def fill(self, out: np.ndarray, t: float) -> None:
        np.copyto(out, self._rates)


class _TwoPhaseRatePlan(_RatePlan):
    """Two precomputed rate vectors toggled by a period (two-group, ramp)."""

    def __init__(self, normal: Sequence[float], swapped: Sequence[float], period: Optional[float]):
        self._normal = np.asarray(normal, dtype=np.float64)
        self._swapped = np.asarray(swapped, dtype=np.float64)
        self._period = period

    def fill(self, out: np.ndarray, t: float) -> None:
        swapped = self._period is not None and int(t // self._period) % 2 == 1
        np.copyto(out, self._swapped if swapped else self._normal)


class _RandomWalkRatePlan(_RatePlan):
    """Epoch-cached rates; the rng advances exactly as under scalar calls."""

    def __init__(self, drift: RandomWalkDrift, ids: Sequence[NodeId]):
        self._drift = drift
        self._ids = list(ids)
        self._epoch = None
        self._rates: Optional[np.ndarray] = None

    def fill(self, out: np.ndarray, t: float) -> None:
        epoch = int(t // self._drift.period)
        if epoch != self._epoch:
            self._drift._advance_epochs(epoch)
            offsets = self._drift._offsets
            self._rates = np.asarray(
                [1.0 + offsets.get(node, 0.0) for node in self._ids], dtype=np.float64
            )
            self._epoch = epoch
        np.copyto(out, self._rates)


class _GenericRatePlan(_RatePlan):
    """Scalar fallback: per-node ``rate()`` calls (sinusoidal, custom)."""

    def __init__(self, drift, ids: Sequence[NodeId]):
        self._drift = drift
        self._ids = list(ids)

    def fill(self, out: np.ndarray, t: float) -> None:
        rate_of = self._drift.rate
        for i, node in enumerate(self._ids):
            out[i] = rate_of(node, t)


def _make_rate_plan(drift, ids: Sequence[NodeId]) -> _RatePlan:
    kind = type(drift)
    if kind is NoDrift:
        return _UnitRatePlan()
    if kind is TwoGroupAdversary:
        fast_rate = 1.0 + drift.rho
        slow_rate = 1.0 - drift.rho

        def rates(swap: bool) -> List[float]:
            values = []
            for node in ids:
                fast = node in drift.fast_nodes
                slow = node in drift.slow_nodes
                if swap:
                    fast, slow = slow, fast
                values.append(fast_rate if fast else slow_rate if slow else 1.0)
            return values

        return _TwoPhaseRatePlan(rates(False), rates(True), drift.swap_period)
    if kind in (ConstantDrift, RandomConstantDrift):
        return _ConstantRatePlan([1.0 + drift.offsets.get(node, 0.0) for node in ids])
    if kind is RampAdversary:
        normal = [drift.rate(node, 0.0) for node in ids]
        if drift.reverse_period is None:
            return _ConstantRatePlan(normal)
        reversed_rates = [drift.rate(node, drift.reverse_period) for node in ids]
        return _TwoPhaseRatePlan(normal, reversed_rates, drift.reverse_period)
    if kind is RandomWalkDrift:
        return _RandomWalkRatePlan(drift, ids)
    return _GenericRatePlan(drift, ids)


# ----------------------------------------------------------------------
# Delay plans: turn one step's batched sends into delay arrays.
# ----------------------------------------------------------------------
class _DelayPlan:
    #: Whether per-entry delays can be precomputed once per broadcast cache.
    static = False

    def delays(self, engine: "VecEngine", t: float, bounds, static, pairs):
        raise NotImplementedError  # pragma: no cover

    def static_delay(self, sender: NodeId, receiver: NodeId, bound: float) -> float:
        raise NotImplementedError  # pragma: no cover

    def sync_python_rng(self) -> None:
        """Restore the model's Python rng before a scalar ``delay()`` call.

        No-op except for the uniform plan, which owns the Mersenne-Twister
        stream between scalar draws (see :class:`_UniformDelayPlan`).
        """


class _StaticDelayPlan(_DelayPlan):
    static = True

    def delays(self, engine, t, bounds, static, pairs):
        return static


class _ZeroDelayPlan(_StaticDelayPlan):
    def static_delay(self, sender, receiver, bound):
        return 0.0


class _FixedFractionDelayPlan(_StaticDelayPlan):
    def __init__(self, model: FixedFractionDelay):
        self._model = model

    def static_delay(self, sender, receiver, bound):
        return self._model.delay(sender, receiver, 0.0, bound)


class _DirectionalDelayPlan(_StaticDelayPlan):
    def __init__(self, model: DirectionalDelay):
        self._model = model

    def static_delay(self, sender, receiver, bound):
        return self._model.delay(sender, receiver, 0.0, bound)


_MT_TRANSPLANT_SUPPORTED: Optional[bool] = None


def _mt_transplant_supported() -> bool:
    """Whether numpy's legacy RandomState reproduces ``random.Random``.

    Both are MT19937 with the same 53-bit double recipe, and their state
    layouts are interchangeable (624 key words + position).  Verified once
    against an actual Python rng so any build where this does not hold falls
    back to drawing through the Python API.
    """
    global _MT_TRANSPLANT_SUPPORTED
    if _MT_TRANSPLANT_SUPPORTED is None:
        try:
            reference = _random.Random(20260729)
            expected = [reference.random() for _ in range(8)]
            probe = _random.Random(20260729)
            state = probe.getstate()
            rs = np.random.RandomState()
            rs.set_state(("MT19937", np.asarray(state[1][:624], dtype=np.uint32), state[1][624]))
            batch = rs.random_sample(5).tolist()
            keys, pos = rs.get_state(legacy=True)[1:3]
            probe.setstate((state[0], tuple(keys.tolist()) + (int(pos),), state[2]))
            tail = [probe.random() for _ in range(3)]
            _MT_TRANSPLANT_SUPPORTED = batch + tail == expected
        except Exception:  # pragma: no cover - defensive
            _MT_TRANSPLANT_SUPPORTED = False
    return _MT_TRANSPLANT_SUPPORTED


class _UniformDelayPlan(_DelayPlan):
    """Batched draws from the model's Python rng.

    ``Random.uniform(a, b)`` is ``a + (b - a) * random()``; drawing the raw
    ``random()`` values in send order and applying the same expression in
    NumPy consumes the identical stream and produces the identical floats.
    The raw draws themselves go through numpy's MT19937 with the Python
    rng's transplanted state (bit-identical output stream, one C call per
    burst); if the transplant self-check fails, they fall back to per-call
    Python draws.

    Between bursts the numpy state stays authoritative ("owned") instead of
    being written back -- the only other consumer of the stream during a run
    is the engine's scalar leader-handshake draw, which goes through
    :meth:`sync_python_rng` first.
    """

    def __init__(self, model: UniformRandomDelay):
        self._model = model
        self._state = np.random.RandomState() if _mt_transplant_supported() else None
        self._owned = False

    def _draw_raw(self, count: int) -> np.ndarray:
        rng = self._model._rng
        rs = self._state
        if rs is not None:
            if self._owned:
                return rs.random_sample(count)
            version, mt, gauss = rng.getstate()
            if version == 3 and len(mt) == 625:
                rs.set_state(("MT19937", np.asarray(mt[:624], dtype=np.uint32), mt[624]))
                self._owned = True
                return rs.random_sample(count)
        # iter(random, None) never hits its sentinel; fromiter stops at count.
        return np.fromiter(iter(rng.random, None), dtype=np.float64, count=count)

    def sync_python_rng(self) -> None:
        if self._owned:
            rng = self._model._rng
            keys, pos = self._state.get_state(legacy=True)[1:3]
            rng.setstate((3, tuple(keys.tolist()) + (int(pos),), rng.getstate()[2]))
            self._owned = False

    def delays(self, engine, t, bounds, static, pairs):
        model = self._model
        low = model.low_fraction
        span = model.high_fraction - model.low_fraction
        fractions = low + span * self._draw_raw(len(bounds))
        return np.minimum(fractions * bounds, bounds)


class _GenericDelayPlan(_DelayPlan):
    """Scalar fallback: per-message ``delay()`` calls in send order."""

    def __init__(self, model):
        self._model = model

    def delays(self, engine, t, bounds, static, pairs):
        delay = self._model.delay
        return np.asarray(
            [delay(sender, receiver, t, bound) for sender, receiver, bound in pairs],
            dtype=np.float64,
        )


def _make_delay_plan(model) -> _DelayPlan:
    kind = type(model)
    if kind is ZeroDelay:
        return _ZeroDelayPlan()
    if kind is FixedFractionDelay:
        return _FixedFractionDelayPlan(model)
    if kind is DirectionalDelay:
        return _DirectionalDelayPlan(model)
    if kind is UniformRandomDelay:
        return _UniformDelayPlan(model)
    return _GenericDelayPlan(model)


# ----------------------------------------------------------------------
# Combined CSR view shared by every engine of a context
# ----------------------------------------------------------------------
class _CombinedCSR:
    """Concatenated NumPy mirror of every engine's CSR adjacency."""

    __slots__ = (
        "edge_count",
        "neighbor_index",
        "epsilon",
        "level",
        "table_id",
        "thresholds",
        "row_owner",
        "starts",
        "empty",
        "max_level",
        "pad_columns",
        "_value_ext",
        "homogeneous",
        "neg_epsilon",
        "edge_f1",
        "edge_f2",
        "edge_f3",
        "edge_b",
        "bc_value",
        "bc_hw",
        "bc_time",
        "bc_valid",
    )

    def __init__(self, engines: Sequence["VecEngine"], node_count: int):
        neighbor_parts: List[np.ndarray] = []
        epsilon_parts: List[np.ndarray] = []
        level_parts: List[np.ndarray] = []
        table_id_parts: List[np.ndarray] = []
        indptr_parts: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        edge_count = 0
        tables: List = []
        table_pos: Dict = {}
        id_memo: Dict[int, int] = {}
        for engine in engines:
            csr = engine._csr
            engine._edge_offset = edge_count
            offset = engine._offset
            part = np.asarray(csr.neighbor_index, dtype=np.int64)
            if offset:
                part = part + offset
            neighbor_parts.append(part)
            epsilon_parts.append(np.asarray(csr.epsilon, dtype=np.float64))
            level_parts.append(np.asarray(csr.level, dtype=np.int64))
            # Deduplicate by value so engines with identical edge parameters
            # share one table row (enables the single-table fast paths); the
            # id-level memo keeps the per-edge cost at one dict hit, since
            # each engine reuses a handful of table objects.  Engines whose
            # threshold cache holds a single table (every homogeneous bench
            # and paper scenario) resolve the whole column in one step.
            csr_tables = csr.tables
            if len(csr._table_cache) == 1 and csr_tables:
                tid = id_memo.get(id(csr_tables[0]))
                if tid is None:
                    table = csr_tables[0]
                    tid = table_pos.get(table)
                    if tid is None:
                        tid = len(tables)
                        table_pos[table] = tid
                        tables.append(table)
                    id_memo[id(table)] = tid
                table_id_parts.append(
                    np.full(len(csr_tables), tid, dtype=np.int64)
                )
            else:
                table_id: List[int] = []
                for table in csr_tables:
                    tid = id_memo.get(id(table))
                    if tid is None:
                        tid = table_pos.get(table)
                        if tid is None:
                            tid = len(tables)
                            table_pos[table] = tid
                            tables.append(table)
                        id_memo[id(table)] = tid
                    table_id.append(tid)
                table_id_parts.append(np.asarray(table_id, dtype=np.int64))
            indptr_parts.append(
                np.asarray(csr.indptr[1:], dtype=np.int64) + edge_count
            )
            edge_count += len(csr.neighbor_index)
        self.edge_count = edge_count
        self.neighbor_index = np.concatenate(neighbor_parts) if neighbor_parts else np.zeros(0, dtype=np.int64)
        self.epsilon = np.concatenate(epsilon_parts) if epsilon_parts else np.zeros(0, dtype=np.float64)
        self.level = np.concatenate(level_parts) if level_parts else np.zeros(0, dtype=np.int64)
        self.table_id = np.concatenate(table_id_parts) if table_id_parts else np.zeros(0, dtype=np.int64)
        self.max_level = max((e.max_level for e in engines), default=1)
        thresholds = np.full((max(len(tables), 1), 4, self.max_level), np.inf)
        for tid, table in enumerate(tables):
            for row, values in enumerate(table):
                thresholds[tid, row, : len(values)] = values
        self.thresholds = thresholds
        indptr_arr = np.concatenate(indptr_parts)
        self.row_owner = np.repeat(
            np.arange(node_count, dtype=np.int64), np.diff(indptr_arr)
        )
        self.starts = np.minimum(indptr_arr[:-1], max(self.edge_count - 1, 0))
        self.empty = indptr_arr[:-1] == indptr_arr[1:]
        # Dense row-max layout for low-degree graphs: per degree-column
        # arrays of edge slots padded with a sentinel slot (index E), so a
        # per-row maximum becomes ``max_degree`` gathers + maxima instead of
        # a per-segment reduceat.  Skipped for high-degree rows (e.g. star
        # hubs) where padding would blow the work up to n * max_degree.
        degrees = np.diff(indptr_arr)
        max_degree = int(degrees.max()) if len(degrees) else 0
        if self.edge_count and 0 < max_degree * node_count <= 4 * self.edge_count:
            pad = np.full((max_degree, node_count), self.edge_count, dtype=np.int64)
            columns = np.arange(self.edge_count, dtype=np.int64) - np.repeat(
                indptr_arr[:-1], degrees
            )
            pad[columns, self.row_owner] = np.arange(self.edge_count, dtype=np.int64)
            self.pad_columns: Optional[np.ndarray] = pad
        else:
            self.pad_columns = None
        #: Scratch for padded row-maxima: per-edge values plus the sentinel.
        self._value_ext = np.empty(self.edge_count + 1, dtype=np.float64)
        #: Per-edge scratch buffers for the allocation-free kernels.
        self.neg_epsilon = -self.epsilon
        self.edge_f1 = np.empty(self.edge_count, dtype=np.float64)
        self.edge_f2 = np.empty(self.edge_count, dtype=np.float64)
        self.edge_f3 = np.empty(self.edge_count, dtype=np.float64)
        self.edge_b = np.empty(self.edge_count, dtype=bool)
        # Broadcast estimate mode: adopt the engines' per-slot stored-state
        # columns into combined arrays (same pattern as the node columns in
        # VecContext) so the broadcast-ahead kernel runs over the whole
        # batch; each engine's _bc_* attributes become views.
        if engines and engines[0]._bc_mode:
            self.bc_value = np.concatenate([e._bc_value for e in engines])
            self.bc_hw = np.concatenate([e._bc_hw for e in engines])
            self.bc_time = np.concatenate([e._bc_time for e in engines])
            self.bc_valid = np.concatenate([e._bc_valid for e in engines])
            for engine in engines:
                start = engine._edge_offset
                end = start + len(engine._csr.neighbor_index)
                engine._bc_value = self.bc_value[start:end]
                engine._bc_hw = self.bc_hw[start:end]
                engine._bc_time = self.bc_time[start:end]
                engine._bc_valid = self.bc_valid[start:end]
        else:
            self.bc_value = None
            self.bc_hw = None
            self.bc_time = None
            self.bc_valid = None
        self._refresh_homogeneous()

    def _refresh_homogeneous(self) -> None:
        #: Single threshold table and every edge at max level: the per-level
        #: trigger conditions then collapse onto per-node extrema (see
        #: :func:`repro.vecsim.kernels.evaluate_modes_vec`).
        self.homogeneous = len(self.thresholds) == 1 and bool(
            (self.level == self.max_level).all()
        )

    def row_max_values(self, values: np.ndarray) -> np.ndarray:
        """Per-row maximum of a per-edge float array (``-inf`` for no edges)."""
        pad = self.pad_columns
        if pad is not None:
            ext = self._value_ext
            ext[:-1] = values
            ext[-1] = -np.inf
            result = ext[pad[0]]
            for column in range(1, len(pad)):
                np.maximum(result, ext[pad[column]], out=result)
            return result
        result = np.maximum.reduceat(values, self.starts)
        if self.empty.any():
            result[self.empty] = -np.inf
        return result

    def refresh_levels(self, engine: "VecEngine") -> None:
        """Re-mirror one engine's (list-typed) level column after promotions."""
        start = engine._edge_offset
        end = start + len(engine._csr.level)
        self.level[start:end] = np.asarray(engine._csr.level, dtype=np.int64)
        self._refresh_homogeneous()


# ----------------------------------------------------------------------
# Lazy trace samples
# ----------------------------------------------------------------------
class LazyTraceSample:
    """Duck-typed :class:`~repro.sim.trace.TraceSample` over array snapshots.

    Recording a sample costs five array copies; the per-node dicts the
    ``TraceSample`` interface exposes are materialized on first access, so
    consumers that read one field (most analyses) do a fifth of the work and
    the hot simulation loop does none of it.  All values are bit-identical
    to what an eager sample would have held.
    """

    __slots__ = ("time", "diameter", "_ids", "_index", "_arrays", "_dicts")

    def __init__(self, time, ids, index, logical, hardware, multipliers, modes, max_estimates):
        self.time = time
        self.diameter = None
        self._ids = ids
        self._index = index
        self._arrays = (logical, hardware, multipliers, modes, max_estimates)
        self._dicts: Dict[int, Dict] = {}

    def _materialize(self, field: int) -> Dict:
        mapping = self._dicts.get(field)
        if mapping is None:
            values = self._arrays[field].tolist()
            if field == 3:  # mode codes -> names
                values = map(MODE_NAMES.__getitem__, values)
            mapping = dict(zip(self._ids, values))
            self._dicts[field] = mapping
        return mapping

    @property
    def logical(self) -> Dict[NodeId, float]:
        return self._materialize(0)

    @property
    def hardware(self) -> Dict[NodeId, float]:
        return self._materialize(1)

    @property
    def multipliers(self) -> Dict[NodeId, float]:
        return self._materialize(2)

    @property
    def modes(self) -> Dict[NodeId, str]:
        return self._materialize(3)

    @property
    def max_estimates(self) -> Dict[NodeId, float]:
        return self._materialize(4)

    def global_skew(self) -> float:
        """Same expression as ``TraceSample.global_skew`` (max - min)."""
        values = self._arrays[0]
        if not len(values):
            return 0.0
        return float(values.max() - values.min())

    def skew(self, u: NodeId, v: NodeId) -> float:
        values = self._arrays[0]
        return float(abs(values[self._index[u]] - values[self._index[v]]))


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class VecEngine(FastEngine):
    """NumPy-vectorized fixed-step simulator (AOPT, oracle/broadcast estimates).

    Engine-compatible with :class:`FastEngine` (same constructor, same
    supported scenarios, same ``UnsupportedScenarioError`` contract) and
    bit-identical to it -- and therefore to the reference engine -- on every
    supported scenario.
    """

    #: Defaults so overridden hooks invoked during ``FastEngine.__init__``
    #: (before the vec attributes exist) behave gracefully.
    _csr_generation = 0
    _csr_levels_dirty = False
    _bc_flat = None
    _bc_store = None
    _active_schedules: Optional[set] = None

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
        *,
        _defer_context: bool = False,
    ):
        super().__init__(graph, algorithm_factory, config)
        self._offset = 0
        self._edge_offset = 0
        self._ctx: Optional[VecContext] = None
        self._bc_flat = None
        self._active_schedules = set()
        self._rate_plan = _make_rate_plan(self.drift, self._cols.ids)
        self._delay_plan = _make_delay_plan(self.delay_model)
        #: Per-message drop checks need graph membership at delivery time;
        #: those scenarios keep the inherited (heap) transport end to end.
        self._heap_transport = self._drop_on_edge_loss
        if not _defer_context:
            VecContext([self])

    # -- context plumbing ----------------------------------------------
    @property
    def n(self) -> int:
        return len(self._cols)

    def _rebuild_csr(self) -> None:
        super()._rebuild_csr()
        self._csr_generation += 1
        self._csr_levels_dirty = False

    def _on_edge_discovered(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        super()._on_edge_discovered(t, node, neighbor)
        self._bc_flat = None
        self._bc_store = None

    def _on_edge_lost(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        super()._on_edge_lost(t, node, neighbor)
        self._bc_flat = None
        self._bc_store = None
        position = self._cols.index[node]
        if not self._schedules[position]:
            self._active_schedules.discard(position)

    def _alloc_bc_columns(self, n_slots: int):
        # NumPy columns so the broadcast-estimate kernels operate directly on
        # the stored state; the scalar store/migration paths of the fast
        # engine index them identically to its list columns.
        return (
            np.zeros(n_slots, dtype=np.float64),
            np.zeros(n_slots, dtype=np.float64),
            np.zeros(n_slots, dtype=np.float64),
            np.zeros(n_slots, dtype=bool),
        )

    def _leader_check(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        # The handshake draws one scalar delay from the Python rng; hand the
        # stream back first (no-op unless the uniform plan owns it).
        self._delay_plan.sync_python_rng()
        super()._leader_check(t, node, neighbor)

    def _install_schedule(self, node, neighbor, anchor, skew_estimate, edge) -> None:
        super()._install_schedule(node, neighbor, anchor, skew_estimate, edge)
        self._active_schedules.add(self._cols.index[node])

    def _apply_due_insertions(self, position: int, logical: float) -> None:
        super()._apply_due_insertions(position, logical)
        self._csr_levels_dirty = True
        if not self._schedules[position]:
            self._active_schedules.discard(position)

    # -- running --------------------------------------------------------
    def run_until(self, end_time: float) -> Trace:
        self._require_single_engine_context()
        if end_time < self.time - 1e-12:
            raise EngineError("cannot run backwards in time")
        self._ctx.run_until(end_time)
        return self.trace

    def step(self) -> None:
        self._require_single_engine_context()
        self._ctx._step()

    def _require_single_engine_context(self) -> None:
        if self._ctx is None:
            raise FastsimError("engine is not attached to a VecContext")
        if len(self._ctx.engines) != 1:
            raise FastsimError(
                "batched engines are advanced by their shared context; "
                "call VecContext.run_until instead"
            )

    # -- state accessors ------------------------------------------------
    def global_skew(self) -> float:
        values = self._cols.logical
        if not len(values):
            return 0.0
        return float(values.max() - values.min())

    def logical_snapshot(self) -> Dict[NodeId, float]:
        return dict(zip(self._cols.ids, self._cols.logical.tolist()))

    def hardware_snapshot(self) -> Dict[NodeId, float]:
        return dict(zip(self._cols.ids, self._cols.hardware.tolist()))

    # -- broadcasting ---------------------------------------------------
    def _build_bc_flat(self):
        """Snapshot the whole broadcast fan-out in reference draw order.

        One flat edge list ordered by sender position, each sender's entries
        in its ``NeighborLevels.discovered()`` iteration order -- exactly the
        order the scalar engine draws message delays in.  ``discovered()``
        builds its set from the same dict in the same insertion order every
        call, so the order is stable between membership changes; the
        structure is invalidated on every edge event.

        In broadcast estimate mode a parallel receiver-slot column
        (``_bc_store``) resolves each fan-out entry to the *receiver's* CSR
        slot for the (receiver, sender) pair -- the store target of the
        delivery -- or ``-1`` when the receiver has no row entry for the
        sender (the delivery then parks in the receiver's overflow dict).
        The column is tagged with the CSR generation at push time; deliveries
        that outlive a rebuild re-resolve slots scalar-wise.
        """
        index = self._cols.index
        offset = self._offset
        plan = self._delay_plan
        csr = self._csr
        delay_col = csr.delay
        bc_mode = self._bc_mode
        recv_slots: List[int] = []
        owner: List[int] = []
        receivers: List[int] = []
        bounds: List[float] = []
        static: List[float] = []
        # ``pairs`` is consumed only by the generic scalar delay plan; the
        # static and uniform plans never read it, so skip building the
        # per-edge tuple list for them (it is the most expensive column).
        need_pairs = type(plan) is _GenericDelayPlan
        pairs: List[Tuple[NodeId, NodeId, float]] = []
        if not plan.static and not need_pairs:
            # Fast path (zero-arg and uniform plans): collect only the CSR
            # slot per fan-out entry -- every other column is a gather from
            # the CSR arrays.  ``neighbor_index`` already holds the
            # receiver's position, so the per-edge ``index[neighbor]`` dict
            # lookup disappears too.
            slots: List[int] = []
            counts: List[int] = []
            slots_append = slots.append
            counts_append = counts.append
            row_pos = csr.row_pos
            neighbor_index = csr.neighbor_index
            levels = self._levels
            ids = self._cols.ids
            for position in range(len(ids)):
                row_get = row_pos[position].get
                start = len(slots)
                if bc_mode:
                    node = ids[position]
                    for neighbor in levels[position].discovered():
                        slot = row_get(neighbor)
                        if slot is not None:
                            slots_append(slot)
                            store = row_pos[neighbor_index[slot]].get(node)
                            recv_slots.append(-1 if store is None else store)
                else:
                    for neighbor in levels[position].discovered():
                        slot = row_get(neighbor)
                        if slot is not None:
                            slots_append(slot)
                counts_append(len(slots) - start)
            slot_arr = np.asarray(slots, dtype=np.int64)
            owner_arr = np.repeat(
                np.arange(len(counts), dtype=np.int64),
                np.asarray(counts, dtype=np.int64),
            )
            nbr_arr = np.asarray(csr.neighbor_index, dtype=np.int64)
            bound_arr = np.asarray(delay_col, dtype=np.float64)
            flat = (
                owner_arr,
                nbr_arr[slot_arr] + offset,
                bound_arr[slot_arr],
                None,
                pairs,
            )
            self._bc_store = (
                np.asarray(recv_slots, dtype=np.int64) if bc_mode else None
            )
            self._bc_flat = flat
            return flat
        plan_static = plan.static
        owner_append = owner.append
        receivers_append = receivers.append
        bounds_append = bounds.append
        pairs_append = pairs.append
        static_append = static.append
        row_pos = csr.row_pos
        levels = self._levels
        for position, node in enumerate(self._cols.ids):
            # The CSR is rebuilt before the control phase whenever the graph
            # changed, so row membership is the live adjacency.
            row_get = row_pos[position].get
            for neighbor in levels[position].discovered():
                slot = row_get(neighbor)
                if slot is None:
                    continue
                bound = delay_col[slot]
                owner_append(position)
                receivers_append(offset + index[neighbor])
                bounds_append(bound)
                if bc_mode:
                    store = row_pos[index[neighbor]].get(node)
                    recv_slots.append(-1 if store is None else store)
                if need_pairs:
                    pairs_append((node, neighbor, bound))
                if plan_static:
                    static_append(plan.static_delay(node, neighbor, bound))
        flat = (
            np.asarray(owner, dtype=np.int64),
            np.asarray(receivers, dtype=np.int64),
            np.asarray(bounds, dtype=np.float64),
            np.asarray(static, dtype=np.float64) if plan.static else None,
            pairs,
        )
        self._bc_store = np.asarray(recv_slots, dtype=np.int64) if bc_mode else None
        self._bc_flat = flat
        return flat

    def _send_broadcasts(self, t: float) -> None:
        cols = self._cols
        hardware = cols.hardware
        next_broadcast = cols.next_broadcast
        due = hardware + 1e-12 >= next_broadcast
        due_count = int(np.count_nonzero(due))
        if not due_count:
            return
        interval = self.aopt_config.broadcast_interval
        max_estimate = cols.max_estimate
        if self._heap_transport:
            logical = cols.logical
            for i in np.nonzero(due)[0].tolist():
                next_broadcast[i] = hardware[i] + interval
                self._broadcast(i, t, max_estimate[i], logical[i])
            return
        np.copyto(next_broadcast, hardware + interval, where=due)
        flat = self._bc_flat
        if flat is None:
            flat = self._build_bc_flat()
        owner, receivers, bounds, static, pairs = flat
        store = self._bc_store
        if not owner.size:
            return
        if due_count == len(due):
            count = owner.size
        else:
            edge_due = due[owner]
            count = int(np.count_nonzero(edge_due))
            if not count:
                return
            if count != owner.size:
                owner = owner[edge_due]
                receivers = receivers[edge_due]
                bounds = bounds[edge_due]
                if store is not None:
                    store = store[edge_due]
                if static is not None:
                    static = static[edge_due]
                if type(self._delay_plan) is _GenericDelayPlan:
                    pairs = [pairs[i] for i in np.nonzero(edge_due)[0].tolist()]
        delays = self._delay_plan.delays(self, t, bounds, static, pairs)
        if self._bc_mode:
            # Message sequence numbers keep the reference's global
            # (delivery_time, message_id) tie-break: the shared ``_msg_seq``
            # counter advances exactly once per send, in the reference's send
            # order (flat order is sender-position order, ``discovered()``
            # order within a sender -- the scalar engines' order too).
            seq_base = self._msg_seq
            self._msg_seq = seq_base + count
            seqs = np.arange(seq_base + 1, seq_base + count + 1, dtype=np.int64)
            self._ctx._push_broadcasts(
                self,
                t + delays,
                receivers,
                max_estimate[owner],
                bc=(store, owner, cols.logical[owner], seqs, self._csr_generation),
            )
        else:
            self._ctx._push_broadcasts(
                self, t + delays, receivers, max_estimate[owner]
            )
        self.sent_count += count

    # -- uniform estimate strategy (scalar fill, set order) -------------
    def _fill_uniform_aheads(self, ahead: np.ndarray) -> None:
        """Mirror of ``FastEngine._fill_views_set_order`` writing CSR slots."""
        cols = self._cols
        logical = cols.logical
        index = cols.index
        graph = self.graph
        csr = self._csr
        row_pos = csr.row_pos
        uniform = self._estimate_rng.uniform
        edge_offset = self._edge_offset
        edge_params = graph.edge_params
        for position, node in enumerate(cols.ids):
            levels = self._levels[position]
            if not len(levels):
                continue
            out = graph.neighbors_view(node)
            positions = row_pos[position]
            lg = logical[position]
            for neighbor in levels.discovered():
                level = levels.level_of(neighbor)
                if level is None or level < 1:
                    continue
                if neighbor not in out:
                    continue
                epsilon = edge_params(node, neighbor).epsilon
                true_value = logical[index[neighbor]]
                if epsilon == 0.0:
                    estimate = true_value
                else:
                    estimate = true_value + uniform(-epsilon, epsilon)
                    if estimate < 0.0:
                        estimate = 0.0
                ahead[edge_offset + positions[neighbor]] = estimate - lg

    # -- trace recording ------------------------------------------------
    def _record_sample(self, force: bool = False) -> None:
        # A stopped engine is frozen: the batch may keep stepping for its
        # peers, but nothing more is recorded or fed here, so the truncated
        # trace/report is exactly the prefix up to the watchdog trip.
        if self.stopped_early:
            return
        if not force and self.time + 1e-12 < self._next_sample_time:
            return
        cols = self._cols
        if self._record_trace:
            sample = LazyTraceSample(
                self.time,
                cols.ids,
                cols.index,
                cols.logical.copy(),
                cols.hardware.copy(),
                cols.multiplier.copy(),
                cols.mode.copy(),
                cols.max_estimate.copy(),
            )
            self.trace.record(sample)
        if self._metrics is not None:
            # Pure array reductions over the live columns: same floats as
            # the (would-be) sample copies, no per-node dicts, no copies.
            self._metrics.observe_arrays(
                self.time, cols.ids, cols.index, cols.logical, cols.max_estimate, cols.mode
            )
            if self._metrics.stop_requested:
                self.stopped_early = True
        if not force:
            self._next_sample_time = self.time + self.trace.sample_interval


# ----------------------------------------------------------------------
# Context: shared arrays + lockstep driver
# ----------------------------------------------------------------------
_FLOAT_COLUMNS = (
    "hardware",
    "logical",
    "last_hardware",
    "max_estimate",
    "next_broadcast",
    "multiplier",
)


class VecContext:
    """Owns the concatenated state arrays of one or more :class:`VecEngine`.

    All engines must share ``dt`` and estimate strategy (the executor's
    batching groups specs accordingly); they advance in lockstep, one kernel
    invocation per phase for the whole batch.

    Known limitation: an adjacency change in *any* engine rebuilds the whole
    combined CSR (O(total edges)); level-only changes refresh just the
    affected slice.  Batching therefore pays off for static or rarely
    churning runs -- churn-heavy sweeps may prefer per-run execution.
    """

    def __init__(self, engines: Sequence[VecEngine]):
        if not engines:
            raise FastsimError("a VecContext needs at least one engine")
        self.engines = list(engines)
        first = self.engines[0]
        self.dt = first.dt
        self._strategy = first._strategy
        for engine in self.engines:
            if engine._ctx is not None:
                raise FastsimError("engine is already attached to a context")
            if engine.time != 0.0:
                raise FastsimError("only fresh engines can be batched")
            if engine.dt != self.dt:
                raise FastsimError("batched engines must share dt")
            if engine._strategy != self._strategy:
                raise FastsimError("batched engines must share the estimate strategy")
            if engine._bc_mode != first._bc_mode:
                raise FastsimError("batched engines must share the estimate mode")
        self.time = 0.0
        offset = 0
        for engine in self.engines:
            engine._offset = offset
            offset += engine.n
        self.node_count = offset
        # Adopt the engines' (list-typed) columns into shared arrays; every
        # engine's column attributes become views into these.
        for name in _FLOAT_COLUMNS:
            column = np.empty(self.node_count, dtype=np.float64)
            for engine in self.engines:
                start = engine._offset
                column[start : start + engine.n] = getattr(engine._cols, name)
                setattr(engine._cols, name, column[start : start + engine.n])
            setattr(self, name, column)
        mode = np.empty(self.node_count, dtype=np.int64)
        for engine in self.engines:
            start = engine._offset
            mode[start : start + engine.n] = engine._cols.mode
            engine._cols.mode = mode[start : start + engine.n]
        self.mode = mode
        # Per-node algorithm constants (engines may differ within a batch).
        self.iota = self._per_node(lambda e: e.aopt_params.iota)
        self.fast_multiplier = self._per_node(lambda e: e._fast_multiplier)
        self.max_factor = self._per_node(lambda e: e._max_factor)
        self._rates = np.empty(self.node_count, dtype=np.float64)
        self._node_scratch = np.empty(self.node_count, dtype=np.float64)
        self._node_flags = np.empty(self.node_count, dtype=bool)
        self._engine_offsets = np.asarray(
            [engine._offset for engine in self.engines], dtype=np.int64
        )
        # Vectorized broadcast transport (insert-edge messages stay on the
        # per-engine heaps).  Each run is one send burst sorted by delivery
        # time with a consumed-prefix pointer: ``[times, recv, vals, start]``.
        self._bc_runs: List[List] = []
        self._combined: Optional[_CombinedCSR] = None
        self._seen_generations = [-1] * len(self.engines)
        for engine in self.engines:
            engine._ctx = self

    def _per_node(self, fn) -> np.ndarray:
        column = np.empty(self.node_count, dtype=np.float64)
        for engine in self.engines:
            column[engine._offset : engine._offset + engine.n] = fn(engine)
        return column

    # -- transport ------------------------------------------------------
    def _push_broadcasts(
        self,
        engine: VecEngine,
        times: np.ndarray,
        receivers: np.ndarray,
        values: np.ndarray,
        bc=None,
    ) -> None:
        if bc is None:
            # Oracle mode: delivery order within a step is irrelevant
            # (max-updates commute), so an unstable sort is fine.
            order = np.argsort(times)
            self._bc_runs.append([times[order], receivers[order], values[order], 0])
            return
        # Broadcast estimate mode: deliveries overwrite per-(receiver,
        # sender) stored state, so order *within* a pair matters.  A stable
        # (delivery_time, message_id) sort reproduces the reference
        # transport's delivery order exactly.
        slots, owners, logicals, seqs, generation = bc
        order = np.lexsort((seqs, times))
        self._bc_runs.append(
            [
                times[order],
                receivers[order],
                values[order],
                0,
                (
                    engine,
                    slots[order],
                    owners[order],
                    logicals[order],
                    seqs[order],
                    generation,
                ),
            ]
        )

    def _deliver_broadcasts(self, t: float) -> None:
        if not self._bc_runs:
            return
        limit = t + 1e-12
        exhausted = False
        bc_due: Dict[int, List] = {}
        for run in self._bc_runs:
            times, receivers, values, start = run[:4]
            end = int(np.searchsorted(times, limit, side="right"))
            if end <= start:
                continue
            due_recv = receivers[start:end]
            np.maximum.at(self.max_estimate, due_recv, values[start:end])
            if len(self.engines) == 1:
                self.engines[0].delivered_count += end - start
            else:
                owner = np.searchsorted(self._engine_offsets, due_recv, side="right") - 1
                for index, count in zip(*np.unique(owner, return_counts=True)):
                    self.engines[index].delivered_count += int(count)
            if len(run) > 4:
                engine, slots, owners, logicals, seqs, generation = run[4]
                entry = bc_due.get(id(engine))
                if entry is None:
                    entry = bc_due[id(engine)] = [engine, []]
                entry[1].append(
                    (
                        times[start:end],
                        seqs[start:end],
                        slots[start:end],
                        owners[start:end],
                        due_recv,
                        logicals[start:end],
                        generation,
                    )
                )
            run[3] = end
            if end == len(times):
                exhausted = True
        for engine, chunks in bc_due.values():
            self._apply_broadcast_stores(engine, chunks, t)
        if exhausted:
            self._bc_runs = [run for run in self._bc_runs if run[3] < len(run[0])]

    def _apply_broadcast_stores(self, engine: VecEngine, chunks: List, t: float) -> None:
        """Store one step's due broadcasts into an engine's per-slot state.

        The net effect of delivering a batch in (time, seq) order is
        "last writer per (receiver, sender) pair wins" (the max-estimate
        flooding part is already applied order-insensitively by the caller),
        so the vectorized path keeps only each slot's last entry.  When any
        contributing chunk predates the engine's current CSR (an edge event
        rebuilt it while messages were in flight), the pushed slot column is
        meaningless and every entry is re-resolved scalar-wise in delivery
        order -- rare (only the steps right after churn) and bounded by the
        in-flight volume.
        """
        generation = engine._csr_generation
        stale = any(chunk[6] != generation for chunk in chunks)
        if len(chunks) == 1:
            times, seqs, slots, owners, recv, logicals, _ = chunks[0]
        else:
            times = np.concatenate([c[0] for c in chunks])
            seqs = np.concatenate([c[1] for c in chunks])
            slots = np.concatenate([c[2] for c in chunks])
            owners = np.concatenate([c[3] for c in chunks])
            recv = np.concatenate([c[4] for c in chunks])
            logicals = np.concatenate([c[5] for c in chunks])
            order = np.lexsort((seqs, times))
            slots = slots[order]
            owners = owners[order]
            recv = recv[order]
            logicals = logicals[order]
        cols = engine._cols
        hardware = cols.hardware
        offset = engine._offset
        recv_local = recv - offset if offset else recv
        if stale:
            ids = cols.ids
            row_pos = engine._csr.row_pos
            overflow = engine._bc_overflow
            value = engine._bc_value
            hw_col = engine._bc_hw
            time_col = engine._bc_time
            valid = engine._bc_valid
            for j in range(len(recv_local)):
                position = int(recv_local[j])
                sender = ids[int(owners[j])]
                slot = row_pos[position].get(sender)
                if slot is None:
                    overflow[(position, sender)] = (
                        logicals[j], hardware[position], t,
                    )
                else:
                    value[slot] = logicals[j]
                    hw_col[slot] = hardware[position]
                    time_col[slot] = t
                    valid[slot] = True
            return
        mask = slots >= 0
        if mask.all():
            slots_v = slots
            logicals_v = logicals
            recv_v = recv_local
        else:
            # Overflow deliveries (receiver row lacks the sender): scalar, in
            # delivery order.  Slotless and slotted entries never share a
            # (receiver, sender) pair within one generation, so processing
            # them separately preserves last-writer semantics.
            ids = cols.ids
            overflow = engine._bc_overflow
            for j in np.nonzero(~mask)[0].tolist():
                position = int(recv_local[j])
                overflow[(position, ids[int(owners[j])])] = (
                    logicals[j], hardware[position], t,
                )
            slots_v = slots[mask]
            logicals_v = logicals[mask]
            recv_v = recv_local[mask]
        if not slots_v.size:
            return
        # Keep each slot's last entry: first occurrence in the reversed
        # array is the last in delivery order.
        reverse = slots_v[::-1]
        unique_slots, first_index = np.unique(reverse, return_index=True)
        last = slots_v.size - 1 - first_index
        engine._bc_value[unique_slots] = logicals_v[last]
        engine._bc_hw[unique_slots] = hardware[recv_v[last]]
        engine._bc_time[unique_slots] = t
        engine._bc_valid[unique_slots] = True

    # -- CSR view -------------------------------------------------------
    def _refresh_structure(self) -> None:
        for engine in self.engines:
            if engine._csr_dirty:
                engine._rebuild_csr()
        changed = self._combined is None
        if not changed:
            for i, engine in enumerate(self.engines):
                if engine._csr_generation != self._seen_generations[i]:
                    changed = True
                    break
        if changed:
            self._combined = _CombinedCSR(self.engines, self.node_count)
            self._seen_generations = [e._csr_generation for e in self.engines]

    def _refresh_levels(self) -> None:
        for engine in self.engines:
            if engine._csr_levels_dirty:
                self._combined.refresh_levels(engine)
                engine._csr_levels_dirty = False

    # -- stepping -------------------------------------------------------
    def run_until(self, end_time: float) -> List[Trace]:
        """Advance every engine until ``end_time`` (inclusive sampling).

        An engine whose armed watchdog trips is *frozen* (its
        ``_record_sample`` becomes a no-op) while the batch keeps stepping
        for its peers; once every engine in the batch has stopped the loop
        exits early.  Stopped engines skip the forced final sample, so each
        truncated trace/report is a bit-identical prefix of its full run.
        """
        if end_time < self.time - 1e-12:
            raise EngineError("cannot run backwards in time")
        engines = self.engines
        while self.time < end_time - 1e-9:
            self._step()
            if all(engine.stopped_early for engine in engines):
                break
        for engine in engines:
            if engine.stopped_early:
                continue
            engine.time = self.time
            engine._record_sample(force=True)
        return [engine.trace for engine in engines]

    def _step(self) -> None:
        t = self.time
        engines = self.engines
        for engine in engines:
            engine.time = t
            next_event = engine._next_event_time
            if next_event is not None and next_event <= t + 1e-12:
                engine._apply_graph_events(t)
        for engine in engines:
            if engine._inflight:
                engine._deliver_messages(t)
        self._deliver_broadcasts(t)
        for engine in engines:
            engine.scheduler.run_due(t)
        self._refresh_structure()
        self._control_all(t)
        for engine in engines:
            engine._record_sample()
        self._advance_clocks(t)
        self.time = t + self.dt
        for engine in engines:
            engine.time = self.time

    def _control_all(self, t: float) -> None:
        kernels.advance_max_estimates(
            self.hardware,
            self.last_hardware,
            self.max_estimate,
            self.logical,
            self.max_factor,
            self._node_scratch,
            self._node_flags,
        )
        for engine in self.engines:
            if engine._active_schedules:
                logical = engine._cols.logical
                for position in sorted(engine._active_schedules):
                    engine._apply_due_insertions(position, logical[position])
            engine._send_broadcasts(t)
        self._refresh_levels()
        view = self._combined
        valid = None
        if not view.edge_count:
            ahead = np.empty(0, dtype=np.float64)
        elif view.bc_valid is not None:  # broadcast estimate mode
            ahead = kernels.broadcast_aheads(self.hardware, self.logical, view)
            valid = view.bc_valid
        elif self._strategy == 1:  # uniform: Python draws in set order
            ahead = np.zeros(view.edge_count, dtype=np.float64)
            for engine in self.engines:
                engine._fill_uniform_aheads(ahead)
        else:
            ahead = kernels.edge_aheads(self._strategy, self.logical, view)
        mode_new = kernels.evaluate_modes_vec(
            view,
            ahead,
            self.logical,
            self.max_estimate,
            self.iota,
            self.mode,
            valid=valid,
        )
        np.copyto(self.mode, mode_new)
        np.copyto(self.multiplier, np.where(mode_new == 1, self.fast_multiplier, 1.0))

    def _advance_clocks(self, t: float) -> None:
        rates = self._rates
        for engine in self.engines:
            engine._rate_plan.fill(
                rates[engine._offset : engine._offset + engine.n], t
            )
        dt = self.dt
        self.hardware += rates * dt
        self.logical += (rates * self.multiplier) * dt


def build_batch(runs: Sequence[Tuple[DynamicGraph, AlgorithmFactory, SimulationConfig]]) -> VecContext:
    """Build a lockstep batch of vec engines over independent runs.

    Every run is ``(graph, algorithm_factory, config)`` exactly as a backend's
    ``build`` receives them; all must share ``dt`` and estimate strategy.
    Returns the shared :class:`VecContext`; the engines are in
    ``context.engines`` in input order.
    """
    engines = [
        VecEngine(graph, factory, config, _defer_context=True)
        for graph, factory, config in runs
    ]
    return VecContext(engines)
