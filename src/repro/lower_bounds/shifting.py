"""Shifting-argument scenario: hiding ``Omega(D)`` skew from the algorithm.

The classical lower bound on the global skew builds two indistinguishable
executions by trading message delays against clock rates along a path.  In a
simulation we cannot literally present two executions to the same algorithm
at once, but we can construct the adversarial single execution that the
argument relies on: hardware rates ramp from slow to fast along the line and
message delays are extremal in opposite directions, so that every node's
observations are consistent with a far smaller skew than the one actually
present.  Running any envelope-respecting algorithm in this scenario yields a
global skew of ``Omega(sum of uncertainties)``, which experiment E7 compares
against the analytic bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.parameters import Parameters
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import EdgeParams
from ..network import topology
from ..sim.delay import DelayModel, DirectionalDelay
from ..sim.drift import DriftModel, RampAdversary
from .analytic import global_skew_lower_bound


@dataclass(frozen=True)
class ShiftingScenario:
    """A line network plus the adversarial drift and delay strategies."""

    graph: DynamicGraph
    drift: DriftModel
    delay: DelayModel
    expected_lower_bound: float
    n: int

    @property
    def endpoints(self) -> Tuple[int, int]:
        return (0, self.n - 1)


def build(
    n: int,
    params: Parameters,
    *,
    edge_params: EdgeParams = EdgeParams(),
    reverse_period: float = None,
) -> ShiftingScenario:
    """Build the shifting scenario on a line of ``n`` nodes.

    ``reverse_period`` optionally flips the drift ramp periodically, which
    keeps re-building skew in alternating directions (useful for long runs).
    """
    if n < 2:
        raise ValueError("the shifting scenario needs at least two nodes")
    graph = topology.line(n, edge_params)
    drift = RampAdversary(params.rho, graph.nodes, reverse_period=reverse_period)
    delay = DirectionalDelay(slow_towards_higher=True)
    uncertainties = [edge_params.epsilon for _ in range(n - 1)]
    return ShiftingScenario(
        graph=graph,
        drift=drift,
        delay=delay,
        expected_lower_bound=global_skew_lower_bound(uncertainties),
        n=n,
    )


def minimum_time_to_accumulate(target_skew: float, params: Parameters) -> float:
    """Time the drift adversary needs to build ``target_skew`` between endpoints.

    The ramp adversary separates the two ends of the line at rate ``2 * rho``,
    so at least ``target_skew / (2 * rho)`` time is required.  Runs shorter
    than this cannot exhibit the bound, regardless of the algorithm.
    """
    if target_skew < 0.0:
        raise ValueError("the target skew is non-negative")
    if params.rho <= 0.0:
        raise ValueError("rho must be positive for skew to accumulate")
    return target_skew / (2.0 * params.rho)
