"""The Theorem 8.1 construction: ``Omega(D)`` stabilization time.

The construction takes a line ``v_0, ..., v_n`` whose internal section
carries skew ``Omega(n)`` (built with the drift/delay adversary), then lets a
new edge ``{v_0, v_n}`` appear.  Because the inner nodes ``u = v_{c1 n}`` and
``v = v_{n - c1 n}`` are at distance ``c1 n`` from the endpoints, no
information about the new edge can influence them for ``c1 n T / (1 + rho)``
time, so their skew -- and hence, by the gradient bound on the stable end
segments, the skew across the new edge -- remains ``Omega(n)`` during that
whole period.

The scenario builder below produces the graph (with the scheduled insertion),
the adversarial drift model, and the analytic quantities the measurement is
compared against in experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.parameters import Parameters
from ..network.dynamics import InsertionScenario, line_with_end_to_end_insertion
from ..network.edge import EdgeParams
from ..sim.drift import DriftModel, TwoGroupAdversary
from .analytic import insertion_skew_lower_bound, stabilization_time_lower_bound


@dataclass(frozen=True)
class InsertionBoundScenario:
    """Everything needed to run and evaluate the Theorem 8.1 experiment."""

    scenario: InsertionScenario
    drift: DriftModel
    n: int
    c1: float
    skew_lower_bound: float
    persistence_lower_bound: float

    @property
    def new_edge(self) -> Tuple[int, int]:
        return self.scenario.new_edge

    @property
    def insertion_time(self) -> float:
        return self.scenario.insertion_time

    @property
    def inner_pair(self) -> Tuple[int, int]:
        """The nodes ``u = v_{ceil(c1 n)}`` and ``v = v_{floor(n - c1 n)}``."""
        import math

        u = int(math.ceil(self.c1 * self.n))
        v = int(math.floor(self.n - self.c1 * self.n))
        return (u, v)


def build(
    n: int,
    params: Parameters,
    *,
    edge_params: EdgeParams = EdgeParams(),
    skew_buildup_time: float,
    c1: float = 1.0 / 32.0,
) -> InsertionBoundScenario:
    """Build the Theorem 8.1 scenario on a line of ``n + 1`` nodes.

    ``skew_buildup_time`` is how long the drift adversary works before the new
    edge appears; with the two-group adversary the achievable end-to-end skew
    is ``min(2 rho * skew_buildup_time, global skew bound of the algorithm)``.
    """
    if n < 4:
        raise ValueError("the construction needs n >= 4")
    if skew_buildup_time <= 0.0:
        raise ValueError("skew_buildup_time must be positive")
    scenario = line_with_end_to_end_insertion(
        n + 1, skew_buildup_time, edge_params
    )
    nodes = scenario.graph.nodes
    half = len(nodes) // 2
    drift = TwoGroupAdversary(params.rho, nodes[:half], nodes[half:])
    weighted_diameter = n * edge_params.epsilon
    return InsertionBoundScenario(
        scenario=scenario,
        drift=drift,
        n=n,
        c1=c1,
        skew_lower_bound=insertion_skew_lower_bound(n, c1=c1, c2=c1),
        persistence_lower_bound=stabilization_time_lower_bound(
            weighted_diameter, params, c1=c1
        ),
    )
