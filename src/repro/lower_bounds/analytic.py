"""Analytic lower bounds quoted or proved by the paper.

* ``Omega(D)`` global skew: the shifting argument gives ``sum(eps)/2`` on a
  path with delay uncertainties ``eps`` [Biaz & Welch], strengthened to
  roughly ``D`` for algorithms within a linear envelope of real time.
* ``Omega(log_b D)`` local skew with ``b = min(1/rho, (beta - alpha)/(alpha
  rho))`` [Lenzen, Locher, Wattenhofer; Fan & Lynch].
* ``Omega(D)`` stabilization time for non-trivial dynamic gradient CSAs
  (Theorem 8.1 of this paper, strengthening the Omega(D/S) bound of [11]).

These functions return concrete numbers used as reference lines in the
benchmark tables; the measured quantities must stay above the lower bounds
(up to the simulator being unable to realize the exact worst case) and below
the algorithm's upper bounds.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..core.parameters import Parameters


def global_skew_lower_bound(uncertainties: Iterable[float]) -> float:
    """Shifting-argument bound: half the summed delay uncertainty of a path."""
    total = 0.0
    for value in uncertainties:
        if value < 0.0:
            raise ValueError("uncertainties must be non-negative")
        total += value
    return total / 2.0


def local_skew_base(params: Parameters) -> float:
    """The base ``b = min(1/rho, (beta - alpha) / (alpha * rho))``."""
    alpha = params.alpha
    beta = params.beta
    if params.rho <= 0.0:
        raise ValueError("the bound is stated for rho > 0")
    return min(1.0 / params.rho, (beta - alpha) / (alpha * params.rho))


def local_skew_lower_bound(diameter: float, params: Parameters) -> float:
    """``Omega(log_b D)`` local skew lower bound (reported with constant 1).

    The bound is per unit edge weight; multiply by the minimum edge weight to
    compare against absolute skews.
    """
    if diameter <= 1.0:
        return 0.0
    base = local_skew_base(params)
    if base <= 1.0:
        return 0.0
    return math.log(diameter, base)


def stabilization_time_lower_bound(
    diameter: float,
    params: Parameters,
    *,
    c1: float = 1.0 / 32.0,
    message_delay: float = 1.0,
) -> float:
    """Theorem 8.1: stabilization needs at least ``c1 * D * T / (1 + rho)`` time.

    The theorem constructs a line of ``n + 1`` nodes with edge weights ``T``
    (so ``D = n * T``) and shows that ``c1 * n * T / (1 + rho)`` time after a
    new edge appears the skew on it still exceeds the stable bound, for any
    non-trivial algorithm and constants ``c1, c2 < 1/16``.
    """
    if diameter < 0.0:
        raise ValueError("the diameter is non-negative")
    if not 0.0 < c1 < 1.0 / 16.0:
        raise ValueError("c1 must lie in (0, 1/16)")
    del message_delay  # already folded into the (weighted) diameter
    return c1 * diameter / (1.0 + params.rho)


def insertion_skew_lower_bound(n: int, *, c1: float = 1.0 / 32.0, c2: float = 1.0 / 32.0) -> float:
    """Skew remaining on the new edge in the Theorem 8.1 construction.

    With ``u = v_{c1 n}``, ``v = v_{n - c1 n}`` carrying skew at least
    ``n - 2 c1 n - 2`` and the two end segments bounded by ``c2 n`` each, the
    skew between the endpoints of the new edge is at least
    ``n - 2 c1 n - 2 - 4 c2 n > n/2 - 2`` for the allowed constants.
    """
    if n < 4:
        return 0.0
    if not (0.0 < c1 < 1.0 / 16.0 and 0.0 < c2 < 1.0 / 16.0):
        raise ValueError("c1 and c2 must lie in (0, 1/16)")
    return max(0.0, n - 2.0 * c1 * n - 2.0 - 4.0 * c2 * n)


def drift_accumulation(rho: float, elapsed: float) -> float:
    """Maximum skew two isolated drifting clocks accumulate in ``elapsed`` time."""
    if rho < 0.0 or elapsed < 0.0:
        raise ValueError("rho and elapsed must be non-negative")
    return 2.0 * rho * elapsed


def gradient_trade_off_bound(stable_skew: float, diameter: float) -> float:
    """The [11] trade-off: stabilization time is ``Omega(D / S)`` for stable skew ``S``."""
    if stable_skew <= 0.0:
        raise ValueError("the stable skew must be positive")
    if diameter < 0.0:
        raise ValueError("the diameter is non-negative")
    return diameter / stable_skew
