"""Analytic lower bounds and the adversarial scenarios exhibiting them."""

from . import analytic, insertion_bound, shifting

__all__ = ["analytic", "insertion_bound", "shifting"]
