"""Struct-of-arrays state columns for the fast simulation backend.

Instead of one ``_NodeState`` object per node (clocks, algorithm instance,
API shim), the fast backend keeps every per-node scalar in a flat list indexed
by node *position* (the index of the node id in the sorted node list), and the
estimate-graph adjacency in a CSR (compressed sparse row) layout whose
per-entry columns carry everything the AOPT control rule reads per neighbor:
the neighbor's position, the edge uncertainty ``epsilon_e`` and the
precomputed per-level trigger thresholds of
:func:`repro.core.aopt_step.edge_threshold_table`.

The CSR is rebuilt from the :class:`~repro.network.dynamic_graph.DynamicGraph`
whenever scheduled edge events change the adjacency (rare compared to the
per-``dt`` step rate); level promotions between rebuilds patch the level
column in place through ``row_pos``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.aopt_step import ThresholdTable, edge_threshold_table
from ..core.neighbor_sets import NeighborLevels
from ..core.parameters import Parameters
from ..estimate.message_layer import broadcast_error_bound
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import DEFAULT_EDGE_PARAMS, NodeId


class NodeColumns:
    """Flat per-node state columns (position-indexed, one list per field)."""

    __slots__ = (
        "ids",
        "index",
        "hardware",
        "logical",
        "last_hardware",
        "max_estimate",
        "next_broadcast",
        "multiplier",
        "mode",
    )

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        initial_logical: Optional[Dict[NodeId, float]] = None,
    ):
        initial_logical = initial_logical or {}
        self.ids: List[NodeId] = list(node_ids)
        self.index: Dict[NodeId, int] = {nid: i for i, nid in enumerate(self.ids)}
        start = [float(initial_logical.get(nid, 0.0)) for nid in self.ids]
        # Hardware clocks start at the same value as the logical clocks,
        # mirroring Engine.__init__ (HardwareClock(rho, start_value)).
        self.logical: List[float] = list(start)
        self.hardware: List[float] = list(start)
        # Seeding the tracker's last-hardware with the initial hardware value
        # reproduces MaxEstimateTracker's first advance (delta == 0) exactly.
        self.last_hardware: List[float] = list(start)
        self.max_estimate: List[float] = [0.0] * len(self.ids)
        self.next_broadcast: List[float] = [0.0] * len(self.ids)
        self.multiplier: List[float] = [1.0] * len(self.ids)
        #: 0 = slow, 1 = fast (MODE_* codes of :mod:`repro.core.aopt_step`).
        self.mode: List[int] = [0] * len(self.ids)

    def __len__(self) -> int:
        return len(self.ids)


class CSRAdjacency:
    """CSR view of the directed estimate graph with per-edge AOPT constants.

    ``indptr[i]:indptr[i+1]`` delimits node position ``i``'s row; within a
    row, ``neighbor_index`` holds the neighbor's node position, ``epsilon``
    the edge uncertainty, ``level`` the neighbor's insertion level already
    clamped to ``max_level`` (0 for discovered-but-uninserted edges) and
    ``tables`` the shared per-level trigger thresholds.  Threshold tables are
    cached by ``(epsilon, tau)``, so graphs with uniform edge parameters
    share a single table.
    """

    __slots__ = (
        "params",
        "max_level",
        "broadcast_bound",
        "indptr",
        "neighbor_index",
        "epsilon",
        "delay",
        "level",
        "tables",
        "row_pos",
        "max_degree",
        "_table_cache",
    )

    def __init__(
        self,
        params: Parameters,
        max_level: int,
        broadcast_bound: Optional[tuple] = None,
    ):
        self.params = params
        self.max_level = int(max_level)
        #: ``(broadcast_interval, rho, mu)`` in broadcast estimate mode; the
        #: epsilon column then carries the broadcast layer's guaranteed error
        #: bound per edge (what ``estimate_error`` reports to the algorithm)
        #: instead of the oracle edge epsilon.  ``None`` in oracle mode.
        self.broadcast_bound = broadcast_bound
        self.indptr: List[int] = [0]
        self.neighbor_index: List[int] = []
        self.epsilon: List[float] = []
        self.delay: List[float] = []
        self.level: List[int] = []
        self.tables: List[ThresholdTable] = []
        #: Per-row mapping neighbor id -> flat position (for level patching).
        self.row_pos: List[Dict[NodeId, int]] = []
        self.max_degree: int = 0
        self._table_cache: Dict[tuple, ThresholdTable] = {}

    def table_for(self, epsilon: float, tau: float) -> ThresholdTable:
        key = (epsilon, tau)
        table = self._table_cache.get(key)
        if table is None:
            table = edge_threshold_table(self.params, epsilon, tau, self.max_level)
            self._table_cache[key] = table
        return table

    def rebuild(
        self,
        graph: DynamicGraph,
        index: Dict[NodeId, int],
        levels: Sequence[NeighborLevels],
    ) -> None:
        """Rebuild every row from the graph's current directed adjacency."""
        indptr: List[int] = [0]
        neighbor_index: List[int] = []
        epsilon_col: List[float] = []
        delay_col: List[float] = []
        level_col: List[int] = []
        tables: List[ThresholdTable] = []
        row_pos: List[Dict[NodeId, int]] = []
        max_level = self.max_level
        max_degree = 0
        # One bulk snapshot of the edge-parameter map keyed by plain
        # ``(min, max)`` tuples: the per-edge ``graph.edge_params(u, v)``
        # path allocates an EdgeKey dataclass per call, which dominates
        # rebuild time on large graphs.  Distinct EdgeParams objects also
        # memoize their column values so homogeneous graphs resolve each
        # edge with two dict hits and no attribute loads.
        params_map = {
            (key.a, key.b): value
            for key, value in graph.known_edge_params().items()
        }
        default = DEFAULT_EDGE_PARAMS
        broadcast_bound = self.broadcast_bound
        column_memo: Dict[int, tuple] = {}
        for node in graph.nodes:
            position = index[node]
            node_levels = levels[position]
            level_of = node_levels.level_of
            pos: Dict[NodeId, int] = {}
            row_start = len(neighbor_index)
            for nbr in sorted(graph.neighbors_view(node)):
                edge = params_map.get(
                    (node, nbr) if node < nbr else (nbr, node), default
                )
                # Keyed by object identity: ``params_map`` keeps every edge
                # object alive for the duration of the rebuild, so ids are
                # stable here.
                memo = column_memo.get(id(edge))
                if memo is None:
                    if broadcast_bound is None:
                        eps = edge.epsilon
                    else:
                        interval, rho, mu = broadcast_bound
                        eps = broadcast_error_bound(edge.delay, interval, rho, mu)
                    memo = (eps, edge.delay, self.table_for(eps, edge.tau))
                    column_memo[id(edge)] = memo
                raw = level_of(nbr)
                if raw is None:
                    raw = 0
                pos[nbr] = len(neighbor_index)
                neighbor_index.append(index[nbr])
                epsilon_col.append(memo[0])
                delay_col.append(memo[1])
                level_col.append(max_level if raw >= max_level else raw)
                tables.append(memo[2])
            degree = len(neighbor_index) - row_start
            if degree > max_degree:
                max_degree = degree
            indptr.append(len(neighbor_index))
            row_pos.append(pos)
        self.indptr = indptr
        self.neighbor_index = neighbor_index
        self.epsilon = epsilon_col
        self.delay = delay_col
        self.level = level_col
        self.tables = tables
        self.row_pos = row_pos
        self.max_degree = max_degree

    def set_level(self, position: int, neighbor: NodeId, raw_level: int) -> None:
        """Patch one entry's level column after a promotion (no rebuild)."""
        pos = self.row_pos[position].get(neighbor)
        if pos is not None:
            max_level = self.max_level
            self.level[pos] = max_level if raw_level >= max_level else raw_level
