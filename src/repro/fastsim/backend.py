"""The engine-backend abstraction: pluggable simulation executors.

A backend turns a materialised scenario (graph + algorithm factory +
:class:`~repro.sim.runner.SimulationConfig`) into an engine object exposing
the surface the executor and the summary code rely on:

* ``run(duration) -> Trace``
* ``nodes`` and ``algorithm(node)`` (per-node introspection for invariant
  checks)
* ``logical_value`` / ``hardware_value`` / ``global_skew`` (tests, analyses)

Four backends ship with the library:

* ``"reference"`` -- the object-oriented :class:`repro.sim.engine.Engine`,
  faithful and fully general;
* ``"fast"`` -- the struct-of-arrays :class:`repro.fastsim.engine.FastEngine`,
  specialized for the AOPT family (oracle *and* broadcast estimate modes)
  and bit-identical to the reference on the scenarios it supports;
* ``"vec"`` -- the NumPy-vectorized :class:`repro.vecsim.engine.VecEngine`,
  same supported scenarios and bit-identity contract as ``fast`` but with
  whole-array kernels per step (and run batching, see
  :mod:`repro.vecsim`).  It needs :mod:`numpy` (``pip install repro[vec]``);
  without numpy the backend stays registered but :meth:`VecBackend.build`
  raises :class:`BackendUnavailableError`;
* ``"jit"`` -- the compiled fused-time-loop :class:`repro.jitsim.JitEngine`,
  same supported scenarios and bit-identity contract as ``vec`` but with
  regular step segments executed in one compiled kernel call (numba when
  importable -- ``pip install 'repro[jit]'`` -- else the bundled C kernel
  compiled on demand with the system toolchain).  Without numpy *and* a
  kernel provider, :meth:`JitBackend.build` raises
  :class:`BackendUnavailableError`.

Backends are selected per scenario through the ``backend`` field of
:class:`repro.experiments.spec.ScenarioSpec` (and hence from the CLI via
``--set backend=vec`` or a ``--grid backend=reference,fast,vec`` sweep
axis).  The registry here is intentionally tiny and open: downstream code
can register additional executors (e.g. a process-sharded one) without
touching the experiments subsystem.
"""

from __future__ import annotations

import importlib.util

from typing import Dict, List

from ..core.interfaces import AlgorithmFactory
from ..network.dynamic_graph import DynamicGraph
from ..sim.runner import SimulationConfig, build_engine
from .engine import FastEngine

try:  # Python 3.8+: typing.Protocol is available from 3.8 onwards.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - 3.9 floor guarantees Protocol
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls


class BackendError(KeyError):
    """Raised when a backend lookup or registration fails."""

    def __str__(self):  # KeyError wraps its message in quotes; undo that.
        return self.args[0] if self.args else ""


class BackendUnavailableError(BackendError):
    """A registered backend cannot run because an optional dependency is
    missing (e.g. ``backend='vec'`` without numpy installed)."""


@runtime_checkable
class EngineBackend(Protocol):
    """Protocol every engine backend implements."""

    name: str

    def build(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
    ):
        """Return a ready-to-run engine for the materialised scenario."""


class ReferenceBackend:
    """The object-oriented reference engine (fully general)."""

    name = "reference"

    def build(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
    ):
        return build_engine(graph, algorithm_factory, config)


class FastBackend:
    """The struct-of-arrays engine (AOPT, oracle/broadcast estimates, bit-identical)."""

    name = "fast"

    def build(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
    ):
        return FastEngine(graph, algorithm_factory, config)


def _numpy_available() -> bool:
    """Whether numpy can be imported (monkeypatchable in tests)."""
    try:
        return importlib.util.find_spec("numpy") is not None
    except ImportError:
        return False


class VecBackend:
    """The NumPy-vectorized engine (AOPT, oracle/broadcast estimates, bit-identical).

    Registered unconditionally so ``backend='vec'`` is always a *known* name;
    building without numpy raises :class:`BackendUnavailableError` that lists
    the backends which are actually runnable.
    """

    name = "vec"

    def available(self) -> bool:
        return _numpy_available()

    def build(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
    ):
        if not _numpy_available():
            raise BackendUnavailableError(
                "the 'vec' backend needs numpy, which is not installed "
                "(pip install 'repro[vec]'); installed backends: "
                + ", ".join(available_backend_names())
            )
        from ..vecsim.engine import VecEngine

        return VecEngine(graph, algorithm_factory, config)


class JitBackend:
    """The compiled fused-time-loop engine (AOPT, oracle/broadcast, bit-identical).

    Registered unconditionally like ``vec``; building needs numpy plus a
    kernel provider (numba, or a working C compiler for the bundled kernel
    source -- see :mod:`repro.jitsim.providers`).  The backend always builds
    exact (float64) engines; the opt-in float32 mode is an engine-level
    flag outside the registry on purpose, so every spec routed through the
    backend stays bit-identical to reference/fast/vec.
    """

    name = "jit"

    def available(self) -> bool:
        if not _numpy_available():
            return False
        from ..jitsim import providers

        return providers.provider_available()

    def build(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
    ):
        if not self.available():
            raise BackendUnavailableError(
                "the 'jit' backend needs numpy and a kernel provider "
                "(numba -- pip install 'repro[jit]' -- or a C compiler); "
                "installed backends: " + ", ".join(available_backend_names())
            )
        from ..jitsim.engine import JitEngine

        return JitEngine(graph, algorithm_factory, config)


BACKENDS: Dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend) -> EngineBackend:
    """Register a backend under its ``name``; duplicate names are rejected."""
    name = backend.name
    if not name or not isinstance(name, str):
        raise BackendError("a backend needs a non-empty string name")
    if name in BACKENDS:
        raise BackendError(f"backend {name!r} is already registered")
    BACKENDS[name] = backend
    return backend


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by name, with a helpful error on miss."""
    try:
        return BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise BackendError(f"unknown backend {name!r}; known: {known}") from None


def backend_names() -> List[str]:
    return sorted(BACKENDS)


def backend_available(name: str) -> bool:
    """Whether a backend is runnable (its optional dependencies are present).

    Backends may expose an ``available()`` probe; those that don't are
    assumed always runnable.
    """
    backend = get_backend(name)
    probe = getattr(backend, "available", None)
    return bool(probe()) if callable(probe) else True


def available_backend_names() -> List[str]:
    return [name for name in backend_names() if backend_available(name)]


register_backend(ReferenceBackend())
register_backend(FastBackend())
register_backend(VecBackend())
register_backend(JitBackend())
