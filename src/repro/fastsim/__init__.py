"""Struct-of-arrays fast simulation backend.

``repro.fastsim`` re-implements the fixed-step simulation loop of
:mod:`repro.sim.engine` as tight loops over flat state columns, specialized
for the AOPT algorithm family with oracle clock estimates.  On the scenarios
it supports it is bit-identical to the reference engine (same traces, same
summaries) while running roughly an order of magnitude faster -- see
``BENCH_fastsim.json`` and ``benchmarks/bench_e11_backend_speed.py`` for the
measured trajectory.

Modules:

* :mod:`repro.fastsim.columns` -- per-node state columns and the CSR
  adjacency with precomputed per-edge trigger thresholds;
* :mod:`repro.fastsim.engine` -- :class:`~repro.fastsim.engine.FastEngine`;
* :mod:`repro.fastsim.backend` -- the pluggable
  :class:`~repro.fastsim.backend.EngineBackend` registry (``"reference"`` /
  ``"fast"``) used by :mod:`repro.experiments`.
"""

from .backend import (
    BACKENDS,
    BackendError,
    BackendUnavailableError,
    EngineBackend,
    FastBackend,
    ReferenceBackend,
    VecBackend,
    available_backend_names,
    backend_available,
    backend_names,
    get_backend,
    register_backend,
)
from .engine import FastEngine, FastsimError, UnsupportedScenarioError

__all__ = [
    "BACKENDS",
    "BackendError",
    "BackendUnavailableError",
    "EngineBackend",
    "FastBackend",
    "FastEngine",
    "FastsimError",
    "ReferenceBackend",
    "UnsupportedScenarioError",
    "VecBackend",
    "available_backend_names",
    "backend_available",
    "backend_names",
    "get_backend",
    "register_backend",
]
