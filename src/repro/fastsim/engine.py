"""The struct-of-arrays fast simulation engine.

:class:`FastEngine` runs the same fixed-step simulation as
:class:`repro.sim.engine.Engine` -- identical phase order per step (edge
events, message deliveries, scheduled callbacks, control decisions, trace
sample, clock advancement), identical floating-point expressions and
identical random-draw order -- but executes the AOPT control rule as tight
loops over flat columns (:mod:`repro.fastsim.columns`) instead of dispatching
through per-node ``ClockSyncAlgorithm`` / ``NodeAPI`` / ``EstimateLayer``
objects.  On the scenarios it supports it therefore produces **bit-identical**
traces and summaries, roughly an order of magnitude faster.

Supported configurations (everything the named scenarios of
:mod:`repro.experiments.registry` use):

* the AOPT algorithm family (:class:`~repro.core.algorithm.AOPT` and its
  ``immediate_insertion`` variant) with one shared configuration per run;
* the oracle estimate layer with any of its error strategies, and the
  broadcast estimate layer (``estimate_mode="broadcast"``): per-edge
  stored-broadcast state lives in flat arrays over the CSR edge slots
  (value, observer hardware at receipt, receipt time) and the periodic
  broadcast emission is fused into the control loop;
* any drift model, any delay model, scheduled edge events (the full
  leader/follower insertion handshake of Listing 1 is replicated),
  adversarial initial clock profiles and ``drop_messages_on_edge_loss``.

Unsupported configurations (baseline algorithms, the diameter tracker)
raise :class:`UnsupportedScenarioError` at construction time -- use the
reference backend for those.

Equivalence notes (why bit-identical is achievable):

* clock and max-estimate updates use the very expressions of
  :class:`~repro.core.clocks.HardwareClock` /
  :class:`~repro.core.max_estimate.MaxEstimateTracker`;
* trigger thresholds are precomputed with the expressions of
  :mod:`repro.core.triggers` (see :mod:`repro.core.aopt_step`);
* random draw order is preserved: delay draws happen per send in node order
  and, within a node, in the iteration order of the neighbor *set* the
  reference iterates (``NeighborLevels.discovered()``); the ``uniform``
  estimate strategy likewise draws in the reference's set order;
* message deliveries are ordered by ``(delivery_time, send sequence)``,
  which matches the reference transport's ``(delivery_time, message_id)``;
* scheduled callbacks go through the same :class:`EventScheduler`.

Where a floating-point expression cannot be matched exactly the documented
tolerance is 1e-9, but the differential suite currently verifies exact
equality on every named scenario.
"""

from __future__ import annotations

import heapq
import random as _random
from typing import Any, Dict, List, Optional, Tuple

from ..core import insertion as insertion_mod
from ..core.algorithm import AOPT, AOPTConfig
from ..core.aopt_step import MODE_NAMES, evaluate_mode_flat
from ..core.interfaces import AlgorithmFactory
from ..core.neighbor_sets import FULLY_INSERTED, NeighborLevels
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from ..sim.drift import DriftModel, NoDrift, TwoGroupAdversary
from ..sim.delay import UniformRandomDelay
from ..sim.engine import EngineError
from ..sim.scheduler import EventScheduler
from ..sim.trace import Trace, TraceSample
from .columns import CSRAdjacency, NodeColumns


class FastsimError(RuntimeError):
    """Raised on inconsistent fast-engine usage."""


class UnsupportedScenarioError(ValueError):
    """The fast backend cannot run this configuration; use ``reference``."""


#: Estimate strategy codes (indices into the dispatch in the control loop).
_STRATEGY_CODES = {
    "zero": 0,
    "uniform": 1,
    "underestimate": 2,
    "overestimate": 3,
    "toward_observer": 4,
}

#: Message kind codes for the in-flight heap.
_MSG_BROADCAST = 0
_MSG_INSERT_EDGE = 1


class _FastAlgorithmView:
    """Read-only stand-in for one node's algorithm (introspection only).

    Exposes the attributes the analysis/summary code reads off a live
    :class:`~repro.core.algorithm.AOPT` instance: ``levels`` (for the
    Lemma 5.1 subset-chain check), ``mode`` and ``max_estimate``.
    """

    name = "AOPT"

    def __init__(self, engine: "FastEngine", position: int):
        self._engine = engine
        self._position = position
        self.levels: NeighborLevels = engine._levels[position]

    def mode(self) -> str:
        return MODE_NAMES[self._engine._cols.mode[self._position]]

    def max_estimate(self) -> float:
        return self._engine._cols.max_estimate[self._position]

    def neighbor_level(self, neighbor: NodeId) -> Optional[int]:
        return self.levels.level_of(neighbor)


class FastEngine:
    """Array-based fixed-step simulator specialized for AOPT + oracle estimates."""

    #: Optional streaming-metrics hook (see :meth:`configure_recording`).
    _metrics = None
    #: Whether recorded samples are appended to ``self.trace``.
    _record_trace = True
    #: Set when an armed watchdog stopped the run before ``end_time``.
    stopped_early = False

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config,  # repro.sim.runner.SimulationConfig
    ):
        if config.track_diameter:
            raise UnsupportedScenarioError(
                "the fast backend does not implement the diameter tracker; "
                "use backend='reference'"
            )
        if graph.pending_node_resets():
            raise UnsupportedScenarioError(
                "the fast backend does not implement node crash/restart "
                "resets; use backend='reference'"
            )
        strategy = _STRATEGY_CODES.get(config.estimate_strategy)
        if strategy is None:
            raise UnsupportedScenarioError(
                f"unknown estimate strategy {config.estimate_strategy!r}"
            )
        config.params.validate()
        # Work on a private copy, exactly like the reference engine: applying
        # scheduled edge events mutates the graph.
        self.graph = graph.copy()
        self.config = config
        self.params = config.params
        self.dt = float(config.dt)
        self.time = 0.0
        self.drift: DriftModel = config.drift or NoDrift(config.params.rho)
        self.delay_model = (
            config.delay
            if config.delay is not None
            else UniformRandomDelay(seed=config.delay_seed)
        )
        self.scheduler = EventScheduler()
        self.trace = Trace(config.sample_interval)
        self._next_sample_time = 0.0
        self._drop_on_edge_loss = bool(config.drop_messages_on_edge_loss)

        # -- algorithm configuration (probed from the factory) -------------
        ids = self.graph.nodes
        probe = algorithm_factory(ids[0])
        if not isinstance(probe, AOPT):
            raise UnsupportedScenarioError(
                f"the fast backend runs the AOPT family only, got "
                f"{type(probe).__name__}; use backend='reference'"
            )
        aopt_config: AOPTConfig = probe.config
        # Factories that declare uniform_config (e.g. ``aopt_factory``)
        # promise every node gets the same config object, so probing one
        # node suffices; otherwise instantiate each node's algorithm to
        # check the shared-configuration requirement.
        if not getattr(algorithm_factory, "uniform_config", False):
            for nid in ids[1:]:
                other = algorithm_factory(nid)
                if not isinstance(other, AOPT) or not (
                    other.config is aopt_config or other.config == aopt_config
                ):
                    raise UnsupportedScenarioError(
                        "the fast backend needs one shared AOPT configuration "
                        "for every node; use backend='reference'"
                    )
        self.aopt_config = aopt_config
        self.aopt_params = aopt_config.params
        self.max_level = aopt_config.max_level
        self._fast_multiplier = 1.0 + self.aopt_params.mu
        # MaxEstimateTracker.conservative_rate_factor, verbatim.
        rho = self.aopt_params.rho
        self._max_factor = (1.0 - rho) / (1.0 + rho)

        # -- estimate layer (oracle or broadcast, inlined) ------------------
        self._strategy = strategy
        self._estimate_rng = _random.Random(config.estimate_seed)
        self._bc_mode = config.estimate_mode == "broadcast"

        # -- per-node columns and bookkeeping ------------------------------
        self._cols = NodeColumns(ids, config.initial_logical)
        self._levels: List[NeighborLevels] = []
        self._since: List[Dict[NodeId, float]] = []
        self._schedules: List[Dict[NodeId, insertion_mod.InsertionSchedule]] = []
        for nid in ids:
            levels = NeighborLevels(self.max_level)
            since: Dict[NodeId, float] = {}
            # Mirrors AOPT.on_start(0.0, graph.neighbors(node)): iterate the
            # same freshly-copied set so dict insertion order (and therefore
            # the broadcast set order) matches the reference run.
            for nbr in self.graph.neighbors(nid):
                levels.add_fully_inserted(nbr)
                since[nbr] = 0.0
            self._levels.append(levels)
            self._since.append(since)
            self._schedules.append({})

        # -- adjacency ------------------------------------------------------
        # In broadcast mode the epsilon column carries the broadcast layer's
        # guaranteed error bound, computed from the *simulation* parameters
        # exactly as the reference wires BroadcastEstimateLayer.
        broadcast_bound = (
            (float(config.broadcast_interval), config.params.rho, config.params.mu)
            if self._bc_mode
            else None
        )
        self._csr = CSRAdjacency(
            self.aopt_params, self.max_level, broadcast_bound=broadcast_bound
        )
        self._csr_dirty = True
        # Per-CSR-slot stored-broadcast state (broadcast mode only): the
        # latest received broadcast value, the observer's hardware clock at
        # receipt and the receipt time, plus a validity flag.  Deliveries for
        # edges without a current CSR slot park in ``_bc_overflow`` keyed
        # ``(receiver_position, sender_id)``; the rebuild migrates state
        # between layouts and keeps entries of absent edges alive (the
        # reference layer stores per-pair state regardless of edge presence).
        self._bc_value: Any = None
        self._bc_hw: Any = None
        self._bc_time: Any = None
        self._bc_valid: Any = None
        self._bc_overflow: Dict[Tuple[int, NodeId], Tuple[float, float, float]] = {}
        self._rebuild_csr()

        # -- transport ------------------------------------------------------
        #: Heap of (delivery_time, seq, kind, sender, receiver, max_estimate,
        #: insertion_anchor, global_skew_estimate).
        self._inflight: List[Tuple] = []
        self._msg_seq = 0
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

        self._refresh_next_event()

    # ------------------------------------------------------------------
    # State accessors (Engine-compatible surface)
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._cols.ids)

    def logical_value(self, node: NodeId) -> float:
        return self._cols.logical[self._position(node)]

    def hardware_value(self, node: NodeId) -> float:
        return self._cols.hardware[self._position(node)]

    def algorithm(self, node: NodeId) -> _FastAlgorithmView:
        return _FastAlgorithmView(self, self._position(node))

    def logical_snapshot(self) -> Dict[NodeId, float]:
        logical = self._cols.logical
        return {nid: logical[i] for i, nid in enumerate(self._cols.ids)}

    def hardware_snapshot(self) -> Dict[NodeId, float]:
        hardware = self._cols.hardware
        return {nid: hardware[i] for i, nid in enumerate(self._cols.ids)}

    def global_skew(self) -> float:
        values = self._cols.logical
        return max(values) - min(values) if values else 0.0

    def current_diameter(self) -> Optional[float]:
        return None

    def _position(self, node: NodeId) -> int:
        try:
            return self._cols.index[node]
        except KeyError:
            raise EngineError(f"unknown node {node}") from None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> Trace:
        """Advance the simulation by ``duration`` time units."""
        if duration < 0.0:
            raise EngineError("duration must be non-negative")
        return self.run_until(self.time + duration)

    def run_until(self, end_time: float) -> Trace:
        """Advance the simulation until ``end_time`` (inclusive sampling).

        Mirrors the reference engine's early exit: an armed watchdog in the
        attached metrics pipeline ends the loop at the sample that tripped
        it, the forced final sample is skipped, and the fed samples are a
        bit-identical prefix of the full run's.
        """
        if end_time < self.time - 1e-12:
            raise EngineError("cannot run backwards in time")
        metrics = self._metrics
        while self.time < end_time - 1e-9:
            self.step()
            if metrics is not None and metrics.stop_requested:
                self.stopped_early = True
                return self.trace
        self._record_sample(force=True)
        return self.trace

    def step(self) -> None:
        """Execute one simulation step of length ``dt``.

        Phase order is identical to :meth:`repro.sim.engine.Engine.step`; the
        guards merely skip phases that provably have no work.
        """
        t = self.time
        next_event = self._next_event_time
        if next_event is not None and next_event <= t + 1e-12:
            self._apply_graph_events(t)
        if self._inflight:
            self._deliver_messages(t)
        self.scheduler.run_due(t)
        if self._csr_dirty:
            self._rebuild_csr()
        self._control_all(t)
        self._record_sample()
        self._advance_clocks(t)
        self.time = t + self.dt

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------
    def _refresh_next_event(self) -> None:
        pending = self.graph.pending_events()
        self._next_event_time = pending[0].time if pending else None

    def _apply_graph_events(self, t: float) -> None:
        graph = self.graph
        events = graph.pop_events_until(t)
        for event in events:
            existed = graph.has_directed_edge(event.source, event.target)
            graph.apply_event(event)
            exists = graph.has_directed_edge(event.source, event.target)
            if exists and not existed:
                self._on_edge_discovered(t, event.source, event.target)
            elif existed and not exists:
                self._on_edge_lost(t, event.source, event.target)
        if events:
            self._csr_dirty = True
        self._refresh_next_event()

    def _on_edge_discovered(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        position = self._cols.index[node]
        levels = self._levels[position]
        levels.discover(neighbor)
        self._since[position][neighbor] = t
        if self.aopt_config.immediate_insertion:
            levels.promote(neighbor, FULLY_INSERTED)
            return
        if node < neighbor:  # this endpoint is the handshake leader
            edge = self.graph.edge_params(node, neighbor)
            wait = insertion_mod.leader_wait(self.aopt_params, edge)
            self.scheduler.schedule(
                t + wait,
                lambda fire_time, u=node, v=neighbor: self._leader_check(
                    fire_time, u, v
                ),
            )

    def _on_edge_lost(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        position = self._cols.index[node]
        self._levels[position].remove(neighbor)
        self._schedules[position].pop(neighbor, None)
        self._since[position].pop(neighbor, None)
        if self._bc_mode:
            # Mirrors the reference layer's forget(observer=node, subject=
            # neighbor): one direction only; the paired reverse event clears
            # the other direction.
            self._bc_overflow.pop((position, neighbor), None)
            slot = self._csr.row_pos[position].get(neighbor)
            if slot is not None:
                self._bc_valid[slot] = False

    def _deliver_messages(self, t: float) -> None:
        inflight = self._inflight
        limit = t + 1e-12
        drop = self._drop_on_edge_loss
        index = self._cols.index
        max_estimate = self._cols.max_estimate
        hardware = self._cols.hardware
        bc_mode = self._bc_mode
        row_pos = self._csr.row_pos
        graph = self.graph
        while inflight and inflight[0][0] <= limit:
            (_, _, kind, sender, receiver, remote_max, anchor, skew_estimate) = (
                heapq.heappop(inflight)
            )
            if drop and sender not in graph.neighbors_view(receiver):
                self.dropped_count += 1
                continue
            self.delivered_count += 1
            position = index[receiver]
            if remote_max > max_estimate[position]:
                max_estimate[position] = remote_max
            if kind == _MSG_INSERT_EDGE:
                edge = graph.edge_params(receiver, sender)
                wait = insertion_mod.follower_wait(self.aopt_params, edge)
                self.scheduler.schedule(
                    t + wait,
                    lambda fire_time, u=receiver, v=sender, a=anchor, g=skew_estimate: (
                        self._follower_check(fire_time, u, v, a, g)
                    ),
                )
            elif bc_mode:
                # Store the broadcast like BroadcastEstimateLayer.on_broadcast:
                # unconditionally, keyed (receiver, sender), with the
                # receiver's current hardware clock.  ``anchor`` carries the
                # sender's logical value at send time for broadcast messages.
                slot = row_pos[position].get(sender)
                if slot is None:
                    self._bc_overflow[(position, sender)] = (
                        anchor, hardware[position], t,
                    )
                else:
                    self._bc_value[slot] = anchor
                    self._bc_hw[slot] = hardware[position]
                    self._bc_time[slot] = t
                    self._bc_valid[slot] = True

    # ------------------------------------------------------------------
    # Insertion handshake (Listing 1), mirrored from AOPT
    # ------------------------------------------------------------------
    def _edge_present_since(
        self, node: NodeId, neighbor: NodeId, t: float, window: float
    ) -> bool:
        since = self._since[self._cols.index[node]].get(neighbor)
        if since is None or neighbor not in self.graph.neighbors_view(node):
            return False
        return t - since >= window - 1e-9

    def _leader_check(self, t: float, node: NodeId, neighbor: NodeId) -> None:
        edge = self.graph.edge_params(node, neighbor)
        wait = insertion_mod.leader_wait(self.aopt_params, edge)
        if not self._edge_present_since(node, neighbor, t, wait):
            return
        skew_estimate = self.aopt_config.global_skew.value(t)
        position = self._cols.index[node]
        anchor = insertion_mod.insertion_anchor(
            self._cols.logical[position], skew_estimate, self.aopt_params, edge
        )
        if neighbor in self.graph.neighbors_view(node):
            bound = self.graph.edge_params(node, neighbor).delay
            delay = self.delay_model.delay(node, neighbor, t, bound)
            self._msg_seq += 1
            heapq.heappush(
                self._inflight,
                (
                    t + delay,
                    self._msg_seq,
                    _MSG_INSERT_EDGE,
                    node,
                    neighbor,
                    self._cols.max_estimate[position],
                    anchor,
                    skew_estimate,
                ),
            )
            self.sent_count += 1
        self._install_schedule(node, neighbor, anchor, skew_estimate, edge)

    def _follower_check(
        self,
        t: float,
        node: NodeId,
        neighbor: NodeId,
        anchor: float,
        skew_estimate: float,
    ) -> None:
        edge = self.graph.edge_params(node, neighbor)
        wait = insertion_mod.follower_wait(self.aopt_params, edge)
        if not self._edge_present_since(node, neighbor, t, wait):
            return
        self._install_schedule(node, neighbor, anchor, skew_estimate, edge)

    def _install_schedule(
        self,
        node: NodeId,
        neighbor: NodeId,
        anchor: float,
        skew_estimate: float,
        edge,
    ) -> None:
        duration = self.aopt_config.insertion_duration(
            self.aopt_params, skew_estimate, edge
        )
        schedule = insertion_mod.compute_insertion_times(
            anchor,
            duration,
            self.max_level,
            neighbor=neighbor,
            global_skew_estimate=skew_estimate,
        )
        self._schedules[self._cols.index[node]][neighbor] = schedule

    def _apply_due_insertions(self, position: int, logical: float) -> None:
        levels = self._levels[position]
        schedules = self._schedules[position]
        csr = self._csr
        completed: List[NodeId] = []
        for neighbor, schedule in schedules.items():
            if neighbor not in levels:
                completed.append(neighbor)
                continue
            due = schedule.due_levels(logical)
            if due:
                for level in due:
                    levels.promote(neighbor, level)
                raw = levels.level_of(neighbor)
                csr.set_level(position, neighbor, raw)
            if schedule.is_complete():
                completed.append(neighbor)
        for neighbor in completed:
            schedules.pop(neighbor, None)

    # ------------------------------------------------------------------
    # Broadcasting (Condition 4.3 flooding)
    # ------------------------------------------------------------------
    def _broadcast(
        self,
        position: int,
        t: float,
        max_estimate_value: float,
        logical_value: float,
    ) -> None:
        node = self._cols.ids[position]
        graph = self.graph
        out = graph.neighbors_view(node)
        delay_of = self.delay_model.delay
        edge_params = graph.edge_params
        inflight = self._inflight
        # Iterate the same set the reference iterates (set order drives the
        # delay-model draw order, which must match for bit-identical runs).
        # The anchor slot carries the sender's logical value: the broadcast
        # estimate layer stores it at delivery (unused in oracle mode).
        for neighbor in self._levels[position].discovered():
            if neighbor not in out:
                continue
            bound = edge_params(node, neighbor).delay
            delay = delay_of(node, neighbor, t, bound)
            self._msg_seq += 1
            heapq.heappush(
                inflight,
                (
                    t + delay,
                    self._msg_seq,
                    _MSG_BROADCAST,
                    node,
                    neighbor,
                    max_estimate_value,
                    logical_value,
                    0.0,
                ),
            )
            self.sent_count += 1

    # ------------------------------------------------------------------
    # Control (Listing 3, flattened)
    # ------------------------------------------------------------------
    def _rebuild_csr(self) -> None:
        if self._bc_mode and self._bc_valid is not None:
            self._harvest_bc_state()
        self._csr.rebuild(self.graph, self._cols.index, self._levels)
        self._csr_dirty = False
        if self._bc_mode:
            self._adopt_bc_state()
        size = self._csr.max_degree
        self._scratch_ahead = [0.0] * size
        self._scratch_level = [0] * size
        self._scratch_table: List[Any] = [None] * size

    def _harvest_bc_state(self) -> None:
        """Fold valid per-slot broadcast state into the overflow dict.

        ``setdefault``: an existing overflow entry for the same (receiver,
        sender) pair was necessarily written after the slot entry (deliveries
        only go to overflow when the pair has no live slot), so it wins --
        last-writer semantics, exactly like the reference layer's dict.
        """
        overflow = self._bc_overflow
        valid = self._bc_valid
        value = self._bc_value
        hw = self._bc_hw
        time_col = self._bc_time
        for position, pos_map in enumerate(self._csr.row_pos):
            for nbr, slot in pos_map.items():
                if valid[slot]:
                    overflow.setdefault(
                        (position, nbr),
                        (value[slot], hw[slot], time_col[slot]),
                    )

    def _adopt_bc_state(self) -> None:
        """Allocate slot arrays for the new CSR and pull carried state in."""
        n_slots = len(self._csr.neighbor_index)
        self._bc_value, self._bc_hw, self._bc_time, self._bc_valid = (
            self._alloc_bc_columns(n_slots)
        )
        overflow = self._bc_overflow
        if not overflow:
            return
        row_pos = self._csr.row_pos
        value = self._bc_value
        hw = self._bc_hw
        time_col = self._bc_time
        valid = self._bc_valid
        for key in list(overflow):
            slot = row_pos[key[0]].get(key[1])
            if slot is not None:
                value[slot], hw[slot], time_col[slot] = overflow.pop(key)
                valid[slot] = True

    def _alloc_bc_columns(self, n_slots: int) -> Tuple[Any, Any, Any, Any]:
        """Allocate (value, hardware-at-receipt, receipt-time, valid) columns.

        Overridden by the vec engine to return numpy arrays; the scalar store
        and migration code indexes both representations identically.
        """
        return [0.0] * n_slots, [0.0] * n_slots, [0.0] * n_slots, [False] * n_slots

    def _control_all(self, t: float) -> None:
        cols = self._cols
        logical = cols.logical
        hardware = cols.hardware
        last_hardware = cols.last_hardware
        max_estimate = cols.max_estimate
        next_broadcast = cols.next_broadcast
        multiplier = cols.multiplier
        mode = cols.mode
        csr = self._csr
        indptr = csr.indptr
        neighbor_index = csr.neighbor_index
        level_col = csr.level
        epsilon_col = csr.epsilon
        tables = csr.tables
        aheads = self._scratch_ahead
        view_levels = self._scratch_level
        view_tables = self._scratch_table
        schedules = self._schedules
        factor = self._max_factor
        broadcast_interval = self.aopt_config.broadcast_interval
        iota = self.aopt_params.iota
        fast_multiplier = self._fast_multiplier
        strategy = self._strategy
        uniform = strategy == 1
        bc_mode = self._bc_mode
        bc_value = self._bc_value
        bc_hw = self._bc_hw
        bc_valid = self._bc_valid
        evaluate = evaluate_mode_flat
        for i in range(len(logical)):
            hw = hardware[i]
            lg = logical[i]
            # Max estimate maintenance (MaxEstimateTracker.advance).
            delta = hw - last_hardware[i]
            if delta < 0.0:
                delta = 0.0
            last_hardware[i] = hw
            m = max_estimate[i] + delta * factor
            if lg > m:
                m = lg
            max_estimate[i] = m
            # Staged insertions due at the current logical time.
            if schedules[i]:
                self._apply_due_insertions(i, lg)
            # Periodic broadcast, driven by the hardware clock.
            if hw + 1e-12 >= next_broadcast[i]:
                next_broadcast[i] = hw + broadcast_interval
                self._broadcast(i, t, m, lg)
            # Neighbor views: estimates inlined from the estimate layer
            # (BroadcastEstimateLayer extrapolation or OracleEstimateLayer
            # error strategies).
            if bc_mode:
                count = 0
                end = indptr[i + 1]
                for k in range(indptr[i], end):
                    level = level_col[k]
                    if level < 1:
                        continue
                    if not bc_valid[k]:
                        # No stored broadcast yet: the reference layer
                        # returns None and AOPT skips this neighbor's view.
                        continue
                    # BroadcastEstimateLayer.estimate, verbatim:
                    # stored.value + max(0.0, hw_now - stored_hw).
                    elapsed = hw - bc_hw[k]
                    if not elapsed > 0.0:
                        elapsed = 0.0
                    aheads[count] = (bc_value[k] + elapsed) - lg
                    view_levels[count] = level
                    view_tables[count] = tables[k]
                    count += 1
            elif uniform:
                count = self._fill_views_set_order(i, lg, aheads, view_levels, view_tables)
            else:
                count = 0
                end = indptr[i + 1]
                for k in range(indptr[i], end):
                    level = level_col[k]
                    if level < 1:
                        continue
                    true_value = logical[neighbor_index[k]]
                    if strategy == 0:  # zero error
                        estimate = true_value
                    elif strategy == 4:  # toward_observer
                        epsilon = epsilon_col[k]
                        if epsilon == 0.0:
                            estimate = true_value
                        else:
                            difference = lg - true_value
                            if difference > 0.0:
                                error = difference if difference < epsilon else epsilon
                            else:
                                error = difference if difference > -epsilon else -epsilon
                            estimate = true_value + error
                            if estimate < 0.0:
                                estimate = 0.0
                    elif strategy == 2:  # underestimate
                        epsilon = epsilon_col[k]
                        estimate = true_value if epsilon == 0.0 else true_value - epsilon
                        if estimate < 0.0:
                            estimate = 0.0
                    else:  # 3: overestimate
                        estimate = true_value + epsilon_col[k]
                    aheads[count] = estimate - lg
                    view_levels[count] = level
                    view_tables[count] = tables[k]
                    count += 1
            mode_code = evaluate(lg, m, iota, count, aheads, view_levels, view_tables)
            if mode_code == 0:
                multiplier[i] = 1.0
                mode[i] = 0
            elif mode_code == 1:
                multiplier[i] = fast_multiplier
                mode[i] = 1
            # mode_code == 2 ("free"): keep the current mode and multiplier.

    def _fill_views_set_order(
        self,
        position: int,
        lg: float,
        aheads: List[float],
        view_levels: List[int],
        view_tables: List[Any],
    ) -> int:
        """View building for the ``uniform`` strategy.

        The uniform oracle draws one random number per estimate, so the draw
        order must match the reference's iteration over
        ``NeighborLevels.discovered()`` (a set) exactly.
        """
        node = self._cols.ids[position]
        levels = self._levels[position]
        graph = self.graph
        out = graph.neighbors_view(node)
        logical = self._cols.logical
        index = self._cols.index
        csr = self._csr
        row_pos = csr.row_pos[position]
        tables = csr.tables
        max_level = self.max_level
        uniform = self._estimate_rng.uniform
        count = 0
        for neighbor in levels.discovered():
            level = levels.level_of(neighbor)
            if level is None or level < 1:
                continue
            if neighbor not in out:
                continue
            epsilon = graph.edge_params(node, neighbor).epsilon
            true_value = logical[index[neighbor]]
            if epsilon == 0.0:
                estimate = true_value
            else:
                estimate = true_value + uniform(-epsilon, epsilon)
                if estimate < 0.0:
                    estimate = 0.0
            aheads[count] = estimate - lg
            view_levels[count] = max_level if level >= max_level else level
            view_tables[count] = tables[row_pos[neighbor]]
            count += 1
        return count

    # ------------------------------------------------------------------
    # Clock advancement
    # ------------------------------------------------------------------
    def _advance_clocks(self, t: float) -> None:
        cols = self._cols
        hardware = cols.hardware
        logical = cols.logical
        multiplier = cols.multiplier
        dt = self.dt
        drift = self.drift
        n = len(hardware)
        if type(drift) is NoDrift:
            for i in range(n):
                hardware[i] += dt  # 1.0 * dt
                logical[i] += multiplier[i] * dt  # (1.0 * multiplier) * dt
        elif type(drift) is TwoGroupAdversary:
            swapped = False
            if drift.swap_period is not None:
                swapped = int(t // drift.swap_period) % 2 == 1
            fast_rate = 1.0 + drift.rho
            slow_rate = 1.0 - drift.rho
            fast_nodes = drift.fast_nodes
            slow_nodes = drift.slow_nodes
            ids = cols.ids
            for i in range(n):
                node = ids[i]
                fast = node in fast_nodes
                slow = node in slow_nodes
                if swapped:
                    fast, slow = slow, fast
                if fast:
                    rate = fast_rate
                elif slow:
                    rate = slow_rate
                else:
                    rate = 1.0
                hardware[i] += rate * dt
                logical[i] += (rate * multiplier[i]) * dt
        else:
            ids = cols.ids
            rate_of = drift.rate
            for i in range(n):
                rate = rate_of(ids[i], t)
                hardware[i] += rate * dt
                logical[i] += (rate * multiplier[i]) * dt

    # ------------------------------------------------------------------
    # Trace recording
    # ------------------------------------------------------------------
    def configure_recording(self, pipeline=None, *, record_trace: bool = True) -> None:
        """Attach a streaming metrics pipeline and/or disable trace keeping.

        The pipeline reads the flat columns directly (no per-node dicts are
        built for it); with ``record_trace=False`` no :class:`TraceSample`
        is materialized at all and memory stays constant in the duration.
        """
        self._metrics = pipeline
        self._record_trace = bool(record_trace)

    def _record_sample(self, force: bool = False) -> None:
        if not force and self.time + 1e-12 < self._next_sample_time:
            return
        cols = self._cols
        ids = cols.ids
        logical = cols.logical
        hardware = cols.hardware
        multiplier = cols.multiplier
        mode = cols.mode
        max_estimate = cols.max_estimate
        if self._record_trace:
            sample = TraceSample(
                time=self.time,
                logical={nid: logical[i] for i, nid in enumerate(ids)},
                hardware={nid: hardware[i] for i, nid in enumerate(ids)},
                multipliers={nid: multiplier[i] for i, nid in enumerate(ids)},
                modes={nid: MODE_NAMES[mode[i]] for i, nid in enumerate(ids)},
                max_estimates={nid: max_estimate[i] for i, nid in enumerate(ids)},
                diameter=None,
            )
            self.trace.record(sample)
        if self._metrics is not None:
            self._metrics.observe_columns(
                self.time, ids, cols.index, logical, max_estimate, mode
            )
        if not force:
            self._next_sample_time = self.time + self.trace.sample_interval
