"""A deterministic time-ordered event scheduler (binary heap)."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from .events import EventError, ScheduledEvent, make_event


class EventScheduler:
    """Priority queue of :class:`ScheduledEvent` objects."""

    def __init__(self):
        self._heap: List[ScheduledEvent] = []
        self._fired = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def fired_count(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._fired

    def schedule(
        self, time: float, callback: Callable[[float], None], description: str = ""
    ) -> ScheduledEvent:
        """Schedule ``callback(time)`` to run at the given absolute time."""
        event = make_event(time, callback, description)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop_due(self, time: float) -> List[ScheduledEvent]:
        """Pop every pending event with ``event.time <= time`` (in order)."""
        due: List[ScheduledEvent] = []
        epsilon = 1e-12
        while self._heap and self._heap[0].time <= time + epsilon:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                due.append(event)
        return due

    def run_due(self, time: float) -> int:
        """Fire every due event; return how many callbacks ran.

        Callbacks may schedule further events; newly scheduled events that are
        themselves already due at ``time`` fire within the same call, so a
        chain of zero-delay follow-ups completes before the simulation step
        finishes.
        """
        fired = 0
        guard = 0
        while True:
            due = self.pop_due(time)
            if not due:
                break
            for event in due:
                event.fire()
                fired += 1
                self._fired += 1
            guard += 1
            if guard > 10000:
                raise EventError(
                    "more than 10000 rounds of zero-delay events at time "
                    f"{time}; a callback is probably rescheduling itself"
                )
        return fired

    def clear(self) -> None:
        self._heap.clear()

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
