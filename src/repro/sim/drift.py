"""Hardware clock drift models.

The adversary of the paper controls the hardware clock rates, subject only to
``h_u(t) in [1 - rho, 1 + rho]``.  A drift model maps ``(node, time)`` to a
rate in that interval.  Besides benign models (constant offsets, bounded
random walks) this module provides the adversarial strategies used by the
lower-bound constructions:

* :class:`TwoGroupAdversary` -- one group of nodes runs fast, the other slow,
  optionally swapping periodically; this is the classical way to accumulate
  ``Theta(rho * t)`` skew across a cut.
* :class:`RampAdversary` -- rates increase linearly with the node index, which
  spreads skew evenly along a line and stresses the gradient property on every
  prefix path.
* :class:`SurpriseSwapAdversary` -- behaves identically to a benign model up
  to a switch time and adversarially afterwards; used to show that skew can be
  "hidden" from the algorithm (Section 8).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Optional, Sequence

from ..network.edge import NodeId


class DriftError(ValueError):
    """Raised when a drift model is configured inconsistently."""


class DriftModel:
    """Base class: returns the hardware rate of a node at a given time."""

    def __init__(self, rho: float):
        if not 0.0 <= rho < 1.0:
            raise DriftError(f"rho must lie in [0, 1), got {rho}")
        self.rho = float(rho)

    def rate(self, node: NodeId, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def clamp(self, rate: float) -> float:
        """Clamp a proposed rate into the legal interval."""
        return min(1.0 + self.rho, max(1.0 - self.rho, rate))


class NoDrift(DriftModel):
    """All hardware clocks run at exactly rate 1."""

    def rate(self, node: NodeId, t: float) -> float:
        return 1.0


class ConstantDrift(DriftModel):
    """Each node has a fixed rate offset in ``[-rho, +rho]``."""

    def __init__(self, rho: float, offsets: Dict[NodeId, float]):
        super().__init__(rho)
        for node, offset in offsets.items():
            if abs(offset) > rho + 1e-12:
                raise DriftError(
                    f"offset {offset} of node {node} exceeds rho = {rho}"
                )
        self.offsets = dict(offsets)

    def rate(self, node: NodeId, t: float) -> float:
        return 1.0 + self.offsets.get(node, 0.0)


class RandomConstantDrift(ConstantDrift):
    """Each node draws a fixed random offset uniformly from ``[-rho, rho]``."""

    def __init__(self, rho: float, nodes: Iterable[NodeId], seed: Optional[int] = None):
        rng = random.Random(seed)
        offsets = {node: rng.uniform(-rho, rho) for node in nodes}
        super().__init__(rho, offsets)


class RandomWalkDrift(DriftModel):
    """Rates perform a bounded random walk, re-sampled every ``period``."""

    def __init__(
        self,
        rho: float,
        nodes: Iterable[NodeId],
        *,
        period: float = 10.0,
        step: float = None,
        seed: Optional[int] = None,
    ):
        super().__init__(rho)
        if period <= 0.0:
            raise DriftError("period must be positive")
        self.period = float(period)
        self.step = float(step) if step is not None else rho / 4.0
        self._rng = random.Random(seed)
        self._nodes = sorted(set(nodes))
        self._offsets: Dict[NodeId, float] = {n: 0.0 for n in self._nodes}
        self._epoch = -1

    def _advance_epochs(self, epoch: int) -> None:
        while self._epoch < epoch:
            self._epoch += 1
            for node in self._nodes:
                delta = self._rng.uniform(-self.step, self.step)
                offset = self._offsets[node] + delta
                self._offsets[node] = max(-self.rho, min(self.rho, offset))

    def rate(self, node: NodeId, t: float) -> float:
        self._advance_epochs(int(t // self.period))
        return 1.0 + self._offsets.get(node, 0.0)


class TwoGroupAdversary(DriftModel):
    """Fast group at ``1 + rho``, slow group at ``1 - rho``; optional swapping."""

    def __init__(
        self,
        rho: float,
        fast_nodes: Iterable[NodeId],
        slow_nodes: Iterable[NodeId],
        *,
        swap_period: Optional[float] = None,
    ):
        super().__init__(rho)
        self.fast_nodes = set(fast_nodes)
        self.slow_nodes = set(slow_nodes)
        overlap = self.fast_nodes & self.slow_nodes
        if overlap:
            raise DriftError(f"nodes {sorted(overlap)} are both fast and slow")
        if swap_period is not None and swap_period <= 0.0:
            raise DriftError("swap_period must be positive when given")
        self.swap_period = swap_period

    def _swapped(self, t: float) -> bool:
        if self.swap_period is None:
            return False
        return int(t // self.swap_period) % 2 == 1

    def rate(self, node: NodeId, t: float) -> float:
        fast = node in self.fast_nodes
        slow = node in self.slow_nodes
        if self._swapped(t):
            fast, slow = slow, fast
        if fast:
            return 1.0 + self.rho
        if slow:
            return 1.0 - self.rho
        return 1.0


class RampAdversary(DriftModel):
    """Rates increase linearly with node index from ``1 - rho`` to ``1 + rho``."""

    def __init__(self, rho: float, nodes: Sequence[NodeId], *, reverse_period: Optional[float] = None):
        super().__init__(rho)
        ordered = list(nodes)
        if not ordered:
            raise DriftError("RampAdversary needs at least one node")
        self._order = {node: i for i, node in enumerate(ordered)}
        self._count = len(ordered)
        if reverse_period is not None and reverse_period <= 0.0:
            raise DriftError("reverse_period must be positive when given")
        self.reverse_period = reverse_period

    def rate(self, node: NodeId, t: float) -> float:
        index = self._order.get(node)
        if index is None:
            return 1.0
        if self._count == 1:
            return 1.0
        frac = index / (self._count - 1)
        if self.reverse_period is not None and int(t // self.reverse_period) % 2 == 1:
            frac = 1.0 - frac
        return (1.0 - self.rho) + 2.0 * self.rho * frac


class SurpriseSwapAdversary(DriftModel):
    """Benign until ``switch_time``, then delegates to an adversarial model."""

    def __init__(self, rho: float, benign: DriftModel, adversarial: DriftModel, switch_time: float):
        super().__init__(rho)
        if switch_time < 0.0:
            raise DriftError("switch_time must be non-negative")
        self.benign = benign
        self.adversarial = adversarial
        self.switch_time = float(switch_time)

    def rate(self, node: NodeId, t: float) -> float:
        model = self.benign if t < self.switch_time else self.adversarial
        return self.clamp(model.rate(node, t))


class SinusoidalDrift(DriftModel):
    """Smoothly varying rates, phase-shifted per node (a benign stress test)."""

    def __init__(self, rho: float, period: float = 100.0):
        super().__init__(rho)
        if period <= 0.0:
            raise DriftError("period must be positive")
        self.period = float(period)

    def rate(self, node: NodeId, t: float) -> float:
        phase = 2.0 * math.pi * (t / self.period + 0.1 * node)
        return 1.0 + self.rho * math.sin(phase)


def half_split(nodes: Sequence[NodeId]) -> tuple:
    """Split a node sequence into (first half, second half) for adversaries."""
    ordered = list(nodes)
    mid = len(ordered) // 2
    return ordered[:mid], ordered[mid:]
