"""Simulation engine, adversarial drift/delay models, traces and runners."""

from .delay import (
    CallableDelay,
    DelayModel,
    DirectionalDelay,
    FixedFractionDelay,
    UniformRandomDelay,
    ZeroDelay,
)
from .drift import (
    ConstantDrift,
    DriftModel,
    NoDrift,
    RampAdversary,
    RandomConstantDrift,
    RandomWalkDrift,
    SinusoidalDrift,
    SurpriseSwapAdversary,
    TwoGroupAdversary,
    half_split,
)
from .engine import Engine, EngineError
from .runner import (
    SimulationConfig,
    SimulationResult,
    build_engine,
    default_aopt_config,
    run_aopt,
    run_simulation,
)
from .scheduler import EventScheduler
from .trace import Trace, TraceSample

__all__ = [
    "CallableDelay",
    "DelayModel",
    "DirectionalDelay",
    "FixedFractionDelay",
    "UniformRandomDelay",
    "ZeroDelay",
    "ConstantDrift",
    "DriftModel",
    "NoDrift",
    "RampAdversary",
    "RandomConstantDrift",
    "RandomWalkDrift",
    "SinusoidalDrift",
    "SurpriseSwapAdversary",
    "TwoGroupAdversary",
    "half_split",
    "Engine",
    "EngineError",
    "SimulationConfig",
    "SimulationResult",
    "build_engine",
    "default_aopt_config",
    "run_aopt",
    "run_simulation",
    "EventScheduler",
    "Trace",
    "TraceSample",
]
