"""Event primitives for the simulation scheduler."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventError(ValueError):
    """Raised on invalid event operations."""


_counter = itertools.count()


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at an absolute simulation time.

    Events compare by ``(time, sequence)`` so that ties resolve in insertion
    order, which keeps runs deterministic.
    """

    time: float
    sequence: int = field(compare=True)
    callback: Callable[[float], None] = field(compare=False)
    description: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.callback(self.time)


def make_event(
    time: float, callback: Callable[[float], None], description: str = ""
) -> ScheduledEvent:
    """Create a :class:`ScheduledEvent` with a fresh sequence number."""
    if time < 0.0:
        raise EventError(f"event times must be non-negative, got {time}")
    if not callable(callback):
        raise EventError("event callback must be callable")
    return ScheduledEvent(time, next(_counter), callback, description)
