"""Recording of simulation state over time."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network.edge import NodeId


class TraceError(ValueError):
    """Raised on invalid trace operations."""


@dataclass(frozen=True)
class TraceSample:
    """Snapshot of every node's observable state at one instant."""

    time: float
    logical: Dict[NodeId, float]
    hardware: Dict[NodeId, float]
    multipliers: Dict[NodeId, float]
    modes: Dict[NodeId, str]
    max_estimates: Dict[NodeId, float]
    diameter: Optional[float] = None

    def global_skew(self) -> float:
        """Maximum pairwise logical clock difference in this sample."""
        values = list(self.logical.values())
        if not values:
            return 0.0
        return max(values) - min(values)

    def skew(self, u: NodeId, v: NodeId) -> float:
        """Absolute logical clock difference between two nodes."""
        return abs(self.logical[u] - self.logical[v])


#: How :meth:`Trace.record` treats a sample whose time coincides with the
#: last recorded one (within ``TIME_TOLERANCE``).
DUPLICATE_POLICIES = ("allow", "replace", "error")

#: Absolute tolerance for "same instant" and ordering checks.  Samples more
#: than this much *earlier* than the last recorded time are always rejected;
#: samples within the tolerance are duplicates, handled per policy.
TIME_TOLERANCE = 1e-12


class Trace:
    """Time-ordered sequence of :class:`TraceSample` objects.

    Ordering/duplicate policy (explicit by design): a sample must not be
    earlier than the last recorded one by more than :data:`TIME_TOLERANCE`.
    Samples *within* the tolerance of the last time are duplicates of the
    same instant; ``on_duplicate`` picks what happens:

    * ``"allow"`` (default) -- append it.  This is what the engines rely on:
      ``run_until`` force-records a final sample that can coincide with the
      last periodic one, and summaries deliberately count both.
    * ``"replace"`` -- overwrite the last sample in place (the trace keeps
      one sample per instant).
    * ``"error"`` -- raise :class:`TraceError`.
    """

    def __init__(self, sample_interval: float = 1.0, *, on_duplicate: str = "allow"):
        if sample_interval <= 0.0:
            raise TraceError("sample_interval must be positive")
        if on_duplicate not in DUPLICATE_POLICIES:
            raise TraceError(
                f"on_duplicate must be one of {DUPLICATE_POLICIES}, got {on_duplicate!r}"
            )
        self.sample_interval = float(sample_interval)
        self.on_duplicate = on_duplicate
        self._samples: List[TraceSample] = []
        self._times: List[float] = []

    # ------------------------------------------------------------------
    def record(self, sample: TraceSample) -> None:
        if self._times:
            last = self._times[-1]
            if sample.time < last - TIME_TOLERANCE:
                raise TraceError(
                    "samples must be recorded in non-decreasing time order"
                )
            if self.on_duplicate != "allow" and sample.time <= last + TIME_TOLERANCE:
                if self.on_duplicate == "error":
                    raise TraceError(
                        f"duplicate sample at time {sample.time!r} "
                        f"(last recorded: {last!r})"
                    )
                self._samples[-1] = sample  # "replace"
                self._times[-1] = sample.time
                return
        self._samples.append(sample)
        self._times.append(sample.time)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> List[TraceSample]:
        return list(self._samples)

    @property
    def times(self) -> List[float]:
        return list(self._times)

    def is_empty(self) -> bool:
        return not self._samples

    def first(self) -> TraceSample:
        if not self._samples:
            raise TraceError("the trace is empty")
        return self._samples[0]

    def final(self) -> TraceSample:
        if not self._samples:
            raise TraceError("the trace is empty")
        return self._samples[-1]

    def sample_at(self, t: float) -> TraceSample:
        """The latest sample with time at most ``t`` (or the first sample)."""
        if not self._samples:
            raise TraceError("the trace is empty")
        index = bisect.bisect_right(self._times, t + 1e-12) - 1
        return self._samples[max(0, index)]

    def samples_between(self, start: float, end: float) -> List[TraceSample]:
        """All samples with time in ``[start, end]``."""
        if end < start:
            raise TraceError("end must not precede start")
        lo = bisect.bisect_left(self._times, start - 1e-12)
        hi = bisect.bisect_right(self._times, end + 1e-12)
        return self._samples[lo:hi]

    # ------------------------------------------------------------------
    # Convenience series
    # ------------------------------------------------------------------
    def logical_series(self, node: NodeId) -> List[Tuple[float, float]]:
        return [(s.time, s.logical[node]) for s in self._samples]

    def skew_series(self, u: NodeId, v: NodeId) -> List[Tuple[float, float]]:
        return [(s.time, s.skew(u, v)) for s in self._samples]

    def global_skew_series(self) -> List[Tuple[float, float]]:
        return [(s.time, s.global_skew()) for s in self._samples]

    def max_global_skew(self) -> float:
        if not self._samples:
            return 0.0
        return max(s.global_skew() for s in self._samples)

    def mode_counts(self) -> Dict[str, int]:
        """Total number of (node, sample) pairs per mode (fast/slow)."""
        counts: Dict[str, int] = {}
        for sample in self._samples:
            for mode in sample.modes.values():
                counts[mode] = counts.get(mode, 0) + 1
        return counts
