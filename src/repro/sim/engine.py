"""The fixed-step simulation engine.

The engine owns the dynamic graph, the per-node clocks and algorithm
instances, the bounded-delay transport, the estimate layer, a callback
scheduler and (optionally) a dynamic-diameter tracker.  One step of length
``dt`` performs, in order:

1. apply scheduled edge events and notify the affected algorithms;
2. deliver due messages (updating the estimate layer and diameter tracker);
3. run due scheduled callbacks (handshake timers etc.);
4. ask every algorithm for its control decision;
5. record a trace sample if one is due;
6. advance hardware and logical clocks (applying requested jumps first);
7. advance the diameter tracker and the global time.

Because the state inspected by algorithms in step 4 is the state at the start
of the step, all nodes act on a consistent snapshot, mirroring the
continuous-time semantics of the paper up to an ``O(dt)`` discretization
error.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..core.clocks import HardwareClock, LogicalClock
from ..core.interfaces import AlgorithmFactory, ClockSyncAlgorithm, ControlDecision, NodeAPI
from ..core.parameters import Parameters
from ..estimate.estimate_layer import EstimateLayer
from ..estimate.messages import ClockBroadcast, Envelope
from ..estimate.transport import Transport
from ..network.diameter import DiameterTracker
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import EdgeParams, NodeId
from .delay import DelayModel
from .drift import DriftModel, NoDrift
from .scheduler import EventScheduler
from .trace import Trace, TraceSample


class EngineError(RuntimeError):
    """Raised on inconsistent engine configuration or usage."""


class _EngineNodeAPI(NodeAPI):
    """The :class:`NodeAPI` exposed to one node's algorithm."""

    def __init__(self, engine: "Engine", node_id: NodeId):
        self._engine = engine
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def now(self) -> float:
        return self._engine.time

    def hardware(self) -> float:
        return self._engine.hardware_value(self._node_id)

    def logical(self) -> float:
        return self._engine.logical_value(self._node_id)

    def neighbors(self) -> Set[NodeId]:
        return self._engine.graph.neighbors(self._node_id)

    def estimate(self, neighbor: NodeId) -> Optional[float]:
        return self._engine.estimate_layer.estimate(
            self._node_id, neighbor, self._engine.time
        )

    def estimate_error(self, neighbor: NodeId) -> float:
        return self._engine.estimate_layer.error_bound(self._node_id, neighbor)

    def edge_params(self, neighbor: NodeId) -> EdgeParams:
        return self._engine.graph.edge_params(self._node_id, neighbor)

    def send(self, neighbor: NodeId, payload: object) -> bool:
        envelope = self._engine.transport.try_send(
            self._node_id, neighbor, payload, self._engine.time
        )
        return envelope is not None

    def schedule(self, delay: float, callback: Callable[[float], None]) -> None:
        if delay < 0.0:
            raise EngineError(f"cannot schedule into the past (delay {delay})")
        self._engine.scheduler.schedule(self._engine.time + delay, callback)


class _NodeState:
    """Clocks and algorithm instance of a single node."""

    __slots__ = ("node_id", "hardware", "logical", "algorithm", "api", "decision")

    def __init__(
        self,
        node_id: NodeId,
        hardware: HardwareClock,
        logical: LogicalClock,
        algorithm: ClockSyncAlgorithm,
        api: _EngineNodeAPI,
    ):
        self.node_id = node_id
        self.hardware = hardware
        self.logical = logical
        self.algorithm = algorithm
        self.api = api
        self.decision = ControlDecision(multiplier=1.0)


class Engine:
    """Fixed-step simulator for clock synchronization algorithms."""

    #: Optional streaming-metrics hook (see :meth:`configure_recording`).
    _metrics = None
    #: Whether recorded samples are appended to ``self.trace``.
    _record_trace = True
    #: Set when an armed watchdog stopped the run before ``end_time``.
    stopped_early = False

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        estimate_layer_factory: Callable[["Engine"], EstimateLayer],
        *,
        params: Parameters,
        dt: float = 0.05,
        drift: Optional[DriftModel] = None,
        delay: Optional[DelayModel] = None,
        sample_interval: float = 1.0,
        track_diameter: bool = False,
        initial_logical: Optional[Dict[NodeId, float]] = None,
        drop_messages_on_edge_loss: bool = False,
    ):
        if dt <= 0.0:
            raise EngineError(f"dt must be positive, got {dt}")
        params.validate()
        # The engine works on its own copy: applying scheduled edge events
        # mutates the graph, and callers frequently reuse one scenario graph
        # for several runs (e.g. to compare algorithms).
        self.graph = graph.copy()
        self.params = params
        # Kept for crash/restart scenarios: a node reset rebuilds the node's
        # algorithm instance from the same factory that created it.
        self._algorithm_factory = algorithm_factory
        self.dt = float(dt)
        self.time = 0.0
        self.drift = drift or NoDrift(params.rho)
        self.scheduler = EventScheduler()
        self.transport = Transport(
            self.graph, delay, drop_on_edge_loss=drop_messages_on_edge_loss
        )
        self.trace = Trace(sample_interval)
        self._next_sample_time = 0.0
        self.diameter_tracker: Optional[DiameterTracker] = (
            DiameterTracker(graph.nodes, params.rho) if track_diameter else None
        )
        self._nodes: Dict[NodeId, _NodeState] = {}
        initial_logical = initial_logical or {}
        for node_id in graph.nodes:
            api = _EngineNodeAPI(self, node_id)
            algorithm = algorithm_factory(node_id)
            start_value = float(initial_logical.get(node_id, 0.0))
            state = _NodeState(
                node_id,
                HardwareClock(params.rho, start_value),
                LogicalClock(start_value, allow_jumps=True),
                algorithm,
                api,
            )
            self._nodes[node_id] = state
        # The estimate layer may need to read engine state, hence the factory.
        self.estimate_layer = estimate_layer_factory(self)
        for state in self._nodes.values():
            state.algorithm.bind(state.api)
        for state in self._nodes.values():
            state.algorithm.on_start(0.0, self.graph.neighbors(state.node_id))

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._nodes)

    def logical_value(self, node: NodeId) -> float:
        return self._node(node).logical.value

    def hardware_value(self, node: NodeId) -> float:
        return self._node(node).hardware.value

    def algorithm(self, node: NodeId) -> ClockSyncAlgorithm:
        return self._node(node).algorithm

    def logical_snapshot(self) -> Dict[NodeId, float]:
        return {n: s.logical.value for n, s in self._nodes.items()}

    def hardware_snapshot(self) -> Dict[NodeId, float]:
        return {n: s.hardware.value for n, s in self._nodes.items()}

    def global_skew(self) -> float:
        values = [s.logical.value for s in self._nodes.values()]
        return max(values) - min(values) if values else 0.0

    def current_diameter(self) -> Optional[float]:
        if self.diameter_tracker is None or not self.diameter_tracker.is_finite():
            return None
        return self.diameter_tracker.diameter()

    def _node(self, node: NodeId) -> _NodeState:
        try:
            return self._nodes[node]
        except KeyError:
            raise EngineError(f"unknown node {node}") from None

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> Trace:
        """Advance the simulation by ``duration`` time units."""
        if duration < 0.0:
            raise EngineError("duration must be non-negative")
        return self.run_until(self.time + duration)

    def run_until(self, end_time: float) -> Trace:
        """Advance the simulation until ``end_time`` (inclusive sampling).

        If the attached metrics pipeline has an armed watchdog (the
        ``--until-stable`` path), the loop exits as soon as the pipeline
        requests a stop.  The flag only changes while a sample is being
        recorded, so the stop lands exactly on a sample instant; the forced
        final sample is skipped, leaving the samples fed so far a
        bit-identical prefix of the full run's.
        """
        if end_time < self.time - 1e-12:
            raise EngineError("cannot run backwards in time")
        metrics = self._metrics
        while self.time < end_time - 1e-9:
            self.step()
            if metrics is not None and metrics.stop_requested:
                self.stopped_early = True
                return self.trace
        self._record_sample(force=True)
        return self.trace

    def step(self) -> None:
        """Execute one simulation step of length ``dt``."""
        t = self.time
        self._apply_node_resets(t)
        self._apply_graph_events(t)
        self._deliver_messages(t)
        self.scheduler.run_due(t)
        for state in self._nodes.values():
            state.decision = state.algorithm.control(t)
        self._record_sample()
        self._advance_clocks(t)
        if self.diameter_tracker is not None:
            self.diameter_tracker.advance(self.dt)
        self.time = t + self.dt

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------
    def _apply_node_resets(self, t: float) -> None:
        """Restart crashed nodes: fresh clocks, fresh algorithm, no memory.

        Resets run *before* the edge events of the same step so that a node
        rejoining at its restart instant greets its returning edges with the
        newly built algorithm (``on_edge_discovered`` must reach the reboot,
        not the pre-crash instance).  Everything the rest of the network
        remembered about the node is dropped from the estimate layer: its
        pre-crash clock is gone, so estimates of it are meaningless.
        """
        for event in self.graph.pop_node_resets_until(t):
            state = self._node(event.node)
            state.hardware = HardwareClock(self.params.rho, event.value)
            state.logical = LogicalClock(event.value, allow_jumps=True)
            algorithm = self._algorithm_factory(event.node)
            state.algorithm = algorithm
            state.decision = ControlDecision(multiplier=1.0)
            forget = getattr(self.estimate_layer, "forget", None)
            if forget is not None:
                for other in self.graph.nodes:
                    if other != event.node:
                        forget(other, event.node)
                        forget(event.node, other)
            algorithm.bind(state.api)
            algorithm.on_start(t, self.graph.neighbors(event.node))

    def _apply_graph_events(self, t: float) -> None:
        for event in self.graph.pop_events_until(t):
            existed = self.graph.has_directed_edge(event.source, event.target)
            self.graph.apply_event(event)
            exists = self.graph.has_directed_edge(event.source, event.target)
            if exists and not existed:
                self._node(event.source).algorithm.on_edge_discovered(t, event.target)
            elif existed and not exists:
                self._node(event.source).algorithm.on_edge_lost(t, event.target)
                forget = getattr(self.estimate_layer, "forget", None)
                if forget is not None:
                    forget(event.source, event.target)

    def _deliver_messages(self, t: float) -> None:
        for envelope in self.transport.deliveries_due(t):
            payload = envelope.payload
            if isinstance(payload, ClockBroadcast):
                self.estimate_layer.on_broadcast(
                    envelope.receiver, payload, t, envelope.transit_time
                )
            if self.diameter_tracker is not None:
                bound = self.graph.edge_params(envelope.sender, envelope.receiver).delay
                self.diameter_tracker.record_message(
                    envelope.sender, envelope.receiver, bound, envelope.transit_time
                )
            self._node(envelope.receiver).algorithm.on_message(
                t, envelope.sender, payload
            )

    def _advance_clocks(self, t: float) -> None:
        for state in self._nodes.values():
            decision = state.decision
            if decision.jump_to is not None and decision.jump_to > state.logical.value:
                state.logical.jump_to(decision.jump_to)
            rate = self.drift.rate(state.node_id, t)
            state.hardware.advance(self.dt, rate)
            state.logical.advance(self.dt, rate, decision.multiplier)

    def configure_recording(self, pipeline=None, *, record_trace: bool = True) -> None:
        """Attach a streaming metrics pipeline and/or disable trace keeping.

        ``pipeline`` (a :class:`repro.metrics.pipeline.MetricsPipeline`) is
        fed one sample view per recorded sample -- at exactly the instants a
        trace sample is (or would be) recorded.  With ``record_trace=False``
        the engine keeps no samples at all: ``self.trace`` stays empty and
        memory no longer grows with the run duration.
        """
        self._metrics = pipeline
        self._record_trace = bool(record_trace)

    def _record_sample(self, force: bool = False) -> None:
        if not force and self.time + 1e-12 < self._next_sample_time:
            return
        sample = TraceSample(
            time=self.time,
            logical=self.logical_snapshot(),
            hardware=self.hardware_snapshot(),
            multipliers={n: s.decision.multiplier for n, s in self._nodes.items()},
            modes={n: s.algorithm.mode() for n, s in self._nodes.items()},
            max_estimates={n: s.algorithm.max_estimate() for n, s in self._nodes.items()},
            diameter=self.current_diameter(),
        )
        if self._record_trace:
            self.trace.record(sample)
        if self._metrics is not None:
            self._metrics.observe_sample(sample)
        if not force:
            self._next_sample_time = self.time + self.trace.sample_interval
