"""Message delay models.

Every message sent over an edge ``{u, v}`` is delivered within the edge's
delay bound ``T_{u,v}``; the adversary picks the actual delay.  A delay model
maps ``(sender, receiver, time, bound)`` to a delay in ``[0, bound]``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Set, Tuple

from ..network.edge import NodeId


class DelayError(ValueError):
    """Raised when a delay model produces an out-of-range delay."""


class DelayModel:
    """Base class for message delay models."""

    def delay(
        self, sender: NodeId, receiver: NodeId, t: float, bound: float
    ) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _check(delay: float, bound: float) -> float:
        if delay < 0.0 or delay > bound + 1e-12:
            raise DelayError(f"delay {delay} outside [0, {bound}]")
        return min(delay, bound)


class ZeroDelay(DelayModel):
    """Messages arrive instantaneously."""

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return 0.0


class FixedFractionDelay(DelayModel):
    """Every message takes ``fraction * bound`` time."""

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise DelayError(f"fraction must lie in [0, 1], got {fraction}")
        self.fraction = float(fraction)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return self._check(self.fraction * bound, bound)


class UniformRandomDelay(DelayModel):
    """Delays drawn uniformly from ``[low_fraction, high_fraction] * bound``."""

    def __init__(
        self,
        low_fraction: float = 0.0,
        high_fraction: float = 1.0,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= low_fraction <= high_fraction <= 1.0:
            raise DelayError(
                "need 0 <= low_fraction <= high_fraction <= 1, got "
                f"({low_fraction}, {high_fraction})"
            )
        self.low_fraction = float(low_fraction)
        self.high_fraction = float(high_fraction)
        self._rng = random.Random(seed)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        fraction = self._rng.uniform(self.low_fraction, self.high_fraction)
        return self._check(fraction * bound, bound)


class DirectionalDelay(DelayModel):
    """Adversarial strategy: maximal delay one way, minimal the other.

    Messages from lower-id to higher-id nodes take the full bound, the reverse
    direction is instantaneous.  Combined with the shifting argument this is
    how the ``Omega(D)`` global-skew lower bound hides skew from the
    algorithm.
    """

    def __init__(self, slow_towards_higher: bool = True):
        self.slow_towards_higher = bool(slow_towards_higher)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        towards_higher = receiver > sender
        slow = towards_higher == self.slow_towards_higher
        return self._check(bound if slow else 0.0, bound)


class DelaySpikeStorm(DelayModel):
    """Windowed delay amplifier: periodic spike storms on chosen edges.

    Wraps an inner delay model and multiplies its delays by ``factor``
    during repeating storm windows ``[start + k*period, start + k*period +
    width)``.  ``edges`` restricts the storm to the given undirected pairs
    (``None`` = every edge).  Amplified delays are clamped to the edge's
    delay bound, so the model never violates the paper's delivery guarantee
    -- a storm degrades estimate quality to its admissible worst case rather
    than breaking the system model.
    """

    def __init__(
        self,
        inner: DelayModel,
        *,
        period: float,
        width: float,
        start: float = 0.0,
        factor: float = 4.0,
        edges: Optional[Iterable[Tuple[NodeId, NodeId]]] = None,
    ):
        if not isinstance(inner, DelayModel):
            raise DelayError("DelaySpikeStorm needs an inner DelayModel")
        if period <= 0.0:
            raise DelayError(f"storm period must be positive, got {period}")
        if not 0.0 < width <= period:
            raise DelayError(
                f"storm width must lie in (0, period={period}], got {width}"
            )
        if start < 0.0:
            raise DelayError(f"storm start must be non-negative, got {start}")
        if factor < 0.0:
            raise DelayError(f"storm factor must be non-negative, got {factor}")
        self.inner = inner
        self.period = float(period)
        self.width = float(width)
        self.start = float(start)
        self.factor = float(factor)
        self._edges: Optional[Set[Tuple[NodeId, NodeId]]] = None
        if edges is not None:
            self._edges = set()
            for pair in edges:
                u, v = pair
                self._edges.add((min(u, v), max(u, v)))

    def in_storm(self, t: float) -> bool:
        """Whether ``t`` falls inside a storm window."""
        if t < self.start:
            return False
        return (t - self.start) % self.period < self.width

    def affects(self, sender: NodeId, receiver: NodeId) -> bool:
        if self._edges is None:
            return True
        return (min(sender, receiver), max(sender, receiver)) in self._edges

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        base = self.inner.delay(sender, receiver, t, bound)
        if self.in_storm(t) and self.affects(sender, receiver):
            return self._check(min(base * self.factor, bound), bound)
        return base


class CallableDelay(DelayModel):
    """Wrap an arbitrary function ``f(sender, receiver, t, bound) -> delay``."""

    def __init__(self, fn: Callable[[NodeId, NodeId, float, float], float]):
        if not callable(fn):
            raise DelayError("CallableDelay needs a callable")
        self._fn = fn

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return self._check(self._fn(sender, receiver, t, bound), bound)
