"""Message delay models.

Every message sent over an edge ``{u, v}`` is delivered within the edge's
delay bound ``T_{u,v}``; the adversary picks the actual delay.  A delay model
maps ``(sender, receiver, time, bound)`` to a delay in ``[0, bound]``.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..network.edge import NodeId


class DelayError(ValueError):
    """Raised when a delay model produces an out-of-range delay."""


class DelayModel:
    """Base class for message delay models."""

    def delay(
        self, sender: NodeId, receiver: NodeId, t: float, bound: float
    ) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def _check(delay: float, bound: float) -> float:
        if delay < 0.0 or delay > bound + 1e-12:
            raise DelayError(f"delay {delay} outside [0, {bound}]")
        return min(delay, bound)


class ZeroDelay(DelayModel):
    """Messages arrive instantaneously."""

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return 0.0


class FixedFractionDelay(DelayModel):
    """Every message takes ``fraction * bound`` time."""

    def __init__(self, fraction: float = 0.5):
        if not 0.0 <= fraction <= 1.0:
            raise DelayError(f"fraction must lie in [0, 1], got {fraction}")
        self.fraction = float(fraction)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return self._check(self.fraction * bound, bound)


class UniformRandomDelay(DelayModel):
    """Delays drawn uniformly from ``[low_fraction, high_fraction] * bound``."""

    def __init__(
        self,
        low_fraction: float = 0.0,
        high_fraction: float = 1.0,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= low_fraction <= high_fraction <= 1.0:
            raise DelayError(
                "need 0 <= low_fraction <= high_fraction <= 1, got "
                f"({low_fraction}, {high_fraction})"
            )
        self.low_fraction = float(low_fraction)
        self.high_fraction = float(high_fraction)
        self._rng = random.Random(seed)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        fraction = self._rng.uniform(self.low_fraction, self.high_fraction)
        return self._check(fraction * bound, bound)


class DirectionalDelay(DelayModel):
    """Adversarial strategy: maximal delay one way, minimal the other.

    Messages from lower-id to higher-id nodes take the full bound, the reverse
    direction is instantaneous.  Combined with the shifting argument this is
    how the ``Omega(D)`` global-skew lower bound hides skew from the
    algorithm.
    """

    def __init__(self, slow_towards_higher: bool = True):
        self.slow_towards_higher = bool(slow_towards_higher)

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        towards_higher = receiver > sender
        slow = towards_higher == self.slow_towards_higher
        return self._check(bound if slow else 0.0, bound)


class CallableDelay(DelayModel):
    """Wrap an arbitrary function ``f(sender, receiver, t, bound) -> delay``."""

    def __init__(self, fn: Callable[[NodeId, NodeId, float, float], float]):
        if not callable(fn):
            raise DelayError("CallableDelay needs a callable")
        self._fn = fn

    def delay(self, sender: NodeId, receiver: NodeId, t: float, bound: float) -> float:
        return self._check(self._fn(sender, receiver, t, bound), bound)
