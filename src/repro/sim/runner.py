"""High-level helpers for building and running simulations.

Most experiments follow the same pattern: build a topology, choose an
adversarial drift model, configure AOPT (or a baseline), run for a while and
analyse the trace.  :class:`SimulationConfig` bundles the knobs and
:func:`run_simulation` wires everything together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..core.algorithm import AOPT, AOPTConfig, aopt_factory
from ..core.interfaces import AlgorithmFactory
from ..core import insertion as insertion_mod
from ..core.parameters import DEFAULT_PARAMETERS, Parameters
from ..core.skew_estimates import suggest_global_skew_bound
from ..estimate.estimate_layer import EstimateLayer
from ..estimate.message_layer import BroadcastEstimateLayer
from ..estimate.oracle_layer import OracleEstimateLayer
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from .delay import DelayModel, UniformRandomDelay
from .drift import DriftModel
from .engine import Engine
from .trace import Trace


class RunnerError(ValueError):
    """Raised on invalid runner configuration."""


@dataclass
class SimulationConfig:
    """Everything needed to run one simulation besides graph and algorithm."""

    params: Parameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    dt: float = 0.05
    duration: float = 100.0
    sample_interval: float = 1.0
    broadcast_interval: float = 1.0
    estimate_mode: str = "oracle"  # "oracle" or "broadcast"
    estimate_strategy: str = "zero"
    estimate_seed: Optional[int] = None
    drift: Optional[DriftModel] = None
    delay: Optional[DelayModel] = None
    delay_seed: Optional[int] = None
    track_diameter: bool = False
    drop_messages_on_edge_loss: bool = False
    initial_logical: Optional[Dict[NodeId, float]] = None

    def __post_init__(self):
        if self.dt <= 0.0:
            raise RunnerError("dt must be positive")
        if self.duration < 0.0:
            raise RunnerError("duration must be non-negative")
        if self.sample_interval <= 0.0:
            raise RunnerError("sample_interval must be positive")
        if self.broadcast_interval <= 0.0:
            raise RunnerError("broadcast_interval must be positive")
        if self.estimate_mode not in ("oracle", "broadcast"):
            raise RunnerError(
                f"estimate_mode must be 'oracle' or 'broadcast', got {self.estimate_mode}"
            )


@dataclass
class SimulationResult:
    """Trace plus the engine it was produced by (for post-run inspection)."""

    trace: Trace
    engine: Engine


def _estimate_layer_factory(config: SimulationConfig) -> Callable[[Engine], EstimateLayer]:
    def factory(engine: Engine) -> EstimateLayer:
        if config.estimate_mode == "oracle":
            return OracleEstimateLayer(
                engine.graph,
                engine.logical_value,
                strategy=config.estimate_strategy,
                seed=config.estimate_seed,
            )
        return BroadcastEstimateLayer(
            engine.graph,
            engine.hardware_value,
            broadcast_interval=config.broadcast_interval,
            rho=config.params.rho,
            mu=config.params.mu,
        )

    return factory


def build_engine(
    graph: DynamicGraph,
    algorithm_factory: AlgorithmFactory,
    config: SimulationConfig,
) -> Engine:
    """Assemble an :class:`Engine` from a graph, algorithm and configuration."""
    delay = config.delay
    if delay is None:
        delay = UniformRandomDelay(seed=config.delay_seed)
    return Engine(
        graph,
        algorithm_factory,
        _estimate_layer_factory(config),
        params=config.params,
        dt=config.dt,
        drift=config.drift,
        delay=delay,
        sample_interval=config.sample_interval,
        track_diameter=config.track_diameter,
        initial_logical=config.initial_logical,
        drop_messages_on_edge_loss=config.drop_messages_on_edge_loss,
    )


def run_simulation(
    graph: DynamicGraph,
    algorithm_factory: AlgorithmFactory,
    config: SimulationConfig,
) -> SimulationResult:
    """Run a full simulation and return the trace and engine."""
    engine = build_engine(graph, algorithm_factory, config)
    trace = engine.run(config.duration)
    return SimulationResult(trace=trace, engine=engine)


def minimum_kappa(graph: DynamicGraph, params: Parameters) -> float:
    """Smallest edge weight ``kappa_e`` over the graph's known edges."""
    kappas = []
    for key, edge in graph.known_edge_params().items():
        kappas.append(params.kappa_for(edge.epsilon, edge.tau))
    if not kappas:
        default = graph.edge_params(graph.nodes[0], graph.nodes[-1]) if graph.node_count > 1 else None
        if default is None:
            raise RunnerError("cannot derive kappa_min for a single-node graph")
        kappas.append(params.kappa_for(default.epsilon, default.tau))
    return min(kappas)


def default_aopt_config(
    graph: DynamicGraph,
    config: SimulationConfig,
    *,
    global_skew_bound: Optional[float] = None,
    insertion_duration: Optional[insertion_mod.DurationFunction] = None,
    immediate_insertion: bool = False,
) -> AOPTConfig:
    """Build a reasonable AOPT configuration for the given topology."""
    bound = global_skew_bound
    if bound is None:
        bound = suggest_global_skew_bound(
            graph, config.params, broadcast_interval=config.broadcast_interval
        )
    return AOPTConfig.for_bound(
        config.params,
        bound,
        kappa_min=minimum_kappa(graph, config.params),
        broadcast_interval=config.broadcast_interval,
        insertion_duration=insertion_duration,
        immediate_insertion=immediate_insertion,
    )


def run_aopt(
    graph: DynamicGraph,
    config: SimulationConfig,
    *,
    global_skew_bound: Optional[float] = None,
    insertion_duration: Optional[insertion_mod.DurationFunction] = None,
    immediate_insertion: bool = False,
) -> SimulationResult:
    """Convenience wrapper: run AOPT on ``graph`` with sensible defaults."""
    aopt_config = default_aopt_config(
        graph,
        config,
        global_skew_bound=global_skew_bound,
        insertion_duration=insertion_duration,
        immediate_insertion=immediate_insertion,
    )
    return run_simulation(graph, aopt_factory(aopt_config), config)
