"""Named factories that turn pure-data specs into live simulation objects.

Five registries map names to factories:

* ``TOPOLOGIES`` -- everything in :mod:`repro.network.topology` (plus the
  combined :func:`repro.network.dynamics.sliding_window_line` builder, which
  produces its own schedule);
* ``DYNAMICS`` -- transformations that add scripted churn to a base graph,
  wrapping :mod:`repro.network.dynamics` and adding generic variants
  (``rotating_shortcuts``, ``hub_failover``) that work on any base topology;
* ``DRIFTS`` -- the drift models of :mod:`repro.sim.drift`;
* ``DELAYS`` -- the delay models of :mod:`repro.sim.delay`;
* ``ALGORITHMS`` -- AOPT and the baselines of :mod:`repro.baselines`.

On top of those, ``SCENARIOS`` holds named end-to-end scenario builders that
return complete :class:`~repro.experiments.spec.ScenarioSpec` objects: the two
benchmark sweeps (``line_scaling``, ``end_to_end_insertion``) plus composite
scenarios the E1--E10 suite does not cover (``grid_periodic_churn``,
``random_connected_sliding_window``, ``star_hub_failover``,
``ring_sinusoidal_drift``).

:func:`build_scenario` materialises a spec into a graph, an algorithm factory
and a :class:`~repro.sim.runner.SimulationConfig`.  Any factory that accepts a
``seed`` argument but was not given one receives a seed derived from the
spec's content hash, so materialisation is deterministic everywhere.
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.hardware_only import hardware_only_factory
from ..fastsim.backend import BACKENDS, backend_names
from ..baselines.immediate_insertion import immediate_insertion_factory
from ..baselines.max_algorithm import max_propagation_factory
from ..baselines.threshold_gradient import threshold_gradient_factory
from ..core.algorithm import aopt_factory
from ..core import insertion as insertion_mod
from ..core.interfaces import AlgorithmFactory
from ..core.parameters import Parameters
from ..core.skew_estimates import suggest_global_skew_bound
from ..network import dynamics as net_dynamics
from ..network import topology as net_topology
from ..network.dynamic_graph import DynamicGraph, GraphError
from ..network.edge import EdgeParams, NodeId
from ..sim import delay as delay_mod
from ..sim import drift as drift_mod
from ..sim.runner import SimulationConfig, default_aopt_config, minimum_kappa
from .spec import ComponentSpec, ScenarioSpec, SpecError

#: Canonical benchmark constants shared with ``benchmarks/common.py``:
#: sigma = (1 - rho) * mu / (2 * rho) = 3.28 >= 3.
BENCHMARK_PARAMS: Dict[str, float] = {"rho": 0.015, "mu": 0.1}
BENCHMARK_EDGE: Dict[str, float] = {"epsilon": 1.0, "tau": 0.5, "delay": 2.0}
#: Constant-factor reduction of the insertion duration of equation (10); the
#: Theta(G/mu) scaling is preserved (see EXPERIMENTS.md).
BENCHMARK_INSERTION_SCALE = 0.02


class RegistryError(KeyError):
    """Raised when a registry lookup fails."""


class Registry:
    """A small name -> factory mapping with decorator-style registration."""

    def __init__(self, kind: str):
        self.kind = kind
        self._items: Dict[str, Callable] = {}

    def register(self, name: str, factory: Optional[Callable] = None):
        if factory is None:
            def decorator(fn):
                self.register(name, fn)
                return fn

            return decorator
        if name in self._items:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        self._items[name] = factory
        return factory

    def get(self, name: str) -> Callable:
        try:
            return self._items[name]
        except KeyError:
            known = ", ".join(sorted(self._items))
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {known}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._items)

    def __contains__(self, name: str) -> bool:
        return name in self._items


TOPOLOGIES = Registry("topology")
DYNAMICS = Registry("dynamics")
DRIFTS = Registry("drift")
DELAYS = Registry("delay")
ALGORITHMS = Registry("algorithm")
SCENARIOS = Registry("scenario")


def _call_with_optional_seed(fn: Callable, kwargs: Dict[str, Any], seed: int):
    """Inject a derived seed when the factory accepts one and none was given."""
    parameters = inspect.signature(fn).parameters
    if "seed" in parameters and "seed" not in kwargs:
        kwargs = dict(kwargs)
        kwargs["seed"] = seed % (2 ** 31)
    return fn(**kwargs)


# ----------------------------------------------------------------------
# Topologies: fn(edge_params, **args) -> DynamicGraph
# ----------------------------------------------------------------------
TOPOLOGIES.register("line", lambda edge, *, n: net_topology.line(n, edge))
TOPOLOGIES.register("ring", lambda edge, *, n: net_topology.ring(n, edge))
TOPOLOGIES.register("star", lambda edge, *, n: net_topology.star(n, edge))
TOPOLOGIES.register("complete", lambda edge, *, n: net_topology.complete(n, edge))
TOPOLOGIES.register(
    "grid", lambda edge, *, rows, cols: net_topology.grid(rows, cols, edge)
)
TOPOLOGIES.register(
    "binary_tree", lambda edge, *, depth: net_topology.binary_tree(depth, edge)
)


@TOPOLOGIES.register("random_tree")
def _random_tree(edge: EdgeParams, *, n: int, seed: int) -> DynamicGraph:
    return net_topology.random_tree(n, edge, seed=seed)


@TOPOLOGIES.register("random_connected")
def _random_connected(
    edge: EdgeParams, *, n: int, extra_edge_probability: float = 0.1, seed: int
) -> DynamicGraph:
    return net_topology.random_connected(
        n, extra_edge_probability, edge, seed=seed
    )


@TOPOLOGIES.register("sliding_window_line")
def _sliding_window_line(
    edge: EdgeParams, *, n: int, window: int = 2, shift_period: float, horizon: float
) -> DynamicGraph:
    return net_dynamics.sliding_window_line(
        n, window=window, shift_period=shift_period, horizon=horizon, params=edge
    )


# ----------------------------------------------------------------------
# Dynamics: fn(graph, edge_params, **args) -> (DynamicGraph, meta dict)
# ----------------------------------------------------------------------
@DYNAMICS.register("edge_insertion")
def _edge_insertion(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    u: NodeId,
    v: NodeId,
    insertion_time: float,
    detection_skew: float = 0.0,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    scenario = net_dynamics.with_edge_insertion(
        graph, u, v, insertion_time, params=edge, detection_skew=detection_skew
    )
    return scenario.graph, {
        "new_edge": scenario.new_edge,
        "insertion_time": insertion_time,
    }


@DYNAMICS.register("end_to_end_insertion")
def _end_to_end_insertion(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    insertion_time: float,
    detection_skew: float = 0.0,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    nodes = graph.nodes
    return _edge_insertion(
        graph,
        edge,
        u=nodes[0],
        v=nodes[-1],
        insertion_time=insertion_time,
        detection_skew=detection_skew,
    )


@DYNAMICS.register("periodic_churn")
def _periodic_churn(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    period: float = 25.0,
    up_fraction: float = 0.5,
    horizon: float,
    n_candidates: int = 4,
    seed: int,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """Random extra edges flapping on and off over an always-on base graph."""
    rng = random.Random(seed)
    nodes = graph.nodes
    non_edges = [
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1:]
        if not graph.has_edge(u, v)
    ]
    candidates = sorted(rng.sample(non_edges, min(n_candidates, len(non_edges))))
    churned = net_dynamics.periodic_churn(
        graph,
        candidates,
        period=period,
        up_fraction=up_fraction,
        horizon=horizon,
        params=edge,
        seed=rng.randrange(2 ** 30),
    )
    return churned, {"churn_candidates": candidates}


@DYNAMICS.register("rotating_shortcuts")
def _rotating_shortcuts(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    window: int = 3,
    shift_period: float,
    horizon: float,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """Generic sliding-window mobility on top of any base graph.

    Candidate shortcuts connect nodes whose positions in the node order are
    between 2 and ``window`` apart and that are not base edges; the active
    half of the candidate set rotates by one position every ``shift_period``
    (the mobility pattern of :func:`repro.network.dynamics.sliding_window_line`
    generalised to arbitrary always-connected base graphs).
    """
    if window < 2:
        raise GraphError("window must be at least 2 to create shortcuts")
    scenario = graph.copy()
    nodes = scenario.nodes
    shortcuts: List[Tuple[NodeId, NodeId]] = []
    for i in range(len(nodes)):
        for d in range(2, window + 1):
            if i + d < len(nodes) and not scenario.has_edge(nodes[i], nodes[i + d]):
                shortcuts.append((nodes[i], nodes[i + d]))
    if not shortcuts:
        return scenario, {"shortcut_count": 0}
    active = set(idx for idx in range(len(shortcuts)) if idx % 2 == 0)
    for idx in sorted(active):
        scenario.add_edge(*shortcuts[idx], edge)
    t = shift_period
    offset = 1
    while t <= horizon:
        new_active = set(
            (idx + offset) % len(shortcuts) for idx in range(0, len(shortcuts), 2)
        )
        for idx in sorted(active - new_active):
            scenario.schedule_edge_down(t, *shortcuts[idx])
        for idx in sorted(new_active - active):
            scenario.schedule_edge_up(t, *shortcuts[idx], params=edge)
        active = new_active
        offset += 1
        t += shift_period
    return scenario, {"shortcut_count": len(shortcuts)}


@DYNAMICS.register("hub_failover")
def _hub_failover(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    failover_time: float,
    overlap: float = 5.0,
    primary: Optional[NodeId] = None,
    backup: Optional[NodeId] = None,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """A hub hands its spokes over to a backup hub mid-run.

    At ``failover_time`` every leaf gains an edge to the backup hub; after an
    ``overlap`` grace period the primary hub drops its leaf edges.  The
    primary--backup edge is never touched, so the network stays connected
    throughout (the paper's connectivity assumption).
    """
    scenario = graph.copy()
    nodes = scenario.nodes
    if primary is None:
        primary = nodes[0]
    if backup is None:
        backup = nodes[1]
    if overlap <= 0.0:
        raise GraphError("overlap must be positive to preserve connectivity")
    if not scenario.has_edge(primary, backup):
        raise GraphError(
            f"hub_failover needs an edge between primary {primary} and "
            f"backup {backup} to keep the network connected"
        )
    for leaf in nodes:
        if leaf in (primary, backup):
            continue
        if not scenario.has_edge(backup, leaf):
            scenario.schedule_edge_up(failover_time, backup, leaf, params=edge)
        if scenario.has_edge(primary, leaf):
            scenario.schedule_edge_down(failover_time + overlap, primary, leaf)
    return scenario, {
        "failover_time": failover_time,
        "primary_hub": primary,
        "backup_hub": backup,
    }


# ----------------------------------------------------------------------
# Drift models: fn(rho, nodes, **args) -> DriftModel
# ----------------------------------------------------------------------
DRIFTS.register("none", lambda rho, nodes: drift_mod.NoDrift(rho))
DRIFTS.register(
    "sinusoidal",
    lambda rho, nodes, *, period=100.0: drift_mod.SinusoidalDrift(rho, period=period),
)


@DRIFTS.register("random_constant")
def _random_constant(rho: float, nodes, *, seed: int) -> drift_mod.DriftModel:
    return drift_mod.RandomConstantDrift(rho, nodes, seed=seed)


@DRIFTS.register("random_walk")
def _random_walk(
    rho: float, nodes, *, period: float = 10.0, step: Optional[float] = None, seed: int
) -> drift_mod.DriftModel:
    return drift_mod.RandomWalkDrift(rho, nodes, period=period, step=step, seed=seed)


@DRIFTS.register("two_group")
def _two_group(
    rho: float,
    nodes,
    *,
    swap_period: Optional[float] = None,
    fast: str = "upper",
) -> drift_mod.DriftModel:
    """Half-split two-group adversary; ``fast`` picks which half runs fast."""
    lower_half, upper_half = drift_mod.half_split(list(nodes))
    if fast == "upper":
        fast_nodes, slow_nodes = upper_half, lower_half
    elif fast == "lower":
        fast_nodes, slow_nodes = lower_half, upper_half
    else:
        raise SpecError(f"fast must be 'upper' or 'lower', got {fast!r}")
    return drift_mod.TwoGroupAdversary(
        rho, fast_nodes, slow_nodes, swap_period=swap_period
    )


@DRIFTS.register("ramp")
def _ramp(
    rho: float, nodes, *, reverse_period: Optional[float] = None
) -> drift_mod.DriftModel:
    return drift_mod.RampAdversary(rho, list(nodes), reverse_period=reverse_period)


# ----------------------------------------------------------------------
# Delay models: fn(**args) -> DelayModel
# ----------------------------------------------------------------------
DELAYS.register("zero", lambda: delay_mod.ZeroDelay())
DELAYS.register(
    "fixed_fraction",
    lambda *, fraction=0.5: delay_mod.FixedFractionDelay(fraction),
)
DELAYS.register(
    "directional",
    lambda *, slow_towards_higher=True: delay_mod.DirectionalDelay(slow_towards_higher),
)


@DELAYS.register("uniform")
def _uniform_delay(
    *, low_fraction: float = 0.0, high_fraction: float = 1.0, seed: int
) -> delay_mod.DelayModel:
    return delay_mod.UniformRandomDelay(low_fraction, high_fraction, seed=seed)


# ----------------------------------------------------------------------
# Algorithms: fn(graph, config, **args) -> (AlgorithmFactory, bound or None)
# ----------------------------------------------------------------------
def _aopt_like(
    graph: DynamicGraph,
    config: SimulationConfig,
    *,
    factory_fn,
    global_skew_bound: Optional[float] = None,
    insertion_scale: Optional[float] = None,
    immediate_insertion: bool = False,
) -> Tuple[AlgorithmFactory, float]:
    duration_fn = (
        insertion_mod.scaled_insertion_duration(insertion_scale)
        if insertion_scale is not None
        else None
    )
    aopt_config = default_aopt_config(
        graph,
        config,
        global_skew_bound=global_skew_bound,
        insertion_duration=duration_fn,
        immediate_insertion=immediate_insertion,
    )
    return factory_fn(aopt_config), aopt_config.global_skew.value(0.0)


@ALGORITHMS.register("aopt")
def _aopt(graph, config, **args):
    return _aopt_like(graph, config, factory_fn=aopt_factory, **args)


@ALGORITHMS.register("immediate_insertion")
def _immediate_insertion(graph, config, **args):
    args.setdefault("immediate_insertion", True)
    return _aopt_like(
        graph, config, factory_fn=immediate_insertion_factory, **args
    )


@ALGORITHMS.register("max_propagation")
def _max_propagation(graph, config):
    return max_propagation_factory(config.params.rho), None


@ALGORITHMS.register("threshold_gradient")
def _threshold_gradient(
    graph, config, *, threshold: Optional[float] = None, blocking: bool = True
):
    if threshold is None:
        # The Theta(sqrt(D))-sized threshold the single-level rule needs for
        # its own global-skew argument (Locher & Wattenhofer).
        kappa = minimum_kappa(graph, config.params)
        threshold = kappa * math.sqrt(graph.node_count) / 2.0
    return (
        threshold_gradient_factory(config.params, threshold, blocking=blocking),
        None,
    )


@ALGORITHMS.register("hardware_only")
def _hardware_only(graph, config):
    return hardware_only_factory(), None


#: Benchmark-suite algorithm labels accepted by the scenario builders.
ALGORITHM_ALIASES: Dict[str, str] = {
    "AOPT": "aopt",
    "ImmediateInsertion": "immediate_insertion",
    "MaxPropagation": "max_propagation",
    "ThresholdGradient": "threshold_gradient",
    "HardwareOnly": "hardware_only",
}


def resolve_algorithm_name(name: str) -> str:
    """Map a benchmark-style label (``"AOPT"``) to its registry name."""
    resolved = ALGORITHM_ALIASES.get(name, name)
    if resolved not in ALGORITHMS:
        raise RegistryError(
            f"unknown algorithm {name!r}; known: "
            + ", ".join(ALGORITHMS.names() + sorted(ALGORITHM_ALIASES))
        )
    return resolved


# ----------------------------------------------------------------------
# Materialisation
# ----------------------------------------------------------------------
@dataclass
class MaterialisedScenario:
    """A spec resolved into live objects, ready for the engine."""

    spec: ScenarioSpec
    graph: DynamicGraph
    base_edges: List[Tuple[NodeId, NodeId]]
    config: SimulationConfig
    algorithm_factory: AlgorithmFactory
    global_skew_bound: Optional[float]
    meta: Dict[str, Any] = field(default_factory=dict)


def build_graph(spec: ScenarioSpec) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """Build (and churn-schedule) the dynamic graph of a spec, plus metadata."""
    edge = EdgeParams(**spec.edge)
    seed = spec.base_seed()
    topology_fn = TOPOLOGIES.get(spec.topology.name)
    graph = _call_with_optional_seed(
        topology_fn, {"edge": edge, **spec.topology.args}, seed
    )
    meta: Dict[str, Any] = {}
    if spec.dynamics is not None:
        dynamics_fn = DYNAMICS.get(spec.dynamics.name)
        graph, dynamics_meta = _call_with_optional_seed(
            dynamics_fn, {"graph": graph, "edge": edge, **spec.dynamics.args}, seed + 1
        )
        meta.update(dynamics_meta)
    return graph, meta


def build_scenario(spec: ScenarioSpec) -> MaterialisedScenario:
    """Materialise a spec: graph, drift/delay models, config and algorithm."""
    if spec.backend not in BACKENDS:
        raise RegistryError(
            f"unknown backend {spec.backend!r}; known: "
            + ", ".join(backend_names())
        )
    params = Parameters(**spec.params)
    params.validate()
    seed = spec.base_seed()
    graph, meta = build_graph(spec)

    drift = None
    if spec.drift is not None:
        drift_fn = DRIFTS.get(spec.drift.name)
        drift = _call_with_optional_seed(
            drift_fn, {"rho": params.rho, "nodes": graph.nodes, **spec.drift.args},
            seed + 2,
        )
    delay = None
    if spec.delay is not None:
        delay_fn = DELAYS.get(spec.delay.name)
        delay = _call_with_optional_seed(delay_fn, dict(spec.delay.args), seed + 3)

    initial_logical = None
    if spec.initial_logical is not None:
        initial_logical = dict(spec.initial_logical)
    elif spec.initial_ramp_per_edge is not None:
        initial_logical = {
            node: spec.initial_ramp_per_edge * i
            for i, node in enumerate(graph.nodes)
        }

    sim_kwargs = dict(spec.sim)
    # The default delay model and some estimate strategies draw random
    # numbers; pin their seeds to the spec hash so every run of this spec is
    # bit-identical regardless of process or worker count.
    sim_kwargs.setdefault("delay_seed", (seed + 4) % (2 ** 31))
    sim_kwargs.setdefault("estimate_seed", (seed + 5) % (2 ** 31))
    if spec.trace_stride != 1:
        # Record every k-th sample; an observation detail, so it scales the
        # sample interval without touching the scenario identity (seeds).
        sim_kwargs["sample_interval"] = (
            float(sim_kwargs.get("sample_interval", 1.0)) * spec.trace_stride
        )
    config = SimulationConfig(
        params=params,
        drift=drift,
        delay=delay,
        initial_logical=initial_logical,
        **sim_kwargs,
    )

    algorithm_fn = ALGORITHMS.get(spec.algorithm.name)
    algorithm_factory, bound = algorithm_fn(graph, config, **spec.algorithm.args)

    base_edges = [(key.a, key.b) for key in graph.edges()]
    meta.update(spec.notes)
    meta.setdefault("label", spec.label)
    meta.setdefault("scenario_hash", spec.content_hash())
    if bound is not None:
        meta.setdefault("global_skew_bound", bound)
    return MaterialisedScenario(
        spec=spec,
        graph=graph,
        base_edges=base_edges,
        config=config,
        algorithm_factory=algorithm_factory,
        global_skew_bound=bound,
        meta=meta,
    )


# ----------------------------------------------------------------------
# Named end-to-end scenarios
# ----------------------------------------------------------------------
def scenario(name: str, **overrides: Any) -> ScenarioSpec:
    """Build the named scenario spec with builder-level overrides.

    ``backend``, ``trace_stride``, ``trace``, ``observers`` and
    ``until_stable`` are accepted as pseudo-overrides for every named
    scenario: they select execution and observation details (engine
    backend, trace decimation, trace keeping, streaming observer
    selection, watchdog early exit) without the individual builders having
    to know about execution concerns, so the CLI can say ``--set
    backend=vec``, sweep ``--grid backend=reference,fast,vec``, thin long
    traces with ``--set trace_stride=10``, run memory-bounded with
    ``--set trace=none``, or stop at stability with ``--until-stable``.
    """
    backend = overrides.pop("backend", None)
    trace_stride = overrides.pop("trace_stride", None)
    trace = overrides.pop("trace", None)
    observers = overrides.pop("observers", None)
    until_stable = overrides.pop("until_stable", None)
    spec = SCENARIOS.get(name)(**overrides)
    if backend is not None:
        spec = replace(spec, backend=str(backend))
    if trace_stride is not None:
        spec = replace(spec, trace_stride=trace_stride)
    if trace is not None:
        spec = replace(spec, trace=str(trace))
    if observers is not None:
        spec = replace(spec, observers=observers)
    if until_stable is not None:
        # No bool() coercion: the spec's own validation rejects non-bools
        # (a stringly "yes" must fail loudly, not truthy its way in).
        spec = replace(spec, until_stable=until_stable)
    return spec


def _bench_params() -> Parameters:
    return Parameters(**BENCHMARK_PARAMS)


def _bench_kappa(params: Optional[Parameters] = None) -> float:
    params = params or _bench_params()
    return params.kappa_for(BENCHMARK_EDGE["epsilon"], BENCHMARK_EDGE["tau"])


def _merge_sim(base: Dict[str, Any], sim: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    merged = dict(base)
    if sim:
        merged.update(sim)
    return merged


def _algorithm_component(algorithm: str, **aopt_args: Any) -> ComponentSpec:
    """Algorithm component with AOPT-family arguments applied when relevant.

    The composite scenarios give the AOPT family the benchmark insertion
    scale so scheduled edges finish inserting within the run; baselines take
    no arguments.
    """
    name = resolve_algorithm_name(algorithm)
    if name in ("aopt", "immediate_insertion"):
        args = {"insertion_scale": BENCHMARK_INSERTION_SCALE}
        args.update(aopt_args)
        return ComponentSpec(name, args)
    return ComponentSpec(name, {})


@SCENARIOS.register("line_scaling")
def _line_scaling_scenario(
    *,
    n: int = 8,
    algorithm: str = "AOPT",
    swap_period: float = 150.0,
    ramp_fraction: float = 0.95,
    duration: Optional[float] = None,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """The E1/E2/E3 sweep: a line fighting a swapping two-group adversary.

    The line starts from an adversarially pre-built ramp of roughly one
    ``kappa`` of skew per edge and is driven by a periodically swapping
    two-group drift adversary.
    """
    params = _bench_params()
    edge = EdgeParams(**BENCHMARK_EDGE)
    kappa = _bench_kappa(params)
    bound = suggest_global_skew_bound(net_topology.line(n, edge), params)
    return ScenarioSpec(
        label=f"line_scaling/n={n}/{algorithm}",
        topology=ComponentSpec("line", {"n": n}),
        drift=ComponentSpec("two_group", {"swap_period": swap_period}),
        algorithm=_algorithm_component(algorithm, global_skew_bound=bound),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration if duration is not None else 100.0 + 60.0 * n,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
        initial_ramp_per_edge=ramp_fraction * kappa,
        notes={"reference_global_skew_bound": bound},
    )


@SCENARIOS.register("end_to_end_insertion")
def _end_to_end_insertion_scenario(
    *,
    n: int = 10,
    algorithm: str = "AOPT",
    insertion_time: float = 30.0,
    ramp_fraction: float = 0.95,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """The E4/Theorem 8.1 scenario: a line whose endpoints become adjacent.

    The line starts from the pre-built ramp, so the two endpoints of the new
    edge carry skew proportional to the diameter when the edge appears.
    """
    params = _bench_params()
    edge = EdgeParams(**BENCHMARK_EDGE)
    kappa = _bench_kappa(params)
    ramp = ramp_fraction * kappa
    # The bound handed to the algorithm must dominate the pre-built skew
    # (assumption (6) of the paper).
    bound = max(
        suggest_global_skew_bound(net_topology.line(n, edge), params),
        1.1 * ramp * (n - 1),
    )
    insertion_span = BENCHMARK_INSERTION_SCALE * params.insertion_duration(bound)
    duration = insertion_time + 2.4 * insertion_span + 120.0
    return ScenarioSpec(
        label=f"end_to_end_insertion/n={n}/{algorithm}",
        topology=ComponentSpec("line", {"n": n}),
        dynamics=ComponentSpec(
            "end_to_end_insertion", {"insertion_time": insertion_time}
        ),
        drift=ComponentSpec("two_group", {}),
        algorithm=_algorithm_component(algorithm, global_skew_bound=bound),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
        initial_ramp_per_edge=ramp,
        notes={
            "global_skew_bound": bound,
            "insertion_span": insertion_span,
            "duration": duration,
        },
    )


@SCENARIOS.register("grid_periodic_churn")
def _grid_periodic_churn_scenario(
    *,
    rows: int = 4,
    cols: int = 4,
    algorithm: str = "AOPT",
    churn_period: float = 25.0,
    up_fraction: float = 0.5,
    n_candidates: int = 6,
    duration: float = 240.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """A grid whose diagonal shortcut edges flap on and off periodically.

    The grid backbone is never removed, so the network stays connected while
    the churn repeatedly shrinks and stretches effective distances.
    """
    return ScenarioSpec(
        label=f"grid_periodic_churn/{rows}x{cols}/{algorithm}",
        topology=ComponentSpec("grid", {"rows": rows, "cols": cols}),
        dynamics=ComponentSpec(
            "periodic_churn",
            {
                "period": churn_period,
                "up_fraction": up_fraction,
                "horizon": duration - churn_period,
                "n_candidates": n_candidates,
            },
        ),
        drift=ComponentSpec("two_group", {"swap_period": 80.0}),
        algorithm=_algorithm_component(algorithm),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
    )


@SCENARIOS.register("random_connected_sliding_window")
def _random_connected_sliding_window_scenario(
    *,
    n: int = 12,
    extra_edge_probability: float = 0.08,
    window: int = 3,
    shift_period: float = 20.0,
    algorithm: str = "AOPT",
    duration: float = 240.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """A random connected graph with a rotating window of shortcut edges.

    The mobility-flavoured shortcut rotation of the sliding-window line is
    applied on top of a random connected backbone, so estimate edges keep
    appearing and disappearing while connectivity is preserved.
    """
    return ScenarioSpec(
        label=f"random_connected_sliding_window/n={n}/{algorithm}",
        topology=ComponentSpec(
            "random_connected",
            {"n": n, "extra_edge_probability": extra_edge_probability},
        ),
        dynamics=ComponentSpec(
            "rotating_shortcuts",
            {"window": window, "shift_period": shift_period, "horizon": duration},
        ),
        drift=ComponentSpec("random_walk", {"period": 15.0}),
        algorithm=_algorithm_component(algorithm),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
    )


@SCENARIOS.register("star_hub_failover")
def _star_hub_failover_scenario(
    *,
    n: int = 10,
    failover_time: float = 60.0,
    overlap: float = 5.0,
    algorithm: str = "AOPT",
    duration: float = 200.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """A star whose hub hands every spoke over to a backup hub mid-run.

    Diameter-2 before and after the failover, but during the handover every
    leaf's only estimate path migrates from one hub to the other -- a burst of
    simultaneous insertions and removals.
    """
    return ScenarioSpec(
        label=f"star_hub_failover/n={n}/{algorithm}",
        topology=ComponentSpec("star", {"n": n}),
        dynamics=ComponentSpec(
            "hub_failover", {"failover_time": failover_time, "overlap": overlap}
        ),
        drift=ComponentSpec("two_group", {"swap_period": 60.0}),
        algorithm=_algorithm_component(algorithm),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
    )


@SCENARIOS.register("ring_sinusoidal_drift")
def _ring_sinusoidal_drift_scenario(
    *,
    n: int = 12,
    drift_period: float = 80.0,
    algorithm: str = "AOPT",
    duration: float = 240.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """A ring under smoothly varying, phase-shifted sinusoidal drift.

    The phase shift between neighbours creates a travelling wave of rate
    differences around the cycle -- a benign but non-trivial stress test for
    the gradient property on a topology with two disjoint paths per pair.
    """
    return ScenarioSpec(
        label=f"ring_sinusoidal_drift/n={n}/{algorithm}",
        topology=ComponentSpec("ring", {"n": n}),
        drift=ComponentSpec("sinusoidal", {"period": drift_period}),
        algorithm=_algorithm_component(algorithm),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
    )


@SCENARIOS.register("quickstart_line")
def _quickstart_line_scenario(
    *,
    n: int = 8,
    algorithm: str = "AOPT",
    duration: float = 200.0,
    dt: float = 0.05,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """The examples/quickstart.py scenario: AOPT on a small static line."""
    return ScenarioSpec(
        label=f"quickstart_line/n={n}/{algorithm}",
        topology=ComponentSpec("line", {"n": n}),
        drift=ComponentSpec("two_group", {}),
        algorithm=ComponentSpec(resolve_algorithm_name(algorithm), {}),
        params={"rho": 0.01, "mu": 0.1},
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
            sim,
        ),
    )


@SCENARIOS.register("line_broadcast")
def _line_broadcast_scenario(
    *,
    n: int = 8,
    algorithm: str = "AOPT",
    broadcast_interval: float = 1.0,
    swap_period: float = 150.0,
    ramp_fraction: float = 0.95,
    duration: Optional[float] = None,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """The line sweep with estimates carried by periodic clock broadcasts.

    Same adversary and pre-built ramp as ``line_scaling``, but the oracle
    estimate layer is replaced by the paper's message model: nodes broadcast
    their logical clock every ``broadcast_interval`` hardware time and
    neighbors extrapolate the last received value at their own hardware
    rate.  The benchmark family for the message-transport fast path.
    """
    base = _line_scaling_scenario(
        n=n,
        algorithm=algorithm,
        swap_period=swap_period,
        ramp_fraction=ramp_fraction,
        duration=duration,
        dt=dt,
        sim=_merge_sim(
            {
                "estimate_mode": "broadcast",
                "broadcast_interval": broadcast_interval,
            },
            sim,
        ),
    )
    return replace(base, label=f"line_broadcast/n={n}/{algorithm}")


@SCENARIOS.register("random_broadcast_delay_storm")
def _random_broadcast_delay_storm_scenario(
    *,
    n: int = 12,
    algorithm: str = "AOPT",
    broadcast_interval: float = 1.0,
    storm_period: float = 40.0,
    storm_width: float = 10.0,
    storm_factor: float = 4.0,
    duration: float = 240.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """Broadcast estimates on a churning random graph under delay storms.

    The ``random_connected_sliding_window`` backbone (rotating shortcut
    edges, random-walk drift) with broadcast-mode estimates and a
    ``delay_spike_storm`` wrapping a uniform random delay: periodic windows
    where message delays spike towards the bound, stressing the staleness
    term of the broadcast error bound while edges churn.
    """
    base = _random_connected_sliding_window_scenario(
        n=n,
        algorithm=algorithm,
        duration=duration,
        dt=dt,
        sim=_merge_sim(
            {
                "estimate_mode": "broadcast",
                "broadcast_interval": broadcast_interval,
            },
            sim,
        ),
    )
    return replace(
        base,
        label=f"random_broadcast_delay_storm/n={n}/{algorithm}",
        delay=ComponentSpec(
            "delay_spike_storm",
            {
                "inner": "uniform",
                "inner_args": {"low_fraction": 0.1, "high_fraction": 0.9},
                "period": storm_period,
                "width": storm_width,
                "factor": storm_factor,
            },
        ),
    )


@SCENARIOS.register("grid_broadcast_partition")
def _grid_broadcast_partition_scenario(
    *,
    rows: int = 3,
    cols: int = 3,
    algorithm: str = "AOPT",
    broadcast_interval: float = 1.0,
    split_time: float = 40.0,
    heal_time: float = 80.0,
    duration: float = 160.0,
    dt: float = 0.1,
    sim: Optional[Dict[str, Any]] = None,
) -> ScenarioSpec:
    """Broadcast estimates across a partition with lossy in-flight messages.

    A grid splits into two components and heals; messages in flight across
    severed edges are dropped (``drop_messages_on_edge_loss``) and the
    broadcast layer forgets the stored state of lost edges, so re-merged
    neighbors must re-learn each other's clocks from fresh broadcasts.
    Exercises the edge-loss ``forget`` path and the heap-transport fallback
    of the vectorized backends.
    """
    return ScenarioSpec(
        label=f"grid_broadcast_partition/{rows}x{cols}/{algorithm}",
        topology=ComponentSpec("grid", {"rows": rows, "cols": cols}),
        dynamics=ComponentSpec(
            "partition_then_heal",
            {"split_time": split_time, "heal_time": heal_time},
        ),
        drift=ComponentSpec("two_group", {"swap_period": 60.0}),
        delay=ComponentSpec(
            "uniform", {"low_fraction": 0.1, "high_fraction": 0.9}
        ),
        algorithm=_algorithm_component(algorithm),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=_merge_sim(
            {
                "dt": dt,
                "duration": duration,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
                "estimate_mode": "broadcast",
                "broadcast_interval": broadcast_interval,
                "drop_messages_on_edge_loss": True,
            },
            sim,
        ),
    )


# ----------------------------------------------------------------------
# Chaos fault family (repro.chaos)
#
# This block sits at the bottom of the module on purpose: repro.chaos
# imports nothing from repro.experiments at module level, but its loader
# needs the registries above to exist when packaged scenario files are
# registered, and the DYNAMICS/DELAYS wrappers below need repro.chaos.
# Keeping the cross-imports down here makes the cycle a no-op.
# ----------------------------------------------------------------------
from ..chaos import faults as _chaos_faults  # noqa: E402


@DYNAMICS.register("correlated_mass_churn")
def _correlated_mass_churn(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    horizon: float,
    k: int = 2,
    victims: Optional[Sequence[NodeId]] = None,
    period: float = 60.0,
    outage: float = 10.0,
    start: float = 20.0,
    seed: int,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """k nodes' edges drop and return together: a shared failure domain."""
    return _chaos_faults.correlated_mass_churn(
        graph,
        edge,
        horizon=horizon,
        k=k,
        victims=victims,
        period=period,
        outage=outage,
        start=start,
        seed=seed,
    )


@DYNAMICS.register("partition_then_heal")
def _partition_then_heal(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    split_time: float,
    heal_time: float,
    split_fraction: float = 0.5,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """The graph splits into two components and re-merges with built-up skew."""
    return _chaos_faults.partition_then_heal(
        graph,
        edge,
        split_time=split_time,
        heal_time=heal_time,
        split_fraction=split_fraction,
    )


@DYNAMICS.register("crash_restart")
def _crash_restart(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    crash_time: float,
    downtime: float = 10.0,
    node: Optional[NodeId] = None,
    reset_value: float = 0.0,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """One node loses its edges, forgets its state and rejoins from scratch."""
    return _chaos_faults.crash_restart(
        graph,
        edge,
        crash_time=crash_time,
        downtime=downtime,
        node=node,
        reset_value=reset_value,
    )


@DELAYS.register("delay_spike_storm")
def _delay_spike_storm(
    *,
    inner: str = "fixed_fraction",
    inner_args: Optional[Dict[str, Any]] = None,
    period: float = 40.0,
    width: float = 10.0,
    start: float = 0.0,
    factor: float = 4.0,
    edges: Optional[Sequence[Sequence[NodeId]]] = None,
    seed: int,
) -> delay_mod.DelayModel:
    """Windowed delay amplifier wrapping another registered delay model.

    ``inner``/``inner_args`` name the wrapped DELAYS entry; the spec-derived
    seed is forwarded to it when it takes one, so e.g. a uniform inner model
    stays deterministic per spec across backends.
    """
    inner_model = _call_with_optional_seed(
        DELAYS.get(inner), dict(inner_args or {}), seed
    )
    edge_pairs = (
        None if edges is None else [(pair[0], pair[1]) for pair in edges]
    )
    return delay_mod.DelaySpikeStorm(
        inner_model,
        period=period,
        width=width,
        start=start,
        factor=factor,
        edges=edge_pairs,
    )


from ..chaos.loader import register_packaged_scenarios as _register_chaos  # noqa: E402

#: Per-file error messages from loading the packaged chaos scenario pack at
#: import time (also mirrored in repro.chaos.LOAD_ERRORS).  A broken file
#: never breaks this import; `repro-experiments scenarios --validate` fails
#: on these.
CHAOS_LOAD_ERRORS: List[str] = _register_chaos()
