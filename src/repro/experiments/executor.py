"""Parallel sweep execution with an on-disk result cache.

The executor turns specs into runs:

* :func:`execute_spec` materialises one spec, runs the engine and returns a
  plain-JSON payload (summary + trace + metadata) -- the *only* thing that
  crosses process boundaries, so workers never pickle engines;
* :class:`ResultCache` is the content-hash-keyed on-disk store
  (``benchmarks/results/cache/`` by default) with atomic writes, stats and
  pruning -- shared by one-shot CLI runs and the long-running sweep service
  (:mod:`repro.service`), whose ``GET /results/{key}`` API serves these
  files verbatim;
* :func:`run_sweep` is THE sweep loop -- cache probe, vector-batch
  grouping, pool dispatch, backend fallback, cache store -- with an
  optional per-spec progress callback; :class:`ExperimentRunner` is its
  thin stateful driver.  Because every source of randomness is seeded from
  the spec hash (see :mod:`repro.experiments.registry`), a parallel sweep
  is bit-identical to a serial one, and a repeated sweep is served
  entirely from cache;
* :func:`expand_grid` expands a named scenario and a parameter grid into the
  cartesian product of specs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import multiprocessing
import os
import re
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import __version__ as _library_version
from ..fastsim.backend import backend_available, get_backend
from ..fastsim.engine import UnsupportedScenarioError
from ..metrics import ObserverReport
from ..telemetry.schema import sanitize_json
from ..telemetry.sweep import SweepTelemetry
from . import registry
from .results import (
    RunSummary,
    build_run_pipeline,
    summarize,
    trace_from_payload,
    trace_to_payload,
)
from .spec import ScenarioSpec

logger = logging.getLogger(__name__)

#: Bumped when the cache payload layout changes; mismatching entries are
#: treated as cache misses and overwritten.  Version 2 added the engine
#: backend to the cache key and payload (reference and fast results of the
#: same scenario are distinct cache entries that may never collide);
#: version 3 added ``trace_stride`` to the key and the serialised spec;
#: version 4 added the streaming ``observers`` report to the payload and
#: made the trace optional (``trace: none`` runs cache ``"trace": null``);
#: version 5 added ``until_stable`` to the serialised spec (with a
#: ``.stable`` key suffix), the ``stopped_early`` flag to the payload, and
#: strict-JSON serialisation (non-finite floats sanitised, ``allow_nan``
#: off).  Stale entries are simply re-run and overwritten.
CACHE_FORMAT_VERSION = 5

#: Key under which a worker reports an unsupported-backend failure instead
#: of raising (so one spec cannot poison a whole pool map).
_UNSUPPORTED_KEY = "__unsupported_backend__"

#: Backends whose cache-miss specs are grouped into lockstep batches.
BATCHABLE_BACKENDS = ("vec", "jit")

#: Minimum group size for which run batching beats per-run execution.
MIN_BATCH_SIZE = 2

_CACHE_DIR_ENV = "REPRO_EXPERIMENTS_CACHE_DIR"


class ExecutorError(RuntimeError):
    """Raised on invalid executor configuration."""


def default_cache_dir() -> Path:
    """Where results go when no cache directory is given explicitly.

    ``$REPRO_EXPERIMENTS_CACHE_DIR`` wins; otherwise
    ``benchmarks/results/cache`` when run from a checkout (the cwd has a
    ``benchmarks/`` directory), falling back to a per-user cache so an
    installed ``repro-experiments`` never litters arbitrary working
    directories with ``benchmarks/`` trees.
    """
    override = os.environ.get(_CACHE_DIR_ENV)
    if override:
        return Path(override)
    if Path("benchmarks").is_dir():
        return Path("benchmarks/results/cache")
    return Path.home() / ".cache" / "repro-experiments"


# ----------------------------------------------------------------------
# Single-spec execution (runs inside workers)
# ----------------------------------------------------------------------
def _meta_to_payload(meta: Dict[str, Any]) -> Dict[str, Any]:
    payload = dict(meta)
    if "new_edge" in payload:
        payload["new_edge"] = list(payload["new_edge"])
    if "churn_candidates" in payload:
        payload["churn_candidates"] = [list(e) for e in payload["churn_candidates"]]
    return payload


def _meta_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    meta = dict(payload)
    if "new_edge" in meta:
        meta["new_edge"] = tuple(meta["new_edge"])
    if "churn_candidates" in meta:
        meta["churn_candidates"] = [tuple(e) for e in meta["churn_candidates"]]
    return meta


def _attach_pipeline(
    spec: ScenarioSpec,
    scenario: "registry.MaterialisedScenario",
    engine,
    telemetry_sink: Optional[Callable[..., None]] = None,
):
    """Build the run's observer pipeline and hook it into the engine."""
    pipeline = build_run_pipeline(
        spec,
        graph=scenario.graph,
        base_edges=scenario.base_edges,
        config=scenario.config,
        meta=scenario.meta,
        global_skew_bound=scenario.global_skew_bound,
        sink=telemetry_sink,
    )
    engine.configure_recording(pipeline, record_trace=spec.trace == "full")
    return pipeline


def _payload_for(
    spec: ScenarioSpec,
    scenario: "registry.MaterialisedScenario",
    engine,
    trace,
    report: ObserverReport,
    wall_time: float,
) -> Dict[str, Any]:
    summary = summarize(
        spec=spec,
        report=report,
        graph=scenario.graph,
        base_edges=scenario.base_edges,
        config=scenario.config,
        meta=scenario.meta,
        global_skew_bound=scenario.global_skew_bound,
        engine=engine,
    )
    # Sanitized at the top level so the cached file is strict JSON even if
    # a summary or meta value is ever non-finite (finite floats pass
    # through bit-exact; ``ResultCache.store`` serialises with
    # ``allow_nan=False`` so a regression fails loudly instead of writing
    # an unparseable ``NaN`` token).
    return sanitize_json({
        "format": CACHE_FORMAT_VERSION,
        "library_version": _library_version,
        "spec": spec.to_dict(),
        "spec_hash": spec.content_hash(),
        "backend": spec.backend,
        "summary": summary.to_dict(),
        "meta": _meta_to_payload(scenario.meta),
        "observers": report.to_payload(),
        "trace": trace_to_payload(trace) if spec.trace == "full" else None,
        "wall_time": wall_time,
        "stopped_early": bool(getattr(engine, "stopped_early", False)),
    })


def execute_spec(
    spec: ScenarioSpec,
    telemetry_sink: Optional[Callable[..., None]] = None,
) -> Dict[str, Any]:
    """Run one spec to completion and return the cacheable payload.

    The spec's ``backend`` field picks the engine (reference, fast or vec);
    every backend receives the identical materialised scenario because seeds
    derive from the backend-independent content hash.  Summaries come from
    the streaming observer pipeline, which every engine feeds during the
    run; with ``trace: none`` the run keeps no samples at all.

    ``telemetry_sink`` (``sink(event_type, **fields)``) streams watchdog
    firings and progress events live during the run; it only observes and
    cannot change the payload.
    """
    started = time.perf_counter()
    scenario = registry.build_scenario(spec)
    engine = get_backend(spec.backend).build(
        scenario.graph, scenario.algorithm_factory, scenario.config
    )
    pipeline = _attach_pipeline(spec, scenario, engine, telemetry_sink)
    trace = engine.run(scenario.config.duration)
    report = pipeline.finalize()
    return _payload_for(
        spec, scenario, engine, trace, report, time.perf_counter() - started
    )


def batch_key(spec: ScenarioSpec) -> Optional[Tuple]:
    """Grouping key for run batching, or ``None`` when not batchable.

    Batched runs advance in lockstep, so they must share the step length,
    the duration and the estimate strategy (one strategy kernel per batch);
    everything else -- topology, size, drift, seeds -- may differ per run.
    """
    if spec.backend not in BATCHABLE_BACKENDS:
        return None
    sim = spec.sim
    return (
        spec.backend,
        sim.get("dt", 0.05),
        sim.get("duration", 100.0),
        sim.get("estimate_mode", "oracle"),
        sim.get("estimate_strategy", "zero"),
    )


def execute_specs_batched(
    specs: Sequence[ScenarioSpec],
    telemetry_sinks: Optional[Sequence[Optional[Callable[..., None]]]] = None,
) -> List[Dict[str, Any]]:
    """Run compatible vec specs as one lockstep batch (see ``batch_key``).

    Returns one payload per spec, bit-identical to :func:`execute_spec` of
    the same spec.  Raises :class:`UnsupportedScenarioError` if any spec
    cannot run on its backend -- callers group with ``batch_key`` and
    fall back to per-run execution on failure.  ``telemetry_sinks``, when
    given, pairs one (possibly ``None``) live sink with each spec.

    ``batch_key`` includes the backend, so every spec of a group shares
    one; the group runs on that backend's batch builder (``vec`` or
    ``jit`` -- the jit context fuses all runs of the batch into single
    compiled kernel invocations per segment).
    """
    if specs and specs[0].backend == "jit":
        from ..jitsim.engine import build_batch
    else:
        from ..vecsim.engine import build_batch

    started = time.perf_counter()
    if telemetry_sinks is None:
        telemetry_sinks = [None] * len(specs)
    scenarios = [registry.build_scenario(spec) for spec in specs]
    context = build_batch(
        [(sc.graph, sc.algorithm_factory, sc.config) for sc in scenarios]
    )
    pipelines = [
        _attach_pipeline(spec, sc, engine, sink)
        for spec, sc, engine, sink in zip(
            specs, scenarios, context.engines, telemetry_sinks
        )
    ]
    context.run_until(scenarios[0].config.duration)
    wall_time = (time.perf_counter() - started) / max(len(specs), 1)
    return [
        _payload_for(spec, sc, engine, engine.trace, pipeline.finalize(), wall_time)
        for spec, sc, engine, pipeline in zip(
            specs, scenarios, context.engines, pipelines
        )
    ]


def _pool_worker(spec_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (hence picklable) worker entry point.

    Unsupported-backend failures are reported as a marker payload instead of
    raised, so the parent can apply its fallback policy without losing the
    rest of the pool map.
    """
    try:
        return execute_spec(ScenarioSpec.from_dict(spec_payload))
    except UnsupportedScenarioError as exc:
        return {_UNSUPPORTED_KEY: str(exc)}


# ----------------------------------------------------------------------
# Runs and sweep bookkeeping
# ----------------------------------------------------------------------
@dataclass
class ExperimentRun:
    """One executed (or cache-served) spec: summary, report, trace, metadata.

    ``trace`` is ``None`` for ``trace: none`` runs -- the streaming
    ``report`` (an :class:`~repro.metrics.ObserverReport`) then carries
    everything the summary was computed from.
    """

    spec: ScenarioSpec
    summary: RunSummary
    trace: Any
    meta: Dict[str, Any]
    report: Optional[ObserverReport] = None
    from_cache: bool = False
    wall_time: float = 0.0
    #: Set when the spec's backend could not run this scenario and the
    #: executor fell back to ``reference`` (``spec.backend`` is then the
    #: backend that actually ran).
    requested_backend: Optional[str] = None
    #: Whether an armed watchdog ended the run before the full duration
    #: (``until_stable`` specs only; the report then covers the prefix up
    #: to the trip sample).
    stopped_early: bool = False

    @property
    def graph(self):
        """Rebuild the (pre-run) dynamic graph of this spec on demand."""
        return registry.build_graph(self.spec)[0]


@dataclass
class SweepStats:
    """How a batch of specs was satisfied."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    #: Of the executed specs, how many ran inside a vectorized run batch.
    batched: int = 0
    #: Specs whose backend could not run them and fell back to reference.
    fallbacks: int = 0
    #: Fallback counts keyed by the backend that was originally requested
    #: (e.g. ``{"jit": 2, "vec": 1}``), so jit fallbacks are reported
    #: distinctly from vec ones.
    fallback_backends: Dict[str, int] = field(default_factory=dict)
    #: Of the fallbacks, how many were broadcast-estimate-mode specs, keyed
    #: by origin backend.  Broadcast scenarios run on every backend now, so
    #: a broadcast fallback signals a scenario feature the accelerated
    #: engines still refuse (e.g. diameter tracking) -- worth reporting
    #: separately from plain oracle fallbacks.
    broadcast_fallbacks: Dict[str, int] = field(default_factory=dict)
    wall_time: float = 0.0

    def count_fallback(self, backend: str, estimate_mode: str = "oracle") -> None:
        """Record one reference fallback requested as ``backend``."""
        self.fallbacks += 1
        self.fallback_backends[backend] = self.fallback_backends.get(backend, 0) + 1
        if estimate_mode == "broadcast":
            self.broadcast_fallbacks[backend] = (
                self.broadcast_fallbacks.get(backend, 0) + 1
            )

    def describe(self) -> str:
        extras = []
        if self.batched:
            extras.append(f"{self.batched} in vector batches")
        if self.fallbacks:
            detail = ""
            if self.fallback_backends:
                parts = ", ".join(
                    f"{count} from {backend}"
                    for backend, count in sorted(self.fallback_backends.items())
                )
                detail = f" ({parts})"
            extras.append(f"{self.fallbacks} fell back to reference{detail}")
        if self.broadcast_fallbacks:
            parts = ", ".join(
                f"{count} from {backend}"
                for backend, count in sorted(self.broadcast_fallbacks.items())
            )
            extras.append(f"broadcast-mode fallbacks: {parts}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.total} spec(s): {self.cached} from cache, "
            f"{self.executed} executed in {self.wall_time:.1f}s{suffix}"
        )


def _run_from_payload(
    spec: ScenarioSpec,
    payload: Dict[str, Any],
    from_cache: bool,
    requested_backend: Optional[str] = None,
) -> ExperimentRun:
    return ExperimentRun(
        spec=spec,
        summary=RunSummary.from_dict(payload["summary"]),
        trace=trace_from_payload(payload.get("trace")),
        meta=_meta_from_payload(payload.get("meta", {})),
        report=ObserverReport.from_payload(payload.get("observers")),
        from_cache=from_cache,
        wall_time=payload.get("wall_time", 0.0),
        requested_backend=requested_backend,
        stopped_early=payload.get("stopped_early", False),
    )


# ----------------------------------------------------------------------
# The on-disk result cache
# ----------------------------------------------------------------------
#: Cache keys are the spec content hash plus dot-separated observation
#: suffixes (backend, stride, trace mode, observer digest); nothing else may
#: ever be fetched through :meth:`ResultCache.path_for_key`.
_CACHE_KEY_RE = re.compile(r"^[0-9a-f]{64}(\.[A-Za-z0-9_-]+)*$")

#: Suffix tokens that are observation details rather than a backend name
#: (see :meth:`ResultCache.key_for`): ``.s{k}`` strides, ``.notrace``,
#: ``.stable`` early exits and ``.obs-{digest}`` selections.
_NON_BACKEND_SUFFIX_RE = re.compile(r"^(s\d+|notrace|stable|obs-[0-9a-f]+)$")


class ResultCache:
    """Content-hash-keyed JSON result store shared by CLI and daemon.

    One file per (scenario hash, backend, trace stride, trace mode,
    observer selection); writes are atomic (unique temp file +
    ``os.replace``), so concurrent writers -- threads in one daemon process
    or independent processes sharing the directory -- can never tear an
    entry, only overwrite it with identical bytes.
    """

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    # -- keys -----------------------------------------------------------
    def key_for(self, spec: ScenarioSpec) -> str:
        """The cache key (file stem) of a spec -- also the public API key
        served by ``GET /results/{key}`` on the sweep service.

        The content hash is backend-independent (it is the scenario
        identity that seeds all randomness), so non-reference backends get
        their own file name and can never collide with reference results.
        The reference backend keeps the historical ``{hash}`` name so
        pre-backend cache entries are found, recognised as stale via the
        format version check, and overwritten instead of orphaned.
        Strided traces likewise get their own ``.s{k}`` suffix, traceless
        runs a ``.notrace`` suffix, watchdog-truncated runs a ``.stable``
        suffix, and non-default observer selections an ``.obs-{digest}``
        suffix -- all observation details are excluded from the content
        hash (same scenario, same seeds) but their cached results contain
        different payloads and must never collide.
        """
        name = spec.content_hash()
        if spec.backend != "reference":
            name += f".{spec.backend}"
        if spec.trace_stride != 1:
            name += f".s{spec.trace_stride}"
        if spec.trace != "full":
            name += ".notrace"
        if spec.until_stable:
            name += ".stable"
        if spec.observers:
            digest = hashlib.sha256(
                ",".join(spec.observers).encode("utf-8")
            ).hexdigest()[:12]
            name += f".obs-{digest}"
        return name

    def path_for(self, spec: ScenarioSpec) -> Path:
        return self.cache_dir / f"{self.key_for(spec)}.json"

    def path_for_key(self, key: str) -> Path:
        """Resolve a client-supplied cache key to its file, strictly.

        Raises :class:`ExecutorError` unless the key is a plain
        ``{hash}[.suffix...]`` stem -- path separators, ``..`` and anything
        else that could escape the cache directory never match.
        """
        if key.endswith(".json"):
            key = key[: -len(".json")]
        if not _CACHE_KEY_RE.match(key):
            raise ExecutorError(f"malformed cache key {key!r}")
        return self.cache_dir / f"{key}.json"

    @staticmethod
    def backend_of_key(key: str) -> str:
        """The backend a cache file stem belongs to (for stats breakdowns)."""
        parts = key.split(".")
        if len(parts) > 1 and not _NON_BACKEND_SUFFIX_RE.match(parts[1]):
            return parts[1]
        return "reference"

    # -- read / write ---------------------------------------------------
    def load(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        # Entries written by another library version may embody different
        # simulation semantics; treat them as misses.  (Within one version,
        # clear the cache manually after editing simulation code.)
        if payload.get("library_version") != _library_version:
            return None
        if payload.get("spec_hash") != spec.content_hash():
            return None
        if payload.get("backend", "reference") != spec.backend:
            return None
        if payload.get("spec", {}).get("trace_stride", 1) != spec.trace_stride:
            return None
        if payload.get("spec", {}).get("trace", "full") != spec.trace:
            return None
        if tuple(payload.get("spec", {}).get("observers", ())) != spec.observers:
            return None
        if payload.get("spec", {}).get("until_stable", False) != spec.until_stable:
            return None
        return payload

    def _tmp_path(self, path: Path) -> Path:
        # The temp name must be unique per *write*, not just per process:
        # two daemon threads storing the same spec share a pid, and with a
        # pid-only suffix one thread's os.replace would steal (or race) the
        # other's half-written file.  Keep the ``.tmp.`` infix so the
        # ``clear()`` sweep glob still matches leftovers.
        return path.with_suffix(f".tmp.{os.getpid()}-{uuid.uuid4().hex[:12]}")

    def store(self, spec: ScenarioSpec, payload: Dict[str, Any]) -> Path:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = self._tmp_path(path)
        # allow_nan=False: payloads are sanitized at build time, so a
        # non-finite float reaching this point is a bug -- fail loudly
        # rather than cache an unparseable NaN/Infinity token.
        tmp.write_text(json.dumps(payload, allow_nan=False))
        os.replace(tmp, path)
        return path

    # -- lifecycle ------------------------------------------------------
    def entries(self) -> List[Path]:
        if not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed.

        Also sweeps ``*.tmp.*`` leftovers from interrupted writes.
        """
        removed = 0
        if self.cache_dir.is_dir():
            for pattern in ("*.json", "*.tmp.*"):
                for entry in self.cache_dir.glob(pattern):
                    entry.unlink()
                    removed += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        """Entry count, total bytes and a per-backend entry breakdown."""
        by_backend: Dict[str, int] = {}
        total_bytes = 0
        count = 0
        for entry in self.entries():
            try:
                total_bytes += entry.stat().st_size
            except OSError:
                continue  # pruned/replaced underneath us
            count += 1
            backend = self.backend_of_key(entry.name[: -len(".json")])
            by_backend[backend] = by_backend.get(backend, 0) + 1
        return {
            "entries": count,
            "total_bytes": total_bytes,
            "by_backend": dict(sorted(by_backend.items())),
        }

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Expire cache entries; returns ``(removed, freed_bytes)``.

        ``older_than`` drops entries whose mtime is more than that many
        seconds in the past; ``max_bytes`` then evicts least-recently
        *written* entries (mtime order) until the directory fits.  Both the
        CLI (``repro-experiments cache``) and the daemon's periodic janitor
        use this, so a long-running service never grows without bound.
        """
        removed = 0
        freed = 0
        now = time.time() if now is None else now
        survivors: List[Tuple[float, int, Path]] = []
        for entry in self.entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            if older_than is not None and now - stat.st_mtime > older_than:
                try:
                    entry.unlink()
                except OSError:
                    continue
                removed += 1
                freed += stat.st_size
            else:
                survivors.append((stat.st_mtime, stat.st_size, entry))
        if max_bytes is not None:
            survivors.sort()  # oldest mtime first == LRU-by-write
            total = sum(size for _, size, _ in survivors)
            for _, size, entry in survivors:
                if total <= max_bytes:
                    break
                try:
                    entry.unlink()
                except OSError:
                    continue
                removed += 1
                freed += size
                total -= size
        return removed, freed


# ----------------------------------------------------------------------
# The reusable sweep loop (CLI and daemon both drive this)
# ----------------------------------------------------------------------
@dataclass
class SweepEvent:
    """One progress notification from :func:`run_sweep`.

    ``kind`` is ``"cached"`` (served from the cache), ``"start"`` (about to
    execute), ``"executed"`` (result computed and stored) or ``"fallback"``
    (the spec's backend could not run it and the reference backend answered
    instead -- ``spec`` is then the reference spec and ``from_cache`` tells
    whether the reference result was already cached).  ``index`` is the
    spec's position in the ``specs`` sequence passed to ``run_sweep``.
    """

    kind: str
    index: int
    spec: ScenarioSpec
    from_cache: bool = False
    batched: bool = False


#: Type of the optional ``run_sweep`` progress callback.
SweepCallback = Callable[[SweepEvent], None]


def _emit(on_event: Optional[SweepCallback], event: SweepEvent) -> None:
    if on_event is not None:
        on_event(event)


def _run_batched_groups(
    missing: List[Tuple[int, ScenarioSpec]],
    outcomes: Dict[int, Tuple[Dict[str, Any], bool]],
    batch: SweepStats,
    cache: ResultCache,
    use_cache: bool,
    on_event: Optional[SweepCallback],
    telemetry: Optional[SweepTelemetry] = None,
) -> List[Tuple[int, ScenarioSpec]]:
    """Execute batchable miss groups in lockstep; return the remainder.

    Groups that fail to build (unsupported scenario on the vec backend)
    fall through untouched so the per-run path can apply the reference
    fallback policy spec by spec.
    """
    groups: Dict[Tuple, List[Tuple[int, ScenarioSpec]]] = {}
    for index, spec in missing:
        key = batch_key(spec)
        # An unavailable backend (vec without numpy) skips batching so
        # the per-run path raises its clear BackendUnavailableError.
        if key is not None and backend_available(spec.backend):
            groups.setdefault(key, []).append((index, spec))
    handled = set()
    for key, group in groups.items():
        if len(group) < MIN_BATCH_SIZE:
            continue
        for index, spec in group:
            _emit(on_event, SweepEvent("start", index, spec, batched=True))
        sinks = None
        if telemetry is not None:
            sinks = [telemetry.run_sink(index, spec) for index, spec in group]
        try:
            payloads = execute_specs_batched([spec for _, spec in group], sinks)
        except UnsupportedScenarioError:
            if telemetry is not None:
                telemetry.forget_live(*[index for index, _ in group])
            continue
        for (index, spec), payload in zip(group, payloads):
            if use_cache:
                cache.store(spec, payload)
            outcomes[index] = (payload, False)
            batch.executed += 1
            batch.batched += 1
            handled.add(index)
            _emit(on_event, SweepEvent("executed", index, spec, batched=True))
    return [(index, spec) for index, spec in missing if index not in handled]


def _fallback_spec(
    spec: ScenarioSpec,
    reason: str,
    cache: ResultCache,
    use_cache: bool,
    strict_backend: bool,
) -> Tuple[Dict[str, Any], ScenarioSpec, bool]:
    """Re-run an unsupported spec on the reference backend (or raise).

    Returns ``(payload, reference_spec, from_cache)`` -- a repeated
    sweep finds the earlier fallback result in the reference cache.
    """
    if strict_backend:
        raise UnsupportedScenarioError(reason)
    logger.warning(
        "backend %r cannot run %s (%s); falling back to 'reference'",
        spec.backend,
        spec.label or spec.topology.name,
        reason,
    )
    fallback = spec.with_backend("reference")
    payload = cache.load(fallback) if use_cache else None
    if payload is not None:
        return payload, fallback, True
    return execute_spec(fallback), fallback, False


def run_sweep(
    specs: Sequence[ScenarioSpec],
    *,
    cache: Optional[ResultCache] = None,
    workers: int = 1,
    use_cache: bool = True,
    strict_backend: bool = False,
    batching: bool = True,
    on_event: Optional[SweepCallback] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> Tuple[List[ExperimentRun], SweepStats]:
    """Run a batch of specs, preserving input order.

    This is THE sweep loop -- cache probe, vector-batch grouping, pool
    dispatch, reference fallback, cache store -- shared verbatim by the CLI
    (:class:`ExperimentRunner`) and the sweep service daemon
    (:mod:`repro.service`); neither forks its own copy.

    Cache hits are served directly.  Of the misses, compatible specs on a
    batchable backend (``vec``) run as lockstep vector batches in-process;
    the rest execute inline (``workers == 1``) or on a ``multiprocessing``
    pool.  Results are written back to the cache before returning.  When a
    spec's backend raises :class:`UnsupportedScenarioError` it is re-run on
    the ``reference`` backend with a logged warning unless
    ``strict_backend`` makes that a hard error.

    ``on_event`` receives a :class:`SweepEvent` per spec transition (cache
    hit, execution start/finish, fallback), which is how the daemon streams
    per-spec job progress without the loop knowing anything about jobs.

    ``telemetry`` (a :class:`~repro.telemetry.SweepTelemetry`) additionally
    streams the versioned JSONL event schema: sweep brackets, per-run
    lifecycle events mapped from the same transitions, and ``watchdog_fired``
    / ``progress`` events *live* from inside in-process runs (inline and
    vector-batched executions get a per-run sink; pool workers, cache hits
    and fallbacks cannot carry one, so their watchdog firings are replayed
    from the result payload, flagged ``replayed``).
    """
    if workers < 1:
        raise ExecutorError(f"workers must be >= 1, got {workers}")
    cache = cache if cache is not None else ResultCache()
    started = time.perf_counter()
    batch = SweepStats(total=len(specs))
    if telemetry is not None:
        telemetry.sweep_started(len(specs))

    def notify(event: SweepEvent) -> None:
        _emit(on_event, event)
        if telemetry is not None:
            telemetry.on_sweep_event(event)

    outcomes: Dict[int, Tuple[Dict[str, Any], bool]] = {}
    run_specs: Dict[int, ScenarioSpec] = {}
    requested: Dict[int, str] = {}
    missing: List[Tuple[int, ScenarioSpec]] = []
    for index, spec in enumerate(specs):
        payload = cache.load(spec) if use_cache else None
        if payload is not None:
            outcomes[index] = (payload, True)
            batch.cached += 1
            notify(SweepEvent("cached", index, spec, from_cache=True))
            if telemetry is not None:
                telemetry.replay_watchdogs(index, spec, payload)
        else:
            missing.append((index, spec))

    if batching:
        missing = _run_batched_groups(
            missing, outcomes, batch, cache, use_cache, notify, telemetry
        )

    if missing:
        for index, spec in missing:
            notify(SweepEvent("start", index, spec))
        if workers > 1 and len(missing) > 1:
            with multiprocessing.Pool(min(workers, len(missing))) as pool:
                payloads = pool.map(
                    _pool_worker, [spec.to_dict() for _, spec in missing]
                )
        else:
            payloads = []
            for index, spec in missing:
                sink = None
                if telemetry is not None:
                    sink = telemetry.run_sink(index, spec)
                try:
                    if sink is not None:
                        payloads.append(execute_spec(spec, sink))
                    else:
                        payloads.append(execute_spec(spec))
                except UnsupportedScenarioError as exc:
                    if telemetry is not None:
                        telemetry.forget_live(index)
                    payloads.append({_UNSUPPORTED_KEY: str(exc)})
        for (index, spec), payload in zip(missing, payloads):
            from_cache = False
            fell_back = False
            if _UNSUPPORTED_KEY in payload:
                payload, spec, from_cache = _fallback_spec(
                    spec, payload[_UNSUPPORTED_KEY], cache, use_cache, strict_backend
                )
                run_specs[index] = spec
                requested[index] = specs[index].backend
                batch.count_fallback(
                    specs[index].backend,
                    specs[index].sim.get("estimate_mode", "oracle"),
                )
                fell_back = True
            if use_cache and not from_cache:
                cache.store(spec, payload)
            outcomes[index] = (payload, from_cache)
            if from_cache:
                batch.cached += 1
            else:
                batch.executed += 1
            notify(
                SweepEvent(
                    "fallback" if fell_back else "executed",
                    index,
                    spec,
                    from_cache=from_cache,
                )
            )
            if telemetry is not None:
                # No-op for runs that streamed live; pool workers, fallback
                # re-runs and late cache hits replay from the payload.
                telemetry.replay_watchdogs(index, spec, payload)

    batch.wall_time = time.perf_counter() - started
    if telemetry is not None:
        telemetry.sweep_finished(batch)
    runs = [
        _run_from_payload(
            run_specs.get(index, specs[index]),
            *outcomes[index],
            requested_backend=requested.get(index),
        )
        for index in range(len(specs))
    ]
    return runs, batch


class ExperimentRunner:
    """Run specs with on-disk caching and an optional worker pool.

    A thin, stateful driver of :func:`run_sweep`: it owns a
    :class:`ResultCache` and default execution settings, and ``stats``
    accumulates over the runner's lifetime; :meth:`run_all` also returns
    the stats of that one batch.  See :func:`run_sweep` for the sweep
    semantics (vector batching, reference fallback, ``strict_backend``).
    """

    def __init__(
        self,
        cache_dir: Optional[os.PathLike] = None,
        *,
        workers: int = 1,
        use_cache: bool = True,
        strict_backend: bool = False,
        batching: bool = True,
    ):
        if workers < 1:
            raise ExecutorError(f"workers must be >= 1, got {workers}")
        self.cache = ResultCache(cache_dir)
        self.workers = workers
        self.use_cache = use_cache
        self.strict_backend = strict_backend
        self.batching = batching
        self.stats = SweepStats()

    @property
    def cache_dir(self) -> Path:
        return self.cache.cache_dir

    # -- cache (compatibility delegates to the ResultCache) -------------
    def cache_path(self, spec: ScenarioSpec) -> Path:
        return self.cache.path_for(spec)

    def load_cached(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        return self.cache.load(spec)

    def store(self, spec: ScenarioSpec, payload: Dict[str, Any]) -> Path:
        return self.cache.store(spec, payload)

    def clear_cache(self) -> int:
        return self.cache.clear()

    # -- execution ------------------------------------------------------
    def run(self, spec: ScenarioSpec, *, workers: Optional[int] = None) -> ExperimentRun:
        return self.run_all([spec], workers=workers)[0][0]

    def run_all(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        workers: Optional[int] = None,
        telemetry: Optional[SweepTelemetry] = None,
    ) -> Tuple[List[ExperimentRun], SweepStats]:
        """Run a batch of specs through :func:`run_sweep`, preserving order."""
        runs, batch = run_sweep(
            specs,
            cache=self.cache,
            workers=self.workers if workers is None else workers,
            use_cache=self.use_cache,
            strict_backend=self.strict_backend,
            batching=self.batching,
            telemetry=telemetry,
        )
        self.stats.total += batch.total
        self.stats.cached += batch.cached
        self.stats.executed += batch.executed
        self.stats.batched += batch.batched
        self.stats.fallbacks += batch.fallbacks
        for backend, count in batch.fallback_backends.items():
            self.stats.fallback_backends[backend] = (
                self.stats.fallback_backends.get(backend, 0) + count
            )
        for backend, count in batch.broadcast_fallbacks.items():
            self.stats.broadcast_fallbacks[backend] = (
                self.stats.broadcast_fallbacks.get(backend, 0) + count
            )
        self.stats.wall_time += batch.wall_time
        return runs, batch


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def expand_grid(
    scenario_name: str,
    grid: Mapping[str, Iterable[Any]],
    *,
    base: Optional[Mapping[str, Any]] = None,
) -> List[ScenarioSpec]:
    """Cartesian product of builder arguments for a named scenario.

    ``expand_grid("line_scaling", {"n": [4, 8], "algorithm": ["AOPT",
    "MaxPropagation"]})`` yields four specs.  ``base`` supplies fixed builder
    arguments shared by every point of the grid.
    """
    keys = list(grid)
    value_lists = [list(grid[key]) for key in keys]
    for key, values in zip(keys, value_lists):
        if not values:
            raise ExecutorError(f"grid axis {key!r} has no values")
    specs = []
    for combo in itertools.product(*value_lists):
        kwargs = dict(base or {})
        kwargs.update(zip(keys, combo))
        specs.append(registry.scenario(scenario_name, **kwargs))
    return specs
