"""Compact, picklable run summaries extracted from streaming observers.

A :class:`RunSummary` carries every scalar the benchmark suite reports --
global/local skew statistics, convergence and stabilization times, violation
counts -- without holding on to the :class:`~repro.sim.engine.Engine` (whose
per-node algorithm objects, estimate layers and message queues dominate the
memory of a finished run).

Since the introduction of :mod:`repro.metrics`, every one of those scalars
is computed *during* the run by the streaming observer pipeline;
:func:`summarize` merely reads the finished
:class:`~repro.metrics.pipeline.ObserverReport`.  Callers that only have a
materialized trace (tests, notebooks, old cache tooling) can still pass
``trace=``: the same observers are replayed over the trace, producing a
bit-identical report -- the differential suite asserts streaming == replay
== the pre-refactor post-hoc computation on every backend.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..metrics import DEFAULT_OBSERVERS, ObserverReport, build_pipeline
from ..sim.trace import Trace, TraceSample

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RunSummary:
    """Scalar outcome of one simulation run (small, picklable, JSON-able)."""

    label: str
    spec_hash: str
    node_count: int
    base_edge_count: int
    sample_count: int
    duration: float
    # Global skew over the whole run.  Skew fields are ``None`` -- "not
    # measured" -- when the spec's observer selection excluded the backing
    # observer; with the default selection they are always floats.
    initial_global_skew: Optional[float]
    max_global_skew: Optional[float]
    final_global_skew: Optional[float]
    #: First time the global skew halves its initial value and stays halved.
    halving_time: Optional[float]
    # Local skew over the edges present at time zero.
    max_local_skew: Optional[float]
    # Steady state: the last quarter of the run.
    steady_global_skew: Optional[float]
    steady_local_skew: Optional[float]
    #: The bound G~ the algorithm was configured with (None for baselines).
    global_skew_bound: Optional[float]
    #: Gradient-bound violations (None when churn makes distances ambiguous).
    gradient_violations: Optional[int]
    #: Nodes whose neighbor levels break the Lemma 5.1 subset chain.
    broken_level_chains: Optional[int]
    # Edge-insertion scenarios (None elsewhere).
    event_time: Optional[float] = None
    skew_at_event: Optional[float] = None
    stabilized: Optional[bool] = None
    stabilization_time: Optional[float] = None
    post_event_local_skew: Optional[float] = None
    #: (node, sample) counts per algorithm mode (fast / slow).
    #: (Wall-clock time lives on the ExperimentRun, not here: summaries must
    #: be bit-identical between serial, parallel and cached executions.)
    mode_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSummary":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def stop_watchdog_for(spec, meta: Dict[str, Any]) -> str:
    """Which watchdog an ``until_stable`` run arms as its stop trigger.

    Insertion scenarios (``meta`` carries the event) wait for the
    post-insertion stabilization window to close; everything else waits for
    global-skew convergence (first halving of the initial skew).
    """
    if meta.get("insertion_time") is not None and meta.get("new_edge") is not None:
        return "watchdog_stabilization"
    return "watchdog_convergence"


def build_run_pipeline(
    spec, *, graph, base_edges, config, meta, global_skew_bound, sink=None
):
    """The streaming pipeline for one materialised scenario.

    Observer selection comes from ``spec.observers`` (empty = the standard
    :data:`~repro.metrics.DEFAULT_OBSERVERS` set backing
    :class:`RunSummary`); the final sample time is predicted from the
    simulation config so steady-window observers stream in constant memory.

    ``sink`` attaches a live telemetry sink (watchdog firings + periodic
    ``progress`` events).  For ``spec.until_stable`` runs the appropriate
    stop watchdog (see :func:`stop_watchdog_for`) is appended to the
    selection if absent and armed as the early-exit trigger -- the engines
    poll the pipeline's ``stop_requested`` after every step.
    """
    names = tuple(spec.observers or DEFAULT_OBSERVERS)
    stop_on = None
    if spec.until_stable:
        stop_on = stop_watchdog_for(spec, meta)
        if stop_on not in names:
            names = names + (stop_on,)
    progress_every = None
    if sink is not None:
        # ~10 progress events per run, at least one sample apart.
        expected = int(config.duration / max(config.sample_interval, config.dt))
        progress_every = max(1, expected // 10)
    return build_pipeline(
        names,
        graph=graph,
        base_edges=base_edges,
        params=config.params,
        meta=meta,
        global_skew_bound=global_skew_bound,
        has_dynamics=spec.dynamics is not None,
        duration=config.duration,
        dt=config.dt,
        sink=sink,
        stop_on=stop_on,
        progress_every=progress_every,
    )


def report_from_trace(
    spec, trace: Trace, *, graph, base_edges, config, meta, global_skew_bound
) -> ObserverReport:
    """Replay a materialized trace through the run's observer pipeline."""
    pipeline = build_pipeline(
        spec.observers or DEFAULT_OBSERVERS,
        graph=graph,
        base_edges=base_edges,
        params=config.params,
        meta=meta,
        global_skew_bound=global_skew_bound,
        has_dynamics=spec.dynamics is not None,
    )
    return pipeline.replay(trace)


def summarize(
    *,
    spec,
    graph,
    base_edges: List[Edge],
    config,
    meta: Dict[str, Any],
    global_skew_bound: Optional[float],
    report: Optional[ObserverReport] = None,
    trace: Optional[Trace] = None,
    engine=None,
) -> RunSummary:
    """Extract a :class:`RunSummary` from a finished run.

    Exactly one of ``report`` (the streaming pipeline's output -- the normal
    executor path) or ``trace`` (replayed through the same observers) must
    be provided.  ``engine`` is optional: when available (always, inside a
    worker) the per-node invariants that need live algorithm state are
    checked too.
    """
    if report is None:
        if trace is None:
            raise ValueError("summarize needs an ObserverReport or a trace")
        report = report_from_trace(
            spec,
            trace,
            graph=graph,
            base_edges=base_edges,
            config=config,
            meta=meta,
            global_skew_bound=global_skew_bound,
        )

    samples = report.sample_count
    # A missing observer payload means "not measured" (the spec selected a
    # subset of observers): the corresponding fields become None, never a
    # fabricated 0.0.
    global_payload = report.get("global_skew") or {}
    local_payload = report.get("local_skew") or {}
    convergence_payload = report.get("convergence_time") or {}
    modes_payload = report.get("mode_counts") or {}
    stabilization_payload = report.get("stabilization_window") or {}
    gradient_payload = report.get("gradient_bound_check") or {}

    gradient_violations: Optional[int] = None
    if gradient_payload.get("applicable") and samples:
        gradient_violations = gradient_payload.get("violations")

    event_time = meta.get("insertion_time")
    skew_at_event = stabilized = stabilization_time = None
    if stabilization_payload.get("applicable") and stabilization_payload.get("observed"):
        skew_at_event = stabilization_payload.get("skew_at_event")
        stabilized = stabilization_payload.get("stabilized")
        stabilization_time = stabilization_payload.get("elapsed_since_event")
    post_event = None
    if event_time is not None and "new_edge" in meta and samples:
        post_event = local_payload.get("post_event_max")

    broken_chains: Optional[int] = None
    if engine is not None:
        checks = []
        for node in engine.nodes:
            algorithm = engine.algorithm(node)
            levels = getattr(algorithm, "levels", None)
            if levels is not None and hasattr(levels, "subset_chain_holds"):
                checks.append(0 if levels.subset_chain_holds() else 1)
        if checks:
            broken_chains = sum(checks)

    return RunSummary(
        label=spec.label,
        spec_hash=spec.content_hash(),
        node_count=graph.node_count,
        base_edge_count=len(base_edges),
        sample_count=samples,
        duration=config.duration,
        initial_global_skew=global_payload.get("initial"),
        max_global_skew=global_payload.get("max"),
        final_global_skew=global_payload.get("final"),
        halving_time=convergence_payload.get("halving_time"),
        max_local_skew=local_payload.get("max"),
        steady_global_skew=global_payload.get("steady_max"),
        steady_local_skew=local_payload.get("steady_max"),
        global_skew_bound=global_skew_bound,
        gradient_violations=gradient_violations,
        broken_level_chains=broken_chains,
        event_time=event_time,
        skew_at_event=skew_at_event,
        stabilized=stabilized,
        stabilization_time=stabilization_time,
        post_event_local_skew=post_event,
        mode_counts=dict(modes_payload.get("counts", {})),
    )


# ----------------------------------------------------------------------
# Trace (de)serialisation for the on-disk cache
# ----------------------------------------------------------------------
def trace_to_payload(trace: Optional[Trace]) -> Optional[Dict[str, Any]]:
    """Plain-JSON representation of a trace (node ids become strings).

    ``None`` (a ``trace: none`` run) passes through unchanged.
    """
    if trace is None:
        return None
    return {
        "sample_interval": trace.sample_interval,
        "samples": [
            {
                "time": sample.time,
                "logical": {str(k): v for k, v in sample.logical.items()},
                "hardware": {str(k): v for k, v in sample.hardware.items()},
                "multipliers": {str(k): v for k, v in sample.multipliers.items()},
                "modes": {str(k): v for k, v in sample.modes.items()},
                "max_estimates": {
                    str(k): v for k, v in sample.max_estimates.items()
                },
                "diameter": sample.diameter,
            }
            for sample in trace
        ],
    }


def trace_from_payload(payload: Optional[Dict[str, Any]]) -> Optional[Trace]:
    """Rebuild a trace from :func:`trace_to_payload` output (None-safe)."""
    if payload is None:
        return None
    trace = Trace(sample_interval=payload.get("sample_interval", 1.0))
    for entry in payload.get("samples", []):
        trace.record(
            TraceSample(
                time=entry["time"],
                logical={int(k): v for k, v in entry["logical"].items()},
                hardware={int(k): v for k, v in entry["hardware"].items()},
                multipliers={int(k): v for k, v in entry["multipliers"].items()},
                modes={int(k): v for k, v in entry["modes"].items()},
                max_estimates={
                    int(k): v for k, v in entry["max_estimates"].items()
                },
                diameter=entry.get("diameter"),
            )
        )
    return trace
