"""Compact, picklable run summaries extracted from traces.

A :class:`RunSummary` carries every scalar the benchmark suite reports --
global/local skew statistics, convergence and stabilization times, violation
counts -- without holding on to the :class:`~repro.sim.engine.Engine` (whose
per-node algorithm objects, estimate layers and message queues dominate the
memory of a finished run).  Workers in the sweep executor therefore return a
``RunSummary`` plus the (plain-data) :class:`~repro.sim.trace.Trace`, both of
which serialise to JSON for the on-disk cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import gradient, skew, stabilization
from ..sim.runner import minimum_kappa
from ..sim.trace import Trace, TraceSample

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RunSummary:
    """Scalar outcome of one simulation run (small, picklable, JSON-able)."""

    label: str
    spec_hash: str
    node_count: int
    base_edge_count: int
    sample_count: int
    duration: float
    # Global skew over the whole trace.
    initial_global_skew: float
    max_global_skew: float
    final_global_skew: float
    #: First time the global skew halves its initial value and stays halved.
    halving_time: Optional[float]
    # Local skew over the edges present at time zero.
    max_local_skew: float
    # Steady state: the last quarter of the run.
    steady_global_skew: float
    steady_local_skew: float
    #: The bound G~ the algorithm was configured with (None for baselines).
    global_skew_bound: Optional[float]
    #: Gradient-bound violations (None when churn makes distances ambiguous).
    gradient_violations: Optional[int]
    #: Nodes whose neighbor levels break the Lemma 5.1 subset chain.
    broken_level_chains: Optional[int]
    # Edge-insertion scenarios (None elsewhere).
    event_time: Optional[float] = None
    skew_at_event: Optional[float] = None
    stabilized: Optional[bool] = None
    stabilization_time: Optional[float] = None
    post_event_local_skew: Optional[float] = None
    #: (node, sample) counts per algorithm mode (fast / slow).
    #: (Wall-clock time lives on the ExperimentRun, not here: summaries must
    #: be bit-identical between serial, parallel and cached executions.)
    mode_counts: Dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSummary":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def summarize(
    *,
    spec,
    trace: Trace,
    graph,
    base_edges: List[Edge],
    config,
    meta: Dict[str, Any],
    global_skew_bound: Optional[float],
    engine=None,
) -> RunSummary:
    """Extract a :class:`RunSummary` from a finished run.

    ``engine`` is optional: when available (always, inside a worker) the
    per-node invariants that need live algorithm state are checked too.
    """
    initial = trace.first().global_skew() if len(trace) else 0.0
    final = trace.final().global_skew() if len(trace) else 0.0
    halving_time = None
    if initial > 0.0:
        halving_time = stabilization.global_skew_convergence_time(
            trace, bound=initial / 2.0
        )
    steady_start, steady_end = (0.0, 0.0)
    if len(trace):
        steady_start, steady_end = skew.steady_state_window(trace, fraction=0.25)

    gradient_violations: Optional[int] = None
    if spec.dynamics is None and global_skew_bound is not None and len(trace):
        gradient_violations = len(
            gradient.check_trace(trace, graph, global_skew_bound, config.params)
        )

    event_time = meta.get("insertion_time")
    skew_at_event = stabilized = stabilization_time = post_event = None
    if event_time is not None and "new_edge" in meta and len(trace):
        u, v = meta["new_edge"]
        criterion = 2.0 * minimum_kappa(graph, config.params)
        measurement = stabilization.stabilization_time(
            trace, u, v, bound=criterion, event_time=event_time
        )
        skew_at_event = trace.sample_at(event_time).skew(u, v)
        stabilized = measurement.stabilized
        stabilization_time = measurement.elapsed_since_event
        post_event = skew.max_local_skew(trace, base_edges, start=event_time)

    broken_chains: Optional[int] = None
    if engine is not None:
        checks = []
        for node in engine.nodes:
            algorithm = engine.algorithm(node)
            levels = getattr(algorithm, "levels", None)
            if levels is not None and hasattr(levels, "subset_chain_holds"):
                checks.append(0 if levels.subset_chain_holds() else 1)
        if checks:
            broken_chains = sum(checks)

    return RunSummary(
        label=spec.label,
        spec_hash=spec.content_hash(),
        node_count=graph.node_count,
        base_edge_count=len(base_edges),
        sample_count=len(trace),
        duration=config.duration,
        initial_global_skew=initial,
        max_global_skew=trace.max_global_skew(),
        final_global_skew=final,
        halving_time=halving_time,
        max_local_skew=skew.max_local_skew(trace, base_edges),
        steady_global_skew=skew.max_global_skew(trace, start=steady_start),
        steady_local_skew=skew.max_local_skew(trace, base_edges, start=steady_start),
        global_skew_bound=global_skew_bound,
        gradient_violations=gradient_violations,
        broken_level_chains=broken_chains,
        event_time=event_time,
        skew_at_event=skew_at_event,
        stabilized=stabilized,
        stabilization_time=stabilization_time,
        post_event_local_skew=post_event,
        mode_counts=trace.mode_counts(),
    )


# ----------------------------------------------------------------------
# Trace (de)serialisation for the on-disk cache
# ----------------------------------------------------------------------
def trace_to_payload(trace: Trace) -> Dict[str, Any]:
    """Plain-JSON representation of a trace (node ids become strings)."""
    return {
        "sample_interval": trace.sample_interval,
        "samples": [
            {
                "time": sample.time,
                "logical": {str(k): v for k, v in sample.logical.items()},
                "hardware": {str(k): v for k, v in sample.hardware.items()},
                "multipliers": {str(k): v for k, v in sample.multipliers.items()},
                "modes": {str(k): v for k, v in sample.modes.items()},
                "max_estimates": {
                    str(k): v for k, v in sample.max_estimates.items()
                },
                "diameter": sample.diameter,
            }
            for sample in trace
        ],
    }


def trace_from_payload(payload: Dict[str, Any]) -> Trace:
    """Rebuild a trace from :func:`trace_to_payload` output."""
    trace = Trace(sample_interval=payload.get("sample_interval", 1.0))
    for entry in payload.get("samples", []):
        trace.record(
            TraceSample(
                time=entry["time"],
                logical={int(k): v for k, v in entry["logical"].items()},
                hardware={int(k): v for k, v in entry["hardware"].items()},
                multipliers={int(k): v for k, v in entry["multipliers"].items()},
                modes={int(k): v for k, v in entry["modes"].items()},
                max_estimates={
                    int(k): v for k, v in entry["max_estimates"].items()
                },
                diameter=entry.get("diameter"),
            )
        )
    return trace
