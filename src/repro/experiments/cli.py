"""Command-line interface for the experiments subsystem.

::

    python -m repro.experiments list
    python -m repro.experiments run line_scaling --set n=8
    python -m repro.experiments run line_scaling --set n=256 --set backend=fast
    python -m repro.experiments sweep line_scaling --grid n=4,8,16 \\
        --grid algorithm=AOPT,MaxPropagation --workers 4
    python -m repro.experiments bench --sizes 64,256,1024
    python -m repro.experiments serve --port 8765        # sweep service daemon
    python -m repro.experiments cache --prune-older-than 86400

``--set key=value`` passes builder arguments to the named scenario; dotted
keys populate nested mappings (``--set sim.duration=40`` shrinks the run).
``--grid key=v1,v2,...`` adds a sweep axis; the sweep runs the cartesian
product of all axes.  Values are parsed as Python literals when possible and
fall back to strings.

Results are cached under ``benchmarks/results/cache/`` (override with
``--cache-dir`` or ``$REPRO_EXPERIMENTS_CACHE_DIR``); a repeated sweep is
served entirely from cache.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..analysis import report
from ..fastsim.backend import BackendError, backend_available, backend_names
from ..fastsim.engine import UnsupportedScenarioError
from ..metrics import MetricsError
from . import bench as bench_mod
from . import executor, registry


class CliError(Exception):
    """A user-input problem (bad scenario arguments), reported without a traceback."""


def _parse_value(text: str) -> Any:
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _assign(target: Dict[str, Any], dotted_key: str, value: Any) -> None:
    parts = dotted_key.split(".")
    for part in parts[:-1]:
        target = target.setdefault(part, {})
        if not isinstance(target, dict):
            raise argparse.ArgumentTypeError(
                f"cannot nest into non-mapping override {part!r}"
            )
    target[parts[-1]] = value


def _parse_overrides(items: Optional[Sequence[str]]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for item in items or []:
        if "=" not in item:
            raise argparse.ArgumentTypeError(
                f"--set expects key=value, got {item!r}"
            )
        key, _, raw = item.partition("=")
        _assign(overrides, key.strip(), _parse_value(raw.strip()))
    return overrides


def _parse_grid(items: Optional[Sequence[str]]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for item in items or []:
        if "=" not in item:
            raise argparse.ArgumentTypeError(
                f"--grid expects key=v1,v2,..., got {item!r}"
            )
        key, _, raw = item.partition("=")
        grid[key.strip()] = [_parse_value(v.strip()) for v in raw.split(",") if v.strip()]
    return grid


def _fmt(value: Any) -> Any:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return value


def _summary_table(title: str, runs: Sequence[executor.ExperimentRun]) -> report.Table:
    table = report.Table(
        title,
        [
            "label",
            "hash",
            "nodes",
            "init gskew",
            "max gskew",
            "final gskew",
            "max lskew",
            "stab time",
            "violations",
            "cached",
        ],
    )
    for run in runs:
        summary = run.summary
        table.add_row(
            summary.label or run.spec.topology.name,
            run.spec.short_hash(),
            summary.node_count,
            _fmt(summary.initial_global_skew),
            _fmt(summary.max_global_skew),
            _fmt(summary.final_global_skew),
            _fmt(summary.max_local_skew),
            _fmt(summary.stabilization_time),
            _fmt(summary.gradient_violations),
            _fmt(run.from_cache),
        )
    return table


def _make_runner(args: argparse.Namespace) -> executor.ExperimentRunner:
    return executor.ExperimentRunner(
        cache_dir=args.cache_dir,
        workers=args.workers,
        use_cache=not args.no_cache,
        strict_backend=getattr(args, "strict_backend", False),
    )


def _emit_runs(
    args: argparse.Namespace,
    title: str,
    runs: Sequence[executor.ExperimentRun],
    stats: executor.SweepStats,
) -> None:
    if args.json:
        print(
            json.dumps(
                {
                    "runs": [
                        {
                            "spec": run.spec.to_dict(),
                            "spec_hash": run.spec.content_hash(),
                            "summary": run.summary.to_dict(),
                            "from_cache": run.from_cache,
                        }
                        for run in runs
                    ],
                    "stats": {
                        "total": stats.total,
                        "cached": stats.cached,
                        "executed": stats.executed,
                        "wall_time": stats.wall_time,
                    },
                },
                indent=2,
            )
        )
        return
    print("\n" + _summary_table(title, runs).render() + "\n")
    print(stats.describe())


def cmd_list(args: argparse.Namespace) -> int:
    print("scenarios:")
    for name in registry.SCENARIOS.names():
        doc = (registry.SCENARIOS.get(name).__doc__ or "").strip().splitlines()
        blurb = doc[0] if doc else ""
        print(f"  {name:32s} {blurb}")
    print(f"topologies: {', '.join(registry.TOPOLOGIES.names())}")
    print(f"dynamics:   {', '.join(registry.DYNAMICS.names())}")
    print(f"drifts:     {', '.join(registry.DRIFTS.names())}")
    print(f"delays:     {', '.join(registry.DELAYS.names())}")
    print(
        f"algorithms: {', '.join(registry.ALGORITHMS.names())} "
        f"(aliases: {', '.join(sorted(registry.ALGORITHM_ALIASES))})"
    )
    backends = []
    for name in backend_names():
        if backend_available(name):
            if name == "jit":
                from ..jitsim import available_provider_names

                providers = "/".join(available_provider_names())
                backends.append(f"{name} (provider: {providers})")
            else:
                backends.append(name)
        else:
            backends.append(f"{name} [unavailable: pip install 'repro[{name}]']")
    print(f"backends:   {', '.join(backends)} (--set backend=...)")
    from ..metrics import DEFAULT_OBSERVERS, observer_names

    tagged = [
        f"{name}*" if name in DEFAULT_OBSERVERS else name
        for name in observer_names()
    ]
    print(
        f"observers:  {', '.join(tagged)} "
        "(* = default set; --observers a,b,... and --trace none)"
    )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from ..chaos import scenario_files, validate_pack

    extra_dirs = list(args.dir or [])
    if args.validate:
        report_obj = validate_pack(extra_dirs)
        if args.json:
            print(json.dumps(report_obj.to_dict(), indent=2))
        else:
            for line in report_obj.describe():
                print(line)
        if not report_obj.ok:
            raise CliError(
                f"scenario lint failed with {report_obj.problem_count} problem(s)"
            )
        return 0
    files, errors = scenario_files(extra_dirs)
    if args.json:
        print(
            json.dumps(
                {
                    "scenarios": [
                        {
                            "name": sf.name,
                            "family": sf.family,
                            "description": sf.description,
                            "path": sf.path,
                            "spec_hash": sf.spec.content_hash(),
                            "expect": dict(sf.expect),
                        }
                        for sf in files
                    ],
                    "errors": list(errors),
                },
                indent=2,
            )
        )
    else:
        by_family: Dict[str, List[Any]] = {}
        for sf in files:
            by_family.setdefault(sf.family, []).append(sf)
        for family in sorted(by_family):
            print(f"{family}:")
            for sf in sorted(by_family[family], key=lambda s: s.name):
                print(f"  {sf.name:36s} {sf.description}")
        print(
            f"{len(files)} scenario files "
            "(run with `repro-experiments run <name>`; lint with "
            "`scenarios --validate`)"
        )
        for message in errors:
            print(f"error: {message}", file=sys.stderr)
    if errors:
        raise CliError(f"{len(errors)} scenario file(s) failed to load")
    return 0


def _check_user_input(fn, *fn_args, **fn_kwargs):
    """Call a spec-construction/validation function with user-friendly errors.

    Only spec construction and materialisation are wrapped: bad builder
    arguments (wrong name, wrong type, unknown keyword) become a one-line
    ``error:``, while genuine bugs during simulation execution still surface
    with a full traceback.
    """
    try:
        return fn(*fn_args, **fn_kwargs)
    except (ValueError, TypeError) as exc:
        raise CliError(str(exc)) from exc


def _validate_specs(specs) -> None:
    """Materialise each spec once (no simulation) so bad arguments fail fast."""
    from ..metrics import OBSERVERS, observer_names

    for spec in specs:
        _check_user_input(registry.build_scenario, spec)
        for name in spec.observers:
            if name not in OBSERVERS:
                raise CliError(
                    f"unknown observer {name!r}; known: "
                    + ", ".join(observer_names())
                )


def _apply_observation_flags(args: argparse.Namespace, overrides: Dict[str, Any]) -> None:
    """Fold ``--observers`` / ``--trace`` / ``--until-stable`` into the
    pseudo-override mapping."""
    if getattr(args, "observers", None):
        overrides["observers"] = tuple(
            name.strip() for name in args.observers.split(",") if name.strip()
        )
    if getattr(args, "trace", None):
        overrides["trace"] = args.trace
    if getattr(args, "until_stable", False):
        overrides["until_stable"] = True


class _Telemetry:
    """Per-command telemetry wiring: ``--telemetry FILE`` or disabled.

    Context manager so the JSONL file is flushed and closed even when the
    sweep raises; ``emitter`` is ``None`` when the flag was not given.
    """

    def __init__(self, args: argparse.Namespace):
        self._path = getattr(args, "telemetry", None)
        self._log = None
        self.emitter = None

    def __enter__(self) -> "_Telemetry":
        if self._path:
            from ..telemetry import JsonlLog, SweepTelemetry

            try:
                self._log = JsonlLog(self._path)
            except OSError as exc:
                raise CliError(f"cannot open --telemetry file {self._path!r}: {exc}")
            self.emitter = SweepTelemetry(self._log.write_record)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._log is not None:
            self._log.close()


def cmd_run(args: argparse.Namespace) -> int:
    overrides = _parse_overrides(args.set)
    _apply_observation_flags(args, overrides)
    spec = _check_user_input(registry.scenario, args.scenario, **overrides)
    _validate_specs([spec])
    runner = _make_runner(args)
    with _Telemetry(args) as telemetry:
        runs, stats = runner.run_all([spec], telemetry=telemetry.emitter)
    _emit_runs(args, f"run: {spec.label or args.scenario}", runs, stats)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    overrides = _parse_overrides(args.set)
    _apply_observation_flags(args, overrides)
    grid = _parse_grid(args.grid)
    if not grid:
        raise argparse.ArgumentTypeError("sweep needs at least one --grid axis")
    specs = _check_user_input(executor.expand_grid, args.scenario, grid, base=overrides)
    _validate_specs(specs)
    runner = _make_runner(args)
    with _Telemetry(args) as telemetry:
        runs, stats = runner.run_all(specs, telemetry=telemetry.emitter)
    axes = " x ".join(f"{key}({len(values)})" for key, values in grid.items())
    _emit_runs(args, f"sweep: {args.scenario} over {axes}", runs, stats)
    return 0


def _parse_csv(text: str, convert=str) -> list:
    try:
        return [convert(item.strip()) for item in text.split(",") if item.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _load_compare_baseline(args: argparse.Namespace) -> Optional[dict]:
    """Read the ``--compare`` baseline up front so typos fail in
    milliseconds instead of after the timing sweep."""
    if not args.compare:
        return None
    try:
        with open(args.compare) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise CliError(f"cannot read --compare baseline {args.compare!r}: {exc}")


def _bench_regression_check(
    args: argparse.Namespace, baseline: Optional[dict], payload: dict
) -> int:
    """Apply ``--compare`` against a committed perf-trajectory file."""
    if baseline is None:
        return 0
    try:
        regressions = bench_mod.compare_bench_payloads(
            baseline, payload, threshold=args.compare_threshold
        )
    except bench_mod.BenchError as exc:
        raise CliError(str(exc)) from exc
    if not regressions:
        print(
            f"no regressions against {args.compare} "
            f"(threshold {args.compare_threshold:.0%})",
            file=sys.stderr,
        )
        return 0
    for item in regressions:
        print(
            f"regression: {item['backend']} on {item['topology']}/n={item['n']}: "
            f"{item['current_seconds']:.3f}s vs baseline "
            f"{item['baseline_seconds']:.3f}s ({item['ratio']:.2f}x)",
            file=sys.stderr,
        )
    return 3


def cmd_bench(args: argparse.Namespace) -> int:
    sizes = _parse_csv(args.sizes, int)
    topologies = _parse_csv(args.topologies)
    backends = _parse_csv(args.backends)
    if not sizes or not topologies:
        raise argparse.ArgumentTypeError("bench needs at least one size and topology")
    # Validate the grid up front so bad arguments fail with a one-line
    # error; the simulation itself then runs unwrapped, so genuine engine
    # bugs still surface with a full traceback.
    _check_user_input(
        bench_mod.validate_bench_config,
        sizes=sizes,
        topologies=topologies,
        duration=args.duration,
        dt=args.dt,
        repeats=args.repeats,
        backends=backends,
        trace=args.trace,
        estimate_mode=args.estimate_mode,
        float32=args.float32,
    )
    baseline = _load_compare_baseline(args)
    payload = bench_mod.run_backend_bench(
        sizes=sizes,
        topologies=topologies,
        duration=args.duration,
        dt=args.dt,
        repeats=args.repeats,
        backends=backends,
        check_equivalence=not args.no_check,
        trace=args.trace,
        measure_memory=args.memory,
        estimate_mode=args.estimate_mode,
        broadcast_interval=args.broadcast_interval,
        float32=args.float32,
    )
    if args.output:
        path = bench_mod.write_bench_json(payload, args.output)
        print(f"wrote {path}", file=sys.stderr)
    status = _bench_regression_check(args, baseline, payload)
    if args.json:
        print(json.dumps(payload, indent=2))
        return status
    columns = ["topology", "n", "steps"]
    columns += [f"{name} [s]" for name in backends]
    speedup_keys = []
    if "reference" in backends and "fast" in backends:
        speedup_keys.append(("speedup", "speedup"))
    if "fast" in backends and "vec" in backends:
        speedup_keys.append(("vec/fast", "vec_speedup_over_fast"))
    if "reference" in backends and "vec" in backends:
        speedup_keys.append(("vec/ref", "vec_speedup_over_reference"))
    if "vec" in backends and "jit" in backends:
        speedup_keys.append(("jit/vec", "jit_speedup_over_vec"))
    if "reference" in backends and "jit" in backends:
        speedup_keys.append(("jit/ref", "jit_speedup_over_reference"))
    if args.float32:
        speedup_keys.append(("f32 [s] (approx)", "jit_float32_seconds"))
        speedup_keys.append(("f32/jit", "jit_float32_speedup_over_jit"))
    columns += [label for label, _ in speedup_keys]
    if args.memory:
        columns += [f"{name} peak [MB]" for name in backends]
    if not args.no_check:
        columns.append("identical")
    title = "backend speed: " + " vs ".join(backends)
    if args.estimate_mode != "oracle":
        title += f" ({args.estimate_mode} estimates)"
    table = report.Table(title, columns)
    for entry in payload["results"]:
        row = [entry["topology"], entry["n"], entry["steps"]]
        row += [entry[f"{name}_seconds"] for name in backends]
        row += [entry[key] for _, key in speedup_keys]
        if args.memory:
            row += [
                round(entry[f"{name}_peak_tracemalloc_bytes"] / 1e6, 1)
                for name in backends
            ]
        if not args.no_check:
            row.append(
                _fmt(entry.get("traces_identical", entry.get("reports_identical")))
            )
        table.add_row(*row)
    print("\n" + table.render() + "\n")
    return status


def _cache_stats_line(cache: executor.ResultCache) -> str:
    stats = cache.stats()
    breakdown = ", ".join(
        f"{backend}: {count}" for backend, count in stats["by_backend"].items()
    )
    suffix = f" ({breakdown})" if breakdown else ""
    return (
        f"{stats['entries']} cache entries, {stats['total_bytes']} bytes "
        f"in {cache.cache_dir}{suffix}"
    )


def cmd_cache(args: argparse.Namespace) -> int:
    cache = executor.ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.cache_dir}")
        return 0
    if args.prune_older_than is not None or args.max_bytes is not None:
        removed, freed = cache.prune(
            older_than=args.prune_older_than, max_bytes=args.max_bytes
        )
        print(f"pruned {removed} cache entries ({freed} bytes) from {cache.cache_dir}")
        print(_cache_stats_line(cache))
        return 0
    print(_cache_stats_line(cache))
    for entry in cache.entries():
        print(f"  {entry.name}")
    return 0


class _ShutdownSignal(Exception):
    """Raised from the SIGTERM/SIGINT handler to unwind ``serve_forever``."""

    def __init__(self, signum: int):
        super().__init__(f"signal {signum}")
        self.signum = signum


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from ..service import JsonlLog, ServiceConfig, SweepServer, SweepService
    from ..service.core import ServiceError

    try:
        config = ServiceConfig(
            workers=args.workers,
            sweep_workers=args.sweep_workers,
            strict_backend=args.strict_backend,
            janitor_interval=args.janitor_interval,
            prune_older_than=args.prune_older_than,
            max_cache_bytes=args.max_bytes,
        )
        service = SweepService(args.cache_dir, config=config)
        log_path = args.log_file
        if log_path is None:
            log_path = service.cache.cache_dir / "service.log.jsonl"
        service.log = JsonlLog(
            None if log_path == "" else log_path, max_bytes=args.log_max_bytes
        )
        server = SweepServer(service, host=args.host, port=args.port)
    except (ServiceError, OSError) as exc:
        raise CliError(str(exc)) from exc
    host, port = server.address
    print(f"sweep service on http://{host}:{port}", file=sys.stderr)
    print(f"cache: {service.cache.cache_dir}", file=sys.stderr)
    if service.log.enabled:
        print(f"telemetry: {service.log.path} (JSONL, tail -f friendly)", file=sys.stderr)
    # SIGTERM (systemd, docker stop, CI harnesses) and SIGINT (^C) both
    # trigger the same graceful drain: stop accepting sweeps, let in-flight
    # jobs finish within --drain-timeout, fail queued jobs with a clear
    # status, flush the telemetry log.
    def _on_signal(signum, frame):
        raise _ShutdownSignal(signum)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        server.serve_forever(drain_timeout=args.drain_timeout)
    except (KeyboardInterrupt, _ShutdownSignal) as exc:
        name = (
            signal.Signals(exc.signum).name
            if isinstance(exc, _ShutdownSignal)
            else "SIGINT"
        )
        print(
            f"{name}: draining (in-flight jobs get {args.drain_timeout:g}s)",
            file=sys.stderr,
        )
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.shutdown(drain_timeout=args.drain_timeout)
        service.log.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Declarative scenario runner for the PODC'10 reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list", help="list registered scenarios and components"
    ).set_defaults(handler=cmd_list)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="scenario builder argument (dotted keys nest, e.g. sim.duration=40)",
    )
    common.add_argument("--workers", type=int, default=1, help="worker processes")
    common.add_argument("--cache-dir", default=None, help="result cache directory")
    common.add_argument(
        "--no-cache", action="store_true", help="run without reading or writing the cache"
    )
    common.add_argument(
        "--strict-backend",
        action="store_true",
        help="fail instead of falling back to the reference backend on "
        "scenarios the selected backend cannot run",
    )
    common.add_argument(
        "--observers",
        default=None,
        metavar="NAME,NAME,...",
        help="streaming observers to run (default: the standard RunSummary "
        "set; see `list` for names)",
    )
    common.add_argument(
        "--trace",
        choices=["full", "none"],
        default=None,
        help="keep the full per-sample trace (default) or only the "
        "streaming observer report (constant memory in the duration)",
    )
    common.add_argument(
        "--until-stable",
        action="store_true",
        help="stop each run at its stability point (convergence, or the "
        "stabilization window after an insertion) instead of running the "
        "full duration; results cache under a separate .stable key",
    )
    common.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE.jsonl",
        help="stream structured JSONL events (run progress, watchdog "
        "firings) to FILE while the sweep runs; tail -f friendly",
    )
    common.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    run_parser = subparsers.add_parser(
        "run", parents=[common], help="run one named scenario"
    )
    run_parser.add_argument("scenario", help="scenario name (see `list`)")
    run_parser.set_defaults(handler=cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", parents=[common], help="run the cartesian product of a parameter grid"
    )
    sweep_parser.add_argument("scenario", help="scenario name (see `list`)")
    sweep_parser.add_argument(
        "--grid",
        action="append",
        metavar="KEY=V1,V2,...",
        help="sweep axis (repeatable; the sweep is the cartesian product)",
    )
    sweep_parser.set_defaults(handler=cmd_sweep)

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the reference vs fast engine backends (perf trajectory)",
    )
    bench_parser.add_argument(
        "--sizes",
        default=",".join(str(n) for n in bench_mod.DEFAULT_SIZES),
        help="comma-separated node counts (default: %(default)s)",
    )
    bench_parser.add_argument(
        "--topologies",
        default=",".join(bench_mod.DEFAULT_TOPOLOGIES),
        help="comma-separated topology families (line,grid,random)",
    )
    bench_parser.add_argument(
        "--backends",
        default="reference,fast",
        help="comma-separated backends to time (default: %(default)s)",
    )
    bench_parser.add_argument(
        "--duration", type=float, default=bench_mod.DEFAULT_DURATION,
        help="simulated time units per run (default: %(default)s)",
    )
    bench_parser.add_argument(
        "--dt", type=float, default=bench_mod.DEFAULT_DT,
        help="simulation step length (default: %(default)s)",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=1, help="timings per point; best is kept"
    )
    bench_parser.add_argument(
        "--output",
        default=bench_mod.DEFAULT_OUTPUT,
        help="JSON results file (default: %(default)s; empty string disables)",
    )
    bench_parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the cross-backend trace equality check",
    )
    bench_parser.add_argument(
        "--trace",
        choices=["full", "none"],
        default="full",
        help="record a full trace (default) or run the streaming observer "
        "pipeline only (constant memory; equality is checked on reports)",
    )
    bench_parser.add_argument(
        "--memory",
        action="store_true",
        help="add one untimed run per point under tracemalloc and report "
        "its peak memory (plus the process RSS high-water mark)",
    )
    bench_parser.add_argument(
        "--estimate-mode",
        choices=list(bench_mod.BENCH_ESTIMATE_MODES),
        default="oracle",
        help="estimate mode for the whole grid: 'oracle' (default) or "
        "'broadcast' for message-layer estimates over the bounded-delay "
        "transport (the BENCH_msgsim.json family)",
    )
    bench_parser.add_argument(
        "--broadcast-interval",
        type=float,
        default=1.0,
        help="broadcast period for --estimate-mode broadcast "
        "(default: %(default)s)",
    )
    bench_parser.add_argument(
        "--float32",
        action="store_true",
        help="add a timed column for the jit engine's opt-in float32 "
        "kernels (needs 'jit' in --backends); approx-only, never part of "
        "the equality verdict",
    )
    bench_parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="fail (exit 3) if any backend regresses more than the "
        "threshold against this perf-trajectory file",
    )
    bench_parser.add_argument(
        "--compare-threshold",
        type=float,
        default=0.3,
        help="allowed slowdown fraction for --compare (default: %(default)s)",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="emit the results JSON to stdout"
    )
    bench_parser.set_defaults(handler=cmd_bench)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect, prune or clear the result cache"
    )
    cache_parser.add_argument("--cache-dir", default=None)
    cache_parser.add_argument("--clear", action="store_true", help="delete all entries")
    cache_parser.add_argument(
        "--prune-older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="delete entries last written more than SECONDS ago",
    )
    cache_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-written entries until the cache fits N bytes",
    )
    cache_parser.set_defaults(handler=cmd_cache)

    scenarios_parser = subparsers.add_parser(
        "scenarios",
        help="list or lint the chaos scenario pack (repro.chaos)",
        description="Scenario files ship as package data under "
        "repro/chaos/scenarios/ and register as named scenarios at import "
        "time, so `run`/`sweep` accept them like any built-in.  --validate "
        "lints the pack: schema, registry resolution, dry-run build, "
        "duplicate names, watchdog pre-wiring and the adversarial files' "
        "derivation from the analytic lower bounds.",
    )
    scenarios_parser.add_argument(
        "--validate",
        action="store_true",
        help="lint every scenario file and exit non-zero on any problem",
    )
    scenarios_parser.add_argument(
        "--dir",
        action="append",
        default=None,
        metavar="PATH",
        help="additional scenario-file directory to include (repeatable)",
    )
    scenarios_parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of a listing"
    )
    scenarios_parser.set_defaults(handler=cmd_scenarios)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the sweep service daemon (HTTP/JSON API over the result cache)",
        description="Long-running sweep service: POST /sweeps submits a spec "
        "list or grid, GET /jobs/{id} polls progress, GET /results/{key} "
        "serves cached payloads byte-for-byte, GET /healthz and GET /specs "
        "introspect.  Identical concurrent submissions coalesce onto one "
        "execution; completed hashes are served from cache instantly.",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8765, help="bind port (0 = ephemeral)")
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="background sweep worker threads"
    )
    serve_parser.add_argument(
        "--sweep-workers",
        type=int,
        default=1,
        help="multiprocessing workers inside each job's sweep loop",
    )
    serve_parser.add_argument("--cache-dir", default=None, help="result cache directory")
    serve_parser.add_argument(
        "--strict-backend",
        action="store_true",
        help="fail jobs instead of falling back to the reference backend",
    )
    serve_parser.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="JSONL request/job telemetry file (default: "
        "<cache-dir>/service.log.jsonl; pass '' to disable)",
    )
    serve_parser.add_argument(
        "--log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the telemetry log to <file>.1 when it reaches N bytes "
        "(default: grow without bound)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, stop accepting sweeps (503) and give "
        "in-flight jobs up to SECONDS to finish; queued jobs fail with a "
        "clear status (default: 30)",
    )
    serve_parser.add_argument(
        "--janitor-interval",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="cache janitor cadence (active only with a prune policy)",
    )
    serve_parser.add_argument(
        "--prune-older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="janitor: delete cache entries older than SECONDS",
    )
    serve_parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="janitor: keep the cache under N bytes (LRU by write time)",
    )
    serve_parser.set_defaults(handler=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (
        registry.RegistryError,
        executor.ExecutorError,
        argparse.ArgumentTypeError,
        BackendError,
        UnsupportedScenarioError,
        MetricsError,
        CliError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
