"""Backend speed benchmark: reference vs fast engine, head to head.

The benchmark times end-to-end engine construction plus run (no caching, no
summarising) for the same scenario on every registered backend, across a grid
of topology families and node counts, and verifies on the fly that the
produced traces are identical.  Results are written to ``BENCH_fastsim.json``
-- the repo's performance trajectory file -- by the ``repro-experiments
bench`` subcommand and by ``benchmarks/bench_e11_backend_speed.py``.

The scenarios are throughput-oriented: a two-group drift adversary over a
static line / grid / random-connected topology with the benchmark edge
parameters, an adversarial initial ramp and the ``toward_observer`` estimate
strategy -- i.e. the same per-step workload as the E1--E3 suite, with a short
wall-clock duration so that large ``n`` stays affordable.  An explicit
global skew bound (the analytic per-hop bound of
:func:`repro.core.skew_estimates.suggest_global_skew_bound`, computed in
closed form) keeps materialisation cheap at n >> 10^3, where the generic
weighted-diameter search would dominate.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.parameters import Parameters
from ..fastsim.backend import get_backend
from . import registry
from .registry import BENCHMARK_EDGE, BENCHMARK_INSERTION_SCALE, BENCHMARK_PARAMS
from .results import build_run_pipeline, trace_to_payload
from .spec import ComponentSpec, ScenarioSpec, TRACE_MODES

DEFAULT_SIZES: Tuple[int, ...] = (64, 256, 1024)
DEFAULT_TOPOLOGIES: Tuple[str, ...] = ("line", "grid", "random")
DEFAULT_DURATION = 20.0
DEFAULT_DT = 0.1
DEFAULT_OUTPUT = "BENCH_fastsim.json"
#: Estimate modes the bench grid knows how to build.  ``broadcast`` switches
#: the scenario into message-layer estimates (real in-flight messages over
#: the bounded-delay transport) -- the family recorded in BENCH_msgsim.json.
BENCH_ESTIMATE_MODES: Tuple[str, ...] = ("oracle", "broadcast")

#: Observers used by ``--trace none`` bench runs.  Deliberately excludes
#: ``gradient_bound_check`` (and the other all-pairs observers): those are
#: O(n^2) per run by nature and would dominate the throughput measurement at
#: n >> 10^3; the scalar observers here are the per-step streaming workload.
BENCH_OBSERVERS: Tuple[str, ...] = (
    "global_skew",
    "local_skew",
    "convergence_time",
    "mode_counts",
)


class BenchError(ValueError):
    """Raised on invalid benchmark configuration."""


def _per_hop_bound(params: Parameters) -> float:
    """Closed-form per-hop term of ``suggest_global_skew_bound``."""
    edge = BENCHMARK_EDGE
    return (
        edge["epsilon"]
        + edge["delay"]
        + 2.0 * params.rho * (1.0 + edge["delay"])
    )


def _topology_component(kind: str, n: int) -> Tuple[ComponentSpec, int]:
    """Topology component plus a (possibly over-estimated) hop diameter."""
    if kind == "line":
        return ComponentSpec("line", {"n": n}), n - 1
    if kind == "grid":
        rows = max(2, math.isqrt(n))
        cols = max(2, (n + rows - 1) // rows)
        return ComponentSpec("grid", {"rows": rows, "cols": cols}), rows + cols - 2
    if kind == "random":
        # Sparse random connected graph: the per-pair probability scales as
        # 1/n so the expected extra degree stays constant across sizes.  The
        # hop diameter is bounded by n - 1 and the skew bound only needs to
        # dominate it.
        probability = min(0.05, 8.0 / n)
        return (
            ComponentSpec(
                "random_connected",
                {"n": n, "extra_edge_probability": probability},
            ),
            n - 1,
        )
    raise BenchError(f"unknown bench topology {kind!r}; known: line, grid, random")


def bench_spec(
    kind: str,
    n: int,
    *,
    duration: float = DEFAULT_DURATION,
    dt: float = DEFAULT_DT,
    backend: str = "reference",
    estimate_mode: str = "oracle",
    broadcast_interval: float = 1.0,
) -> ScenarioSpec:
    """The backend-benchmark scenario for one (topology, size) grid point."""
    if n < 2:
        raise BenchError(f"bench scenarios need n >= 2, got {n}")
    if duration <= 0.0:
        raise BenchError(f"duration must be positive, got {duration}")
    if estimate_mode not in BENCH_ESTIMATE_MODES:
        raise BenchError(
            f"estimate_mode must be one of {BENCH_ESTIMATE_MODES}, "
            f"got {estimate_mode!r}"
        )
    topology, hops = _topology_component(kind, n)
    params = Parameters(**BENCHMARK_PARAMS)
    bound = 2.0 * (_per_hop_bound(params) * hops + params.iota) + 1.0
    kappa = params.kappa_for(BENCHMARK_EDGE["epsilon"], BENCHMARK_EDGE["tau"])
    sim = {
        "dt": dt,
        "duration": duration,
        "sample_interval": 1.0,
        "estimate_strategy": "toward_observer",
    }
    family = "backend_bench"
    if estimate_mode == "broadcast":
        sim["estimate_mode"] = "broadcast"
        sim["broadcast_interval"] = broadcast_interval
        family = "msgsim_bench"
    return ScenarioSpec(
        label=f"{family}/{kind}/n={n}",
        topology=topology,
        drift=ComponentSpec("two_group", {"swap_period": 40.0}),
        algorithm=ComponentSpec(
            "aopt",
            {
                "global_skew_bound": bound,
                "insertion_scale": BENCHMARK_INSERTION_SCALE,
            },
        ),
        params=dict(BENCHMARK_PARAMS),
        edge=dict(BENCHMARK_EDGE),
        sim=sim,
        initial_ramp_per_edge=0.95 * kappa,
        backend=backend,
    )


def validate_bench_config(
    *,
    sizes: Sequence[int],
    topologies: Sequence[str],
    duration: float,
    dt: float,
    repeats: int,
    backends: Sequence[str],
    trace: str = "full",
    estimate_mode: str = "oracle",
    float32: bool = False,
) -> None:
    """Fail fast on a bad benchmark grid (cheap: no simulation is run)."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    if len(backends) < 1:
        raise BenchError("need at least one backend to time")
    if trace not in TRACE_MODES:
        raise BenchError(f"trace must be one of {TRACE_MODES}, got {trace!r}")
    if float32 and "jit" not in backends:
        raise BenchError(
            "--float32 times the jit engine's narrowed kernels; add 'jit' "
            "to --backends to use it"
        )
    for name in backends:
        get_backend(name)
    for kind in topologies:
        for n in sizes:
            bench_spec(kind, n, duration=duration, dt=dt, estimate_mode=estimate_mode)


#: Backends already warmed up in this process (see ``_warm_backend``).
_WARMED: set = set()


def _warm_backend(name: str, estimate_mode: str = "oracle") -> None:
    """One small untimed run so first-use initialisation (numpy ufunc and
    dispatch caches, and for ``jit`` the one-off kernel compilation --
    numba JIT or the on-demand C build) never lands in a measurement."""
    key = (name, estimate_mode)
    if key in _WARMED:
        return
    _WARMED.add(key)
    spec = bench_spec("line", 8, duration=2.0, estimate_mode=estimate_mode)
    scenario = registry.build_scenario(spec)
    engine = get_backend(name).build(
        scenario.graph, scenario.algorithm_factory, scenario.config
    )
    engine.run(scenario.config.duration)


def _measure_peak_memory(run_once) -> int:
    """Peak tracemalloc bytes of one untimed ``run_once()`` invocation.

    Measured in a dedicated run so the tracemalloc overhead (roughly 2x on
    allocation-heavy code) never pollutes the timed measurements that the
    ``--compare`` regression gate checks.
    """
    import gc
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        run_once()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return int(peak)


def _peak_rss_kb() -> Optional[int]:
    """Process high-water RSS in kB (monotone over the process lifetime).

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS; normalise so
    trajectories generated on either platform are comparable.
    """
    try:
        import resource
        import sys

        peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        return peak // 1024 if sys.platform == "darwin" else peak
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return None


def run_backend_bench(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    topologies: Sequence[str] = DEFAULT_TOPOLOGIES,
    duration: float = DEFAULT_DURATION,
    dt: float = DEFAULT_DT,
    repeats: int = 1,
    backends: Sequence[str] = ("reference", "fast"),
    check_equivalence: bool = True,
    trace: str = "full",
    measure_memory: bool = False,
    estimate_mode: str = "oracle",
    broadcast_interval: float = 1.0,
    float32: bool = False,
) -> Dict[str, Any]:
    """Time every backend on every grid point; return the results payload.

    Each measurement is the best of ``repeats`` end-to-end engine
    construction + run timings (never cached), taken after a small untimed
    warm-up run per backend.  When ``check_equivalence`` is set the traces
    of all backends are compared for exact equality and the verdict
    recorded per grid point.

    ``trace="none"`` runs the streaming observer pipeline instead of
    recording a trace (constant memory in the duration); equivalence is then
    checked on the observer *reports*.  ``measure_memory=True`` adds one
    untimed run per (backend, grid point) under :mod:`tracemalloc` and
    records its peak as ``{backend}_peak_tracemalloc_bytes`` (plus the
    process-wide ``peak_rss_kb`` high-water mark).

    ``estimate_mode="broadcast"`` switches the whole grid to message-layer
    estimates (the BENCH_msgsim.json family): real broadcasts over the
    bounded-delay transport instead of oracle estimate reads.
    ``float32=True`` adds an extra timed column ``jit_float32_seconds``
    running the jit engine's opt-in narrowed kernels; it is approx-only by
    contract, so it never participates in the equivalence verdict.
    """
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    if len(backends) < 1:
        raise BenchError("need at least one backend to time")
    if trace not in TRACE_MODES:
        raise BenchError(f"trace must be one of {TRACE_MODES}, got {trace!r}")
    if float32 and "jit" not in backends:
        raise BenchError(
            "--float32 times the jit engine's narrowed kernels; add 'jit' "
            "to --backends to use it"
        )
    for name in backends:
        _warm_backend(name, estimate_mode)
    results: List[Dict[str, Any]] = []
    for kind in topologies:
        for n in sizes:
            base = bench_spec(
                kind,
                n,
                duration=duration,
                dt=dt,
                estimate_mode=estimate_mode,
                broadcast_interval=broadcast_interval,
            ).with_trace(trace)
            if trace == "none":
                base = base.with_observers(*BENCH_OBSERVERS)
            scenario = registry.build_scenario(base)
            steps = int(round(duration / dt))
            entry: Dict[str, Any] = {
                "topology": kind,
                "n": scenario.graph.node_count,
                "duration": duration,
                "dt": dt,
                "steps": steps,
                "trace_mode": trace,
                "estimate_mode": estimate_mode,
                "spec_hash": base.content_hash(),
            }
            payloads: Dict[str, Any] = {}

            def build_engine(backend):
                return backend.build(
                    scenario.graph, scenario.algorithm_factory, scenario.config
                )

            def run_engine(engine):
                """One full run; returns (trace, pipeline or None)."""
                pipeline = None
                if trace == "none":
                    pipeline = build_run_pipeline(
                        base,
                        graph=scenario.graph,
                        base_edges=scenario.base_edges,
                        config=scenario.config,
                        meta=scenario.meta,
                        global_skew_bound=scenario.global_skew_bound,
                    )
                    engine.configure_recording(pipeline, record_trace=False)
                produced = engine.run(scenario.config.duration)
                return produced, pipeline

            def run_once(backend):
                """One full build + run; returns (trace, pipeline or None)."""
                return run_engine(build_engine(backend))

            for name in backends:
                backend = get_backend(name)
                # One untimed warm run per (backend, grid point): the
                # process-wide ``_warm_backend`` covers import-time caches,
                # but size-dependent first-use costs (allocator growth,
                # size-specialised dispatch) previously leaked into the
                # first timed measurement of every new size.
                warm_key = (name, kind, n, estimate_mode)
                if warm_key not in _WARMED:
                    _WARMED.add(warm_key)
                    run_once(backend)
                best = math.inf
                produced = pipeline = None
                for _ in range(repeats):
                    started = time.perf_counter()
                    produced, pipeline = run_once(backend)
                    best = min(best, time.perf_counter() - started)
                entry[f"{name}_seconds"] = best
                if check_equivalence:
                    # Payload conversion happens outside the timed window,
                    # exactly like the pre-streaming benchmark did.
                    if pipeline is not None:
                        payloads[name] = pipeline.finalize().to_payload()
                    else:
                        payloads[name] = trace_to_payload(produced)
                if measure_memory:
                    entry[f"{name}_peak_tracemalloc_bytes"] = _measure_peak_memory(
                        lambda backend=backend: run_once(backend)
                    )
            if float32:
                # The narrowed jit kernels are approx-only by contract, so
                # they are timed but deliberately NEVER fed into the
                # equivalence verdict below.
                from ..jitsim.engine import JitEngine

                def run_float32_once():
                    engine = JitEngine(
                        scenario.graph,
                        scenario.algorithm_factory,
                        scenario.config,
                        float32=True,
                    )
                    return run_engine(engine)

                warm_key = ("jit+float32", kind, n, estimate_mode)
                if warm_key not in _WARMED:
                    _WARMED.add(warm_key)
                    run_float32_once()
                best = math.inf
                for _ in range(repeats):
                    started = time.perf_counter()
                    run_float32_once()
                    best = min(best, time.perf_counter() - started)
                entry["jit_float32_seconds"] = best
                entry["jit_float32_speedup_over_jit"] = (
                    entry["jit_seconds"] / best
                )
            if measure_memory:
                entry["peak_rss_kb"] = _peak_rss_kb()
            node_steps = steps * scenario.graph.node_count
            entry["node_steps"] = node_steps
            for name in backends:
                entry[f"{name}_node_steps_per_second"] = (
                    node_steps / entry[f"{name}_seconds"]
                )
            if "reference" in backends and "fast" in backends:
                entry["speedup"] = entry["reference_seconds"] / entry["fast_seconds"]
            if "reference" in backends and "vec" in backends:
                entry["vec_speedup_over_reference"] = (
                    entry["reference_seconds"] / entry["vec_seconds"]
                )
            if "fast" in backends and "vec" in backends:
                entry["vec_speedup_over_fast"] = (
                    entry["fast_seconds"] / entry["vec_seconds"]
                )
            if "reference" in backends and "jit" in backends:
                entry["jit_speedup_over_reference"] = (
                    entry["reference_seconds"] / entry["jit_seconds"]
                )
            if "vec" in backends and "jit" in backends:
                entry["jit_speedup_over_vec"] = (
                    entry["vec_seconds"] / entry["jit_seconds"]
                )
            if check_equivalence and len(payloads) > 1:
                first = next(iter(payloads.values()))
                identical = all(payload == first for payload in payloads.values())
                key = "traces_identical" if trace == "full" else "reports_identical"
                entry[key] = identical
            results.append(entry)
    return {
        "benchmark": "backend_speed",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "backends": list(backends),
        "config": {
            "sizes": list(sizes),
            "topologies": list(topologies),
            "duration": duration,
            "dt": dt,
            "repeats": repeats,
            "trace": trace,
            "estimate_mode": estimate_mode,
            "float32": bool(float32),
        },
        "results": results,
    }


def write_bench_json(payload: Dict[str, Any], path) -> Path:
    """Persist a benchmark payload (the repo's perf-trajectory format)."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def compare_bench_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    *,
    threshold: float = 0.3,
) -> List[Dict[str, Any]]:
    """Regression check against a committed perf-trajectory file.

    Matches grid points by ``(topology, n, steps)`` and compares every
    backend timing present in both payloads; a point regresses when the new
    time exceeds the baseline by more than ``threshold`` (0.3 = 30%
    slower).  Points absent from either payload are skipped, so a small CI
    grid can be compared against the full committed sweep.
    """
    if threshold < 0.0:
        raise BenchError(f"threshold must be non-negative, got {threshold}")
    baseline_points = {
        (entry.get("topology"), entry.get("n"), entry.get("steps")): entry
        for entry in baseline.get("results", [])
    }
    regressions: List[Dict[str, Any]] = []
    matched = 0
    for entry in current.get("results", []):
        reference = baseline_points.get(
            (entry.get("topology"), entry.get("n"), entry.get("steps"))
        )
        if reference is None:
            continue
        matched += 1
        for key, old_seconds in reference.items():
            if not key.endswith("_seconds") or key not in entry:
                continue
            new_seconds = entry[key]
            if new_seconds > old_seconds * (1.0 + threshold):
                regressions.append(
                    {
                        "topology": entry.get("topology"),
                        "n": entry.get("n"),
                        "backend": key[: -len("_seconds")],
                        "baseline_seconds": old_seconds,
                        "current_seconds": new_seconds,
                        "ratio": new_seconds / old_seconds,
                    }
                )
    if not matched:
        # A comparison that matches nothing would pass forever while
        # checking nothing -- surface it instead of staying silently green.
        raise BenchError(
            "no (topology, n, steps) grid point of this run matches the "
            "baseline; align --sizes/--topologies/--duration/--dt with the "
            "baseline file or regenerate it"
        )
    return regressions
