"""Declarative experiment orchestration: specs, registries, sweeps, caching.

The subsystem turns "one scenario, one script" into "declare a sweep, run it
in parallel, cache it on disk":

* :mod:`repro.experiments.spec` -- frozen, JSON-serialisable
  :class:`~repro.experiments.spec.ScenarioSpec` with a stable content hash;
* :mod:`repro.experiments.registry` -- named topology/dynamics/drift/delay/
  algorithm factories plus named end-to-end scenarios;
* :mod:`repro.experiments.executor` -- grid expansion, a multiprocessing
  sweep runner and the content-addressed on-disk result cache;
* :mod:`repro.experiments.results` -- the compact
  :class:`~repro.experiments.results.RunSummary` workers return instead of
  whole engines;
* :mod:`repro.experiments.bench` -- the backend speed benchmark feeding
  ``BENCH_fastsim.json`` (reference vs fast engine, see :mod:`repro.fastsim`);
* :mod:`repro.experiments.cli` -- the ``python -m repro.experiments``
  command line (``list`` / ``run`` / ``sweep`` / ``bench`` / ``cache``).
"""

from .bench import bench_spec, compare_bench_payloads, run_backend_bench, write_bench_json
from .executor import (
    ExperimentRun,
    ExperimentRunner,
    ResultCache,
    SweepEvent,
    SweepStats,
    batch_key,
    execute_spec,
    execute_specs_batched,
    expand_grid,
    run_sweep,
)
from .registry import (
    ALGORITHMS,
    DELAYS,
    DRIFTS,
    DYNAMICS,
    SCENARIOS,
    TOPOLOGIES,
    MaterialisedScenario,
    build_scenario,
    scenario,
)
from .results import RunSummary, build_run_pipeline, report_from_trace, summarize
from .spec import ComponentSpec, ScenarioSpec, SpecError

__all__ = [
    "ALGORITHMS",
    "DELAYS",
    "DRIFTS",
    "DYNAMICS",
    "SCENARIOS",
    "TOPOLOGIES",
    "ComponentSpec",
    "ExperimentRun",
    "ExperimentRunner",
    "MaterialisedScenario",
    "ResultCache",
    "RunSummary",
    "ScenarioSpec",
    "SpecError",
    "SweepEvent",
    "SweepStats",
    "batch_key",
    "bench_spec",
    "build_run_pipeline",
    "build_scenario",
    "report_from_trace",
    "compare_bench_payloads",
    "execute_spec",
    "execute_specs_batched",
    "expand_grid",
    "run_backend_bench",
    "run_sweep",
    "scenario",
    "summarize",
    "write_bench_json",
]
