"""Declarative, hashable scenario specifications.

A :class:`ScenarioSpec` is pure data: topology, dynamics, drift, delay and
algorithm are referred to *by registry name* (see
:mod:`repro.experiments.registry`) plus a plain keyword-argument mapping, and
the simulation knobs of :class:`repro.sim.runner.SimulationConfig` are stored
as scalars.  Because a spec contains no live objects it can be

* serialised to JSON and back without loss (``to_dict`` / ``from_dict``),
* hashed to a stable content hash that is identical across processes and
  Python invocations (``content_hash``), which keys the on-disk result cache,
* pickled cheaply to ``multiprocessing`` workers, which rebuild the heavy
  objects locally from the registries.

Randomness is only ever introduced through seeds.  Components that accept a
``seed`` argument but are not given one explicitly are seeded from the spec's
own content hash at materialisation time, so the same spec always produces
the same run, whether executed serially, in a worker pool, or on another
machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

#: Allowed values of :attr:`ScenarioSpec.trace`.
TRACE_MODES = ("full", "none")

#: Bumped whenever the canonical serialisation changes shape, so stale cache
#: entries from older layouts can never be mistaken for current results.
SPEC_FORMAT_VERSION = 1


class SpecError(ValueError):
    """Raised on malformed scenario specifications."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, default float repr."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ComponentSpec:
    """A registry entry by name plus its keyword arguments."""

    name: str
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise SpecError("a component needs a non-empty name")
        for key in self.args:
            if not isinstance(key, str):
                raise SpecError(f"component argument names must be strings, got {key!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ComponentSpec":
        return cls(name=payload["name"], args=dict(payload.get("args", {})))

    def with_args(self, **updates: Any) -> "ComponentSpec":
        merged = dict(self.args)
        merged.update(updates)
        return ComponentSpec(self.name, merged)

    def __hash__(self):
        return hash(canonical_json(self.to_dict()))


def _component(value: Any) -> Optional[ComponentSpec]:
    """Coerce ``None`` / name / (name, args) / mapping into a ComponentSpec."""
    if value is None or isinstance(value, ComponentSpec):
        return value
    if isinstance(value, str):
        return ComponentSpec(value)
    if isinstance(value, Mapping):
        return ComponentSpec.from_dict(value)
    if isinstance(value, tuple) and len(value) == 2:
        return ComponentSpec(value[0], dict(value[1]))
    raise SpecError(f"cannot interpret {value!r} as a component spec")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one simulation run, as pure data.

    ``params`` holds :class:`repro.core.parameters.Parameters` keyword
    arguments, ``edge`` holds :class:`repro.network.edge.EdgeParams` keyword
    arguments and ``sim`` holds :class:`repro.sim.runner.SimulationConfig`
    keyword arguments (``drift``, ``delay`` and ``initial_logical`` are
    expressed through the dedicated fields instead).
    """

    topology: ComponentSpec
    label: str = ""
    dynamics: Optional[ComponentSpec] = None
    drift: Optional[ComponentSpec] = None
    delay: Optional[ComponentSpec] = None
    algorithm: ComponentSpec = field(default_factory=lambda: ComponentSpec("aopt"))
    #: Which engine executes the run (``"reference"``, ``"fast"`` or
    #: ``"vec"``; see :mod:`repro.fastsim.backend`).  The backend is an
    #: *execution* detail: it is serialised with the spec and keys the result
    #: cache, but it is excluded from :meth:`content_hash` so that all
    #: backends derive the same seeds and simulate the identical scenario.
    backend: str = "reference"
    #: Record every k-th sample: the effective sample interval is
    #: ``sample_interval * trace_stride``.  Like ``backend`` this is an
    #: execution/observation detail -- serialised and cache-keyed but
    #: excluded from :meth:`content_hash`, so strided runs simulate the
    #: identical scenario (summaries over the strided trace agree across
    #: backends).
    trace_stride: int = 1
    #: Whether the run keeps a full trace (``"full"``, the default) or only
    #: the streaming observer report (``"none"``: constant memory in the
    #: duration, the trace is dropped).  Like ``backend``/``trace_stride``
    #: this is an observation detail: serialised and cache-keyed, excluded
    #: from :meth:`content_hash`, and summaries are bit-identical either way.
    trace: str = "full"
    #: Streaming observers to run (names from :data:`repro.metrics.OBSERVERS`).
    #: Empty means the standard set backing :class:`RunSummary`
    #: (:data:`repro.metrics.DEFAULT_OBSERVERS`).  Like the fields above this
    #: is an observation detail: excluded from :meth:`content_hash` (so a
    #: custom selection still simulates the identical scenario with the
    #: identical seeds and stays comparable with default runs) but part of
    #: the result-cache key -- a cached result contains exactly the payloads
    #: of the observers that ran (see
    #: :meth:`repro.experiments.executor.ExperimentRunner.cache_path`).
    observers: Tuple[str, ...] = ()
    #: Stop the run as soon as the convergence/stabilization watchdog trips
    #: (``repro-experiments run --until-stable``).  Another observation
    #: detail: excluded from :meth:`content_hash` (the truncated run
    #: simulates the identical scenario -- its samples are a bit-identical
    #: prefix of the full run's), but part of the result-cache key
    #: (``.stable`` suffix) because the cached report covers a shorter
    #: window.
    until_stable: bool = False
    params: Dict[str, Any] = field(default_factory=dict)
    edge: Dict[str, Any] = field(default_factory=dict)
    sim: Dict[str, Any] = field(default_factory=dict)
    #: Adversarially pre-built skew: node ``i`` (in node order) starts with
    #: logical clock ``i * initial_ramp_per_edge``.
    initial_ramp_per_edge: Optional[float] = None
    #: Explicit initial logical clock values (overrides the ramp).
    initial_logical: Optional[Dict[int, float]] = None
    #: Free-form reference values computed by the scenario builder (e.g. the
    #: analytic insertion span); copied into the run metadata verbatim.
    notes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "topology", _component(self.topology))
        object.__setattr__(self, "dynamics", _component(self.dynamics))
        object.__setattr__(self, "drift", _component(self.drift))
        object.__setattr__(self, "delay", _component(self.delay))
        object.__setattr__(self, "algorithm", _component(self.algorithm))
        if self.topology is None:
            raise SpecError("a scenario spec needs a topology")
        if not isinstance(self.backend, str) or not self.backend:
            raise SpecError("backend must be a non-empty backend name")
        if not isinstance(self.trace_stride, int) or isinstance(self.trace_stride, bool):
            raise SpecError(f"trace_stride must be an int, got {self.trace_stride!r}")
        if self.trace_stride < 1:
            raise SpecError(f"trace_stride must be >= 1, got {self.trace_stride}")
        if self.trace not in TRACE_MODES:
            raise SpecError(
                f"trace must be one of {TRACE_MODES}, got {self.trace!r}"
            )
        observers = self.observers
        if isinstance(observers, str):
            observers = tuple(
                name.strip() for name in observers.split(",") if name.strip()
            )
        object.__setattr__(self, "observers", tuple(observers))
        for name in self.observers:
            if not isinstance(name, str) or not name:
                raise SpecError(
                    f"observer names must be non-empty strings, got {name!r}"
                )
        if not isinstance(self.until_stable, bool):
            raise SpecError(
                f"until_stable must be a bool, got {self.until_stable!r}"
            )
        for forbidden in ("drift", "delay", "initial_logical", "params"):
            if forbidden in self.sim:
                raise SpecError(
                    f"sim knob {forbidden!r} must be expressed through the "
                    "dedicated spec field, not the sim mapping"
                )

    # ------------------------------------------------------------------
    # Serialisation and hashing
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "topology": self.topology.to_dict(),
            "dynamics": self.dynamics.to_dict() if self.dynamics else None,
            "drift": self.drift.to_dict() if self.drift else None,
            "delay": self.delay.to_dict() if self.delay else None,
            "algorithm": self.algorithm.to_dict(),
            "backend": self.backend,
            "trace_stride": self.trace_stride,
            "trace": self.trace,
            "observers": list(self.observers),
            "until_stable": self.until_stable,
            "params": dict(self.params),
            "edge": dict(self.edge),
            "sim": dict(self.sim),
            "initial_ramp_per_edge": self.initial_ramp_per_edge,
            "initial_logical": (
                {str(node): value for node, value in self.initial_logical.items()}
                if self.initial_logical is not None
                else None
            ),
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        initial_logical = payload.get("initial_logical")
        if initial_logical is not None:
            initial_logical = {int(node): value for node, value in initial_logical.items()}
        return cls(
            label=payload.get("label", ""),
            topology=_component(payload["topology"]),
            dynamics=_component(payload.get("dynamics")),
            drift=_component(payload.get("drift")),
            delay=_component(payload.get("delay")),
            algorithm=_component(payload.get("algorithm", "aopt")),
            backend=payload.get("backend", "reference"),
            trace_stride=payload.get("trace_stride", 1),
            trace=payload.get("trace", "full"),
            observers=tuple(payload.get("observers", ())),
            until_stable=payload.get("until_stable", False),
            params=dict(payload.get("params", {})),
            edge=dict(payload.get("edge", {})),
            sim=dict(payload.get("sim", {})),
            initial_ramp_per_edge=payload.get("initial_ramp_per_edge"),
            initial_logical=initial_logical,
            notes=dict(payload.get("notes", {})),
        )

    def canonical(self) -> str:
        """Canonical JSON string of the spec (the hashing pre-image).

        The ``backend``, ``trace_stride``, ``trace``, ``observers`` and
        ``until_stable`` fields are deliberately excluded: the content hash
        is the *scenario identity* from which all randomness is seeded, and
        every backend (and every trace stride / trace mode / observer
        selection / early-exit mode) must simulate the identical scenario
        so their results can be compared (the result cache keys on hash,
        backend, stride, trace mode, observer selection *and* early-exit
        mode separately, see :mod:`repro.experiments.executor`).
        """
        payload = self.to_dict()
        payload.pop("backend", None)
        payload.pop("trace_stride", None)
        payload.pop("trace", None)
        payload.pop("observers", None)
        payload.pop("until_stable", None)
        return canonical_json({"version": SPEC_FORMAT_VERSION, "spec": payload})

    def content_hash(self) -> str:
        """SHA-256 of the canonical form; stable across processes and runs."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        return self.content_hash()[:12]

    def base_seed(self) -> int:
        """Deterministic seed derived from the content hash."""
        return int(self.content_hash()[:16], 16)

    def __hash__(self):
        return hash(self.content_hash())

    # ------------------------------------------------------------------
    # Convenience updates
    # ------------------------------------------------------------------
    def with_sim(self, **updates: Any) -> "ScenarioSpec":
        merged = dict(self.sim)
        merged.update(updates)
        return replace(self, sim=merged)

    def with_label(self, label: str) -> "ScenarioSpec":
        return replace(self, label=label)

    def with_backend(self, backend: str) -> "ScenarioSpec":
        """Same scenario (same content hash, same seeds), different engine."""
        return replace(self, backend=backend)

    def with_trace_stride(self, trace_stride: int) -> "ScenarioSpec":
        """Same scenario, recording only every k-th sample."""
        return replace(self, trace_stride=trace_stride)

    def with_trace(self, trace: str) -> "ScenarioSpec":
        """Same scenario, with (``"full"``) or without (``"none"``) a trace."""
        return replace(self, trace=trace)

    def with_observers(self, *names: str) -> "ScenarioSpec":
        """Same scenario (same content hash, same seeds), different
        streaming observer selection."""
        return replace(self, observers=tuple(names))

    def with_until_stable(self, until_stable: bool = True) -> "ScenarioSpec":
        """Same scenario, stopping when the stability watchdog trips."""
        return replace(self, until_stable=until_stable)
