"""The "insert on all levels immediately" strategy (Section 5.5 comparison).

This baseline is AOPT with the staged insertion disabled: a newly discovered
edge is treated as fully inserted right away, without the handshake of
Listing 1 or the level-by-level schedule of Listing 2.  On static graphs it
behaves exactly like AOPT; after an edge insertion it may transiently violate
the gradient property on the surrounding edges because the new edge's skew is
immediately charged against every level, which is what experiment E4
measures.
"""

from __future__ import annotations

from ..core.algorithm import AOPT, AOPTConfig
from ..network.edge import NodeId


class ImmediateInsertionGradient(AOPT):
    """AOPT variant that skips the staged edge insertion."""

    name = "ImmediateInsertion"

    def __init__(self, config: AOPTConfig):
        if not config.immediate_insertion:
            config = AOPTConfig(
                params=config.params,
                global_skew=config.global_skew,
                max_level=config.max_level,
                broadcast_interval=config.broadcast_interval,
                insertion_duration=config.insertion_duration,
                immediate_insertion=True,
            )
        super().__init__(config)


def immediate_insertion_factory(config: AOPTConfig):
    """Algorithm factory for :class:`ImmediateInsertionGradient`."""

    def factory(_node_id: NodeId) -> ImmediateInsertionGradient:
        return ImmediateInsertionGradient(config)

    return factory
