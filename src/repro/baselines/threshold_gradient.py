"""Single-level threshold baseline (à la Locher–Wattenhofer).

The node is in fast mode when some neighbor appears to be at least
``threshold`` ahead; in the *blocking* variant the node additionally refuses
to speed up while some neighbor is ``threshold`` behind.  This is essentially
AOPT restricted to a single level: with the threshold set to the edge weight
``kappa`` the worst-case local skew is not logarithmic but grows polynomially
with the diameter (``O(sqrt(rho D))`` for a well-chosen threshold, ``Omega(D)``
for a constant one without blocking), which is what experiment E2 exhibits.

A max-estimate fallback (identical to AOPT's) keeps the global skew bounded so
the comparison isolates the effect of the multi-level gradient structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..core.interfaces import ClockSyncAlgorithm, ControlDecision
from ..core.max_estimate import MaxEstimateTracker
from ..core.parameters import Parameters
from ..estimate.messages import ClockBroadcast, InsertEdgeMessage
from ..network.edge import NodeId


class ThresholdGradient(ClockSyncAlgorithm):
    """One-level threshold rule with optional blocking."""

    name = "ThresholdGradient"

    def __init__(
        self,
        params: Parameters,
        threshold: float,
        *,
        blocking: bool = True,
        broadcast_interval: float = 1.0,
    ):
        super().__init__()
        params.validate()
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if broadcast_interval <= 0.0:
            raise ValueError("broadcast_interval must be positive")
        self.params = params
        self.threshold = float(threshold)
        self.blocking = bool(blocking)
        self.broadcast_interval = float(broadcast_interval)
        self.max_tracker = MaxEstimateTracker(params.rho)
        self._neighbors = set()
        self._next_broadcast_hardware = 0.0
        self._multiplier = 1.0
        self._mode = "slow"

    # ------------------------------------------------------------------
    def on_start(self, t: float, initial_neighbors: Iterable[NodeId]) -> None:
        self._neighbors = set(initial_neighbors)

    def on_edge_discovered(self, t: float, neighbor: NodeId) -> None:
        self._neighbors.add(neighbor)

    def on_edge_lost(self, t: float, neighbor: NodeId) -> None:
        self._neighbors.discard(neighbor)

    def on_message(self, t: float, sender: NodeId, payload: object) -> None:
        if isinstance(payload, (ClockBroadcast, InsertEdgeMessage)):
            self.max_tracker.observe_remote(payload.max_estimate)

    # ------------------------------------------------------------------
    def control(self, t: float) -> ControlDecision:
        logical = self.api.logical()
        hardware = self.api.hardware()
        self.max_tracker.advance(hardware, logical)
        self._maybe_broadcast(hardware, logical)
        ahead, behind = self._neighbor_extremes(logical)
        someone_ahead = ahead is not None and ahead >= self.threshold
        someone_behind = behind is not None and behind >= self.threshold
        if someone_behind and self.blocking:
            self._set_mode("slow")
        elif someone_ahead:
            self._set_mode("fast")
        else:
            lag = self.max_tracker.value - logical
            if lag <= 1e-9:
                self._set_mode("slow")
            elif lag >= self.params.iota:
                self._set_mode("fast")
            # otherwise keep the current mode
        return ControlDecision(multiplier=self._multiplier)

    def _set_mode(self, mode: str) -> None:
        self._mode = mode
        self._multiplier = 1.0 + self.params.mu if mode == "fast" else 1.0

    def _neighbor_extremes(self, logical: float):
        """Largest amount a neighbor appears ahead / behind, or ``None``."""
        max_ahead: Optional[float] = None
        max_behind: Optional[float] = None
        for neighbor in self._neighbors & self.api.neighbors():
            estimate = self.api.estimate(neighbor)
            if estimate is None:
                continue
            ahead = estimate - logical
            behind = logical - estimate
            if max_ahead is None or ahead > max_ahead:
                max_ahead = ahead
            if max_behind is None or behind > max_behind:
                max_behind = behind
        return max_ahead, max_behind

    def _maybe_broadcast(self, hardware: float, logical: float) -> None:
        if hardware + 1e-12 < self._next_broadcast_hardware:
            return
        self._next_broadcast_hardware = hardware + self.broadcast_interval
        payload = ClockBroadcast(
            sender=self.api.node_id,
            logical=logical,
            max_estimate=self.max_tracker.value,
            hardware=hardware,
        )
        for neighbor in self._neighbors:
            self.api.send(neighbor, payload)

    # ------------------------------------------------------------------
    def mode(self) -> str:
        return self._mode

    def max_estimate(self) -> float:
        return self.max_tracker.value


def threshold_gradient_factory(
    params: Parameters,
    threshold: float,
    *,
    blocking: bool = True,
    broadcast_interval: float = 1.0,
):
    """Algorithm factory for :class:`ThresholdGradient`."""

    def factory(_node_id: NodeId) -> ThresholdGradient:
        return ThresholdGradient(
            params, threshold, blocking=blocking, broadcast_interval=broadcast_interval
        )

    return factory
