"""No-synchronization baseline: the logical clock is the hardware clock."""

from __future__ import annotations

from ..core.interfaces import ClockSyncAlgorithm, ControlDecision
from ..network.edge import NodeId


class HardwareOnly(ClockSyncAlgorithm):
    """Logical clock runs at hardware rate; no communication at all.

    Used as a reference: its global and local skews grow linearly in time at
    rate up to ``2 * rho``, so any synchronization algorithm worth its name
    must beat it on long runs.
    """

    name = "HardwareOnly"

    def control(self, t: float) -> ControlDecision:
        return ControlDecision(multiplier=1.0)


def hardware_only_factory():
    """Algorithm factory for :class:`HardwareOnly`."""

    def factory(_node_id: NodeId) -> HardwareOnly:
        return HardwareOnly()

    return factory
