"""Baseline clock synchronization algorithms used for comparison."""

from .hardware_only import HardwareOnly, hardware_only_factory
from .immediate_insertion import ImmediateInsertionGradient, immediate_insertion_factory
from .max_algorithm import MaxPropagation, max_propagation_factory
from .threshold_gradient import ThresholdGradient, threshold_gradient_factory

__all__ = [
    "HardwareOnly",
    "hardware_only_factory",
    "ImmediateInsertionGradient",
    "immediate_insertion_factory",
    "MaxPropagation",
    "max_propagation_factory",
    "ThresholdGradient",
    "threshold_gradient_factory",
]
