"""Max-propagation baseline (Srikanth–Toueg style).

Every node runs its logical clock at hardware rate and, whenever it learns of
a larger clock value in the network (through the flooded max estimate), jumps
its logical clock up to that value.  This achieves an asymptotically optimal
``O(D)`` global skew, but the local skew is also ``Theta(D)`` in the worst
case: a node adjacent to fresh information jumps by up to the global skew
while its other neighbors do not, which is exactly the weakness gradient clock
synchronization addresses (Section 1 and Section 2 of the paper).
"""

from __future__ import annotations

from typing import Iterable

from ..core.interfaces import ClockSyncAlgorithm, ControlDecision
from ..core.max_estimate import MaxEstimateTracker
from ..estimate.messages import ClockBroadcast, InsertEdgeMessage
from ..network.edge import NodeId


class MaxPropagation(ClockSyncAlgorithm):
    """Jump-to-max clock synchronization."""

    name = "MaxPropagation"

    def __init__(self, rho: float, *, broadcast_interval: float = 1.0):
        super().__init__()
        if broadcast_interval <= 0.0:
            raise ValueError("broadcast_interval must be positive")
        self.rho = float(rho)
        self.broadcast_interval = float(broadcast_interval)
        self.max_tracker = MaxEstimateTracker(rho)
        self._neighbors = set()
        self._next_broadcast_hardware = 0.0
        self._mode = "slow"

    # ------------------------------------------------------------------
    def on_start(self, t: float, initial_neighbors: Iterable[NodeId]) -> None:
        self._neighbors = set(initial_neighbors)

    def on_edge_discovered(self, t: float, neighbor: NodeId) -> None:
        self._neighbors.add(neighbor)

    def on_edge_lost(self, t: float, neighbor: NodeId) -> None:
        self._neighbors.discard(neighbor)

    def on_message(self, t: float, sender: NodeId, payload: object) -> None:
        if isinstance(payload, (ClockBroadcast, InsertEdgeMessage)):
            self.max_tracker.observe_remote(payload.max_estimate)

    # ------------------------------------------------------------------
    def control(self, t: float) -> ControlDecision:
        logical = self.api.logical()
        hardware = self.api.hardware()
        self.max_tracker.advance(hardware, logical)
        self._maybe_broadcast(hardware, logical)
        target = self.max_tracker.value
        if target > logical + 1e-12:
            self._mode = "fast"
            return ControlDecision(multiplier=1.0, jump_to=target)
        self._mode = "slow"
        return ControlDecision(multiplier=1.0)

    def _maybe_broadcast(self, hardware: float, logical: float) -> None:
        if hardware + 1e-12 < self._next_broadcast_hardware:
            return
        self._next_broadcast_hardware = hardware + self.broadcast_interval
        payload = ClockBroadcast(
            sender=self.api.node_id,
            logical=logical,
            max_estimate=self.max_tracker.value,
            hardware=hardware,
        )
        for neighbor in self._neighbors:
            self.api.send(neighbor, payload)

    # ------------------------------------------------------------------
    def mode(self) -> str:
        return self._mode

    def max_estimate(self) -> float:
        return self.max_tracker.value


def max_propagation_factory(rho: float, *, broadcast_interval: float = 1.0):
    """Algorithm factory for :class:`MaxPropagation`."""

    def factory(_node_id: NodeId) -> MaxPropagation:
        return MaxPropagation(rho, broadcast_interval=broadcast_interval)

    return factory
