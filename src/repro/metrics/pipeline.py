"""The streaming pipeline: feeds observers during a run (or from a trace).

A :class:`MetricsPipeline` owns a set of observers and one persistent sample
view per state layout.  Engines feed it through exactly one of

* :meth:`observe_sample`  -- dict-shaped samples (reference engine, replays);
* :meth:`observe_columns` -- flat Python-list columns (fast engine);
* :meth:`observe_arrays`  -- NumPy columns (vec engine);

once per recorded sample, whether or not a trace is being kept.  At the end
of the run :meth:`finalize` produces an :class:`ObserverReport` -- the
plain-JSON artifact the experiments executor caches and
:func:`repro.experiments.results.summarize` reads.

:meth:`replay` drives the same observers from a materialized trace, which is
how the post-hoc analysis API and the legacy ``summarize(trace=...)`` entry
point are implemented; streaming and replay produce bit-identical reports
(the steady-state window start is *predicted* for live streaming -- see
:func:`repro.metrics.streaming.predict_final_time` -- and *measured* for
replays, and the differential suite proves the two agree on every backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..telemetry.schema import sanitize_json
from . import streaming
from .observers import (
    DEFAULT_OBSERVERS,
    MetricsError,
    Observer,
    ObserverContext,
    make_observer,
)
from .views import ArrayView, ColumnsView, TraceSampleView


@dataclass(frozen=True)
class ObserverReport:
    """Finalized observer payloads plus the sample count (JSON-able)."""

    sample_count: int
    payloads: Dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.payloads.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.payloads

    def to_payload(self) -> Dict[str, Any]:
        # Sanitized so the cached JSON is strict (no NaN/Infinity tokens)
        # even if an observer ever produces a non-finite float; finite
        # values pass through bit-exact.
        return sanitize_json(
            {"sample_count": self.sample_count, "observers": dict(self.payloads)}
        )

    @classmethod
    def from_payload(cls, payload: Optional[Dict[str, Any]]) -> Optional["ObserverReport"]:
        if payload is None:
            return None
        return cls(
            sample_count=payload.get("sample_count", 0),
            payloads=dict(payload.get("observers", {})),
        )


class MetricsPipeline:
    """Drives a set of observers over the samples of one run."""

    def __init__(
        self,
        observers: Sequence[Observer],
        context: ObserverContext,
        *,
        predicted_final_time: Optional[float] = None,
        progress_every: Optional[int] = None,
    ):
        self.observers = list(observers)
        self.context = context
        self.sample_count = 0
        self._predicted_final_time = predicted_final_time
        self._progress_every = progress_every
        self._started = False
        self._dict_view: Optional[TraceSampleView] = None
        self._columns_view: Optional[ColumnsView] = None
        self._array_view: Optional[ArrayView] = None

    # -- telemetry ------------------------------------------------------
    def attach_sink(self, sink: Optional[Callable[..., None]]) -> None:
        """Attach a live event sink (``sink(event_type, **fields)``).

        Watchdog firings and periodic ``progress`` events flow to it as
        the run executes; detaching (``None``) is always safe.  The sink
        only ever observes -- attaching one cannot change any observer
        value or the stop decision.
        """
        self.context.channel.sink = sink

    @property
    def stop_requested(self) -> bool:
        """Whether an armed watchdog asked the engine to stop.

        Only changes while a sample is being fed, so engines polling it
        after each step see stop decisions at sample-record instants only
        -- the invariant behind the bit-identical-prefix guarantee of
        ``--until-stable``.
        """
        return self.context.channel.stop

    @property
    def watchdogs_fired(self) -> Dict[str, int]:
        """Firing tallies per watchdog name (live, updates as the run goes)."""
        return dict(self.context.channel.fired)

    # -- feeding --------------------------------------------------------
    def _begin(self, first_time: float) -> None:
        """Fix run-level context (the steady window) before the first sample."""
        self._started = True
        if self.context.steady_start is None and self._predicted_final_time is not None:
            self.context.steady_start = streaming.steady_window_start(
                first_time, self._predicted_final_time, self.context.steady_fraction
            )

    def _feed(self, view) -> None:
        if not self._started:
            self._begin(view.time)
        self.sample_count += 1
        for observer in self.observers:
            observer.observe(view)
        every = self._progress_every
        if every and self.sample_count % every == 0:
            sink = self.context.channel.sink
            if sink is not None:
                sink("progress", sim_time=view.time, samples=self.sample_count)

    def observe_sample(self, sample) -> None:
        """Consume one dict-shaped sample (``TraceSample`` or duck-typed)."""
        view = self._dict_view
        if view is None:
            view = self._dict_view = TraceSampleView()
        self._feed(view.set_sample(sample))

    def observe_columns(self, time, ids, index, logical, max_estimate, mode) -> None:
        """Consume one sample from flat Python-list columns (fast engine)."""
        view = self._columns_view
        if view is None:
            view = self._columns_view = ColumnsView(ids, index)
        self._feed(view.set_columns(time, logical, max_estimate, mode))

    def observe_arrays(self, time, ids, index, logical, max_estimate, mode) -> None:
        """Consume one sample from NumPy columns (vec engine)."""
        view = self._array_view
        if view is None:
            view = self._array_view = ArrayView(ids, index)
        self._feed(view.set_columns(time, logical, max_estimate, mode))

    # -- results --------------------------------------------------------
    def finalize(self) -> ObserverReport:
        return ObserverReport(
            sample_count=self.sample_count,
            payloads={
                observer.name: observer.finalize() for observer in self.observers
            },
        )

    def replay(self, trace: Iterable) -> ObserverReport:
        """Feed a materialized trace through the pipeline and finalize.

        The steady window is measured from the trace itself (first and final
        sample times) with the exact expression of
        :func:`repro.analysis.skew.steady_state_window`.
        """
        samples = trace if hasattr(trace, "first") else list(trace)
        if hasattr(samples, "first"):
            first = samples.first().time if len(samples) else None
            final = samples.final().time if len(samples) else None
        else:
            first = samples[0].time if samples else None
            final = samples[-1].time if samples else None
        if self.context.steady_start is None and first is not None:
            self.context.steady_start = streaming.steady_window_start(
                first, final, self.context.steady_fraction
            )
        self._started = True
        for sample in samples:
            self.observe_sample(sample)
        return self.finalize()


def build_pipeline(
    names: Optional[Sequence[str]] = None,
    *,
    graph,
    base_edges: Sequence[Tuple[int, int]] = (),
    params=None,
    meta: Optional[Dict[str, Any]] = None,
    global_skew_bound: Optional[float] = None,
    has_dynamics: bool = False,
    duration: Optional[float] = None,
    dt: Optional[float] = None,
    steady_fraction: float = 0.25,
    sink: Optional[Callable[..., None]] = None,
    stop_on: Optional[str] = None,
    progress_every: Optional[int] = None,
) -> MetricsPipeline:
    """Assemble a pipeline for one run.

    ``names`` defaults to :data:`~repro.metrics.observers.DEFAULT_OBSERVERS`.
    When ``duration`` and ``dt`` are given, the final sample time is
    predicted so steady-window observers can stream with constant memory;
    without them the pipeline still works but only :meth:`MetricsPipeline.replay`
    fills the steady window.

    ``sink`` attaches a live telemetry sink (see
    :meth:`MetricsPipeline.attach_sink`); ``stop_on`` names a watchdog in
    ``names`` to arm as the early-exit trigger (its first firing sets
    ``stop_requested``); ``progress_every`` emits a ``progress`` event to
    the sink every N samples.
    """
    context = ObserverContext(
        graph=graph,
        base_edges=list(base_edges),
        params=params,
        meta=dict(meta or {}),
        global_skew_bound=global_skew_bound,
        has_dynamics=has_dynamics,
        steady_fraction=steady_fraction,
    )
    selected = tuple(names) if names else DEFAULT_OBSERVERS
    seen = set()
    observers = []
    for name in selected:
        if name in seen:
            raise MetricsError(f"duplicate observer {name!r}")
        seen.add(name)
        observers.append(make_observer(name, context))
    if stop_on is not None:
        from .watchdogs import Watchdog

        armed = next((o for o in observers if o.name == stop_on), None)
        if armed is None:
            raise MetricsError(
                f"stop_on observer {stop_on!r} is not in the pipeline "
                f"(selected: {', '.join(selected)})"
            )
        if not isinstance(armed, Watchdog):
            raise MetricsError(f"stop_on observer {stop_on!r} is not a watchdog")
        armed.arm_stop()
    context.channel.sink = sink
    predicted = None
    if duration is not None and dt is not None:
        predicted = streaming.predict_final_time(duration, dt)
    return MetricsPipeline(
        observers, context, predicted_final_time=predicted, progress_every=progress_every
    )
