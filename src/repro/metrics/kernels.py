"""NumPy reductions for the vec backend's streaming observers.

Each function is the whole-array counterpart of one scalar reduction the
dict/columns sample views perform, chosen so the reduced float (or count) is
bit-identical to the scalar loop:

* maxima/minima reduce the same set of floats, and IEEE-754 max/min are
  order-insensitive on the values the engines produce (no NaNs);
* ``a - min(e)`` equals ``max_i(a - e_i)`` because rounded subtraction is
  monotone in ``e``;
* comparisons against precomputed limits are the exact comparisons of the
  scalar code (no tolerance is introduced or dropped).

None of these kernels ever materializes a per-node dict -- observers on the
vec backend stay O(n) arrays end to end.
"""

from __future__ import annotations

import numpy as np


def global_skew(logical: np.ndarray) -> float:
    """``max - min`` of the logical clocks (0.0 for an empty column)."""
    if not len(logical):
        return 0.0
    return float(logical.max() - logical.min())


def max_pair_skew(logical: np.ndarray, iu: np.ndarray, iv: np.ndarray) -> float:
    """Largest ``|L_u - L_v|`` over an index-pair list (0.0 when empty)."""
    if not len(iu):
        return 0.0
    return float(np.abs(logical[iu] - logical[iv]).max())


def count_exceeding(
    logical: np.ndarray, iu: np.ndarray, iv: np.ndarray, limits: np.ndarray
) -> int:
    """How many pairs have ``|L_u - L_v| > limit`` (exact comparison)."""
    if not len(iu):
        return 0
    return int(np.count_nonzero(np.abs(logical[iu] - logical[iv]) > limits))


def group_max_update(
    logical: np.ndarray,
    iu: np.ndarray,
    iv: np.ndarray,
    group: np.ndarray,
    accumulator: np.ndarray,
) -> None:
    """Fold one sample's per-pair skews into per-group running maxima."""
    np.maximum.at(accumulator, group, np.abs(logical[iu] - logical[iv]))


def max_estimate_lag(logical: np.ndarray, estimates: np.ndarray) -> float:
    """``max_u (max_v L_v - M_u)``; equals ``L_max - M_min`` exactly."""
    return float(logical.max() - estimates.min())


def mode_counts_update(modes: np.ndarray, counts) -> None:
    """Add one sample's per-mode-code tallies into ``counts`` (a list)."""
    tallies = np.bincount(modes, minlength=len(counts))
    for code in range(len(counts)):
        counts[code] += int(tallies[code])


def histogram_update(
    logical: np.ndarray,
    iu: np.ndarray,
    iv: np.ndarray,
    bin_edges: np.ndarray,
    counts: np.ndarray,
) -> None:
    """Bucket one sample's per-pair skews (``bisect_right`` semantics)."""
    buckets = np.searchsorted(bin_edges, np.abs(logical[iu] - logical[iv]), side="right")
    np.add.at(counts, (np.arange(len(iu)), buckets), 1)
