"""Watchdog observers: live threshold monitors over the streaming pipeline.

A :class:`Watchdog` is an :class:`~repro.metrics.observers.Observer` that,
in addition to its end-of-run payload, *fires* during the run whenever a
sample crosses its threshold.  Firings go to the pipeline's
:class:`~repro.metrics.observers.TelemetryChannel`: they are tallied there
(the service's ``/healthz`` watchdog counters), emitted as structured
``watchdog_fired`` events when a telemetry sink is attached (the
``--telemetry`` stream), and recorded in the watchdog's own payload so a
cached result can replay them later.  A watchdog can also be *armed* as a
stop trigger (:meth:`Watchdog.arm_stop`): its first firing sets
``channel.stop`` and the engines' ``run_until`` loops exit early -- the
``--until-stable`` mechanism.

The four built-ins monitor the paper's claims live:

==========================  ==============================================
``watchdog_gradient_bound``  a sample violates the Corollary 5.26 gradient
                             skew bound (edge-triggered per excursion)
``watchdog_global_skew``     global skew exceeds the configured ceiling
                             (edge-triggered per excursion)
``watchdog_convergence``     global skew first drops to half its initial
                             value (fires once)
``watchdog_stabilization``   after an edge insertion, the skew over the new
                             edge first drops below ``2 kappa_min`` -- the
                             stabilization window closes (fires once)
==========================  ==============================================

Edge-triggered watchdogs fire once per *excursion* (the sample that crosses
the threshold), not once per violating sample, so a long excursion is one
event.  All thresholds reuse the exact float expressions of the passive
observers they mirror, and all firings happen at sample-record instants
only -- which is what makes the ``--until-stable`` truncation bit-identical
to a prefix of the full run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..network import paths
from ..sim.runner import minimum_kappa
from .observers import OBSERVERS, Observer, ObserverContext
from .views import SampleView

#: Per-watchdog cap on detailed event records kept for the payload; the
#: ``fired`` counter is exact regardless (a misbehaving run could otherwise
#: grow the cached payload without bound).
MAX_EVENT_RECORDS = 50

#: Names of all registered watchdogs (filled by the registrations below).
WATCHDOG_NAMES: Tuple[str, ...] = ()


class Watchdog(Observer):
    """Base class: threshold bookkeeping + the firing side-channel."""

    name = "watchdog"

    def __init__(self, context: ObserverContext):
        super().__init__(context)
        self.applicable = True
        self.threshold: Optional[float] = None
        self.fired = 0
        self.first_fired: Optional[float] = None
        self.events: List[Dict[str, Any]] = []
        self._stop_on_fire = False

    def arm_stop(self) -> None:
        """Make this watchdog's first firing request an engine stop."""
        self._stop_on_fire = True

    def fire(self, time: float, value: float, **extra: Any) -> None:
        self.fired += 1
        if self.first_fired is None:
            self.first_fired = time
        if len(self.events) < MAX_EVENT_RECORDS:
            record = {"time": time, "value": value}
            record.update(extra)
            self.events.append(record)
        channel = self.context.channel
        channel.emit(self.name, time, value, self.threshold, **extra)
        if self._stop_on_fire:
            channel.stop = True

    def finalize(self) -> Dict[str, Any]:
        if not self.applicable:
            return {"applicable": False}
        return {
            "applicable": True,
            "fired": self.fired,
            "first_fired": self.first_fired,
            "threshold": self.threshold,
            "events": list(self.events),
        }


class GradientBoundWatchdog(Watchdog):
    """Fires when a sample violates the Corollary 5.26 gradient skew bound.

    Shares the pair/limit precomputation of
    :class:`~repro.metrics.observers.GradientBoundObserver` (same tolerance,
    same applicability rule: static graph + configured global skew bound);
    edge-triggered, so one excursion above the bound is one firing however
    many consecutive samples it spans.  On a correct algorithm under the
    paper's assumptions this watchdog stays silent -- the clean-scenario
    tests pin that down.
    """

    name = "watchdog_gradient_bound"

    def __init__(self, context: ObserverContext, *, tolerance: float = 1e-9):
        super().__init__(context)
        self.applicable = (
            not context.has_dynamics and context.global_skew_bound is not None
        )
        self._pairs: List[Tuple[int, int]] = []
        self._limits: List[float] = []
        self._violating = False
        if self.applicable:
            self.threshold = context.global_skew_bound
            weight = paths.kappa_weight(context.graph, context.params)
            distances = paths.all_pairs_distances(context.graph, weight)
            for (u, v), distance in distances.items():
                if u >= v or distance <= 0.0:
                    continue
                self._pairs.append((u, v))
                self._limits.append(
                    context.params.gradient_skew_bound(distance, self.threshold)
                    + tolerance
                )

    def observe(self, view: SampleView) -> None:
        if not self.applicable:
            return
        count = view.count_exceeding("gradient/pairs", self._pairs, self._limits)
        if count and not self._violating:
            self.fire(view.time, float(count), violating_pairs=int(count))
        self._violating = bool(count)


class GlobalSkewWatchdog(Watchdog):
    """Fires when the global skew exceeds the configured ceiling.

    The ceiling is the scenario's global skew bound (the same value the
    gradient limits are computed from); without one the watchdog is
    inapplicable.  Edge-triggered per excursion above the ceiling.
    """

    name = "watchdog_global_skew"

    def __init__(self, context: ObserverContext):
        super().__init__(context)
        self.applicable = context.global_skew_bound is not None
        self._above = False
        if self.applicable:
            self.threshold = context.global_skew_bound

    def observe(self, view: SampleView) -> None:
        if not self.applicable:
            return
        gskew = view.global_skew()
        if gskew > self.threshold and not self._above:
            self.fire(view.time, gskew)
        self._above = gskew > self.threshold


class ConvergenceWatchdog(Watchdog):
    """Fires once, when the global skew first halves its initial value.

    The live twin of ``convergence_time``'s halving criterion, minus the
    "stays halved" hold (an early-exit trigger cannot see the future); a
    run whose initial skew is zero has nothing to converge, so the watchdog
    never fires there and an armed ``--until-stable`` run falls back to the
    full duration.
    """

    name = "watchdog_convergence"

    def __init__(self, context: ObserverContext):
        super().__init__(context)
        self._initial: Optional[float] = None

    def observe(self, view: SampleView) -> None:
        gskew = view.global_skew()
        if self._initial is None:
            self._initial = gskew
            if gskew > 0.0:
                self.threshold = gskew / 2.0
            return
        if self.threshold is not None and self.fired == 0 and gskew <= self.threshold:
            self.fire(view.time, gskew)


class StabilizationWatchdog(Watchdog):
    """Fires once, when the post-insertion stabilization window closes.

    Insertion scenarios only (``meta`` carries ``insertion_time`` and
    ``new_edge``): after the event, the first sample where the skew across
    the inserted edge drops to ``2 kappa_min`` -- the criterion of
    :class:`~repro.metrics.observers.StabilizationWindowObserver` -- fires
    the watchdog.
    """

    name = "watchdog_stabilization"

    def __init__(self, context: ObserverContext):
        super().__init__(context)
        event = context.event_time
        edge = context.new_edge
        self.applicable = event is not None and edge is not None
        if self.applicable:
            self._event = event
            self._u, self._v = edge
            self.threshold = 2.0 * minimum_kappa(context.graph, context.params)

    def observe(self, view: SampleView) -> None:
        if not self.applicable or self.fired:
            return
        if view.time < self._event:
            return
        skew = view.pair_skew(self._u, self._v)
        if skew <= self.threshold:
            self.fire(view.time, skew)


def _register() -> Tuple[str, ...]:
    names = []
    for cls in (
        GradientBoundWatchdog,
        GlobalSkewWatchdog,
        ConvergenceWatchdog,
        StabilizationWatchdog,
    ):
        OBSERVERS[cls.name] = cls
        names.append(cls.name)
    return tuple(names)


WATCHDOG_NAMES = _register()


def is_watchdog_name(name: str) -> bool:
    return name in WATCHDOG_NAMES
