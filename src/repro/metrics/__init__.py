"""Streaming run metrics: observers computed *during* the simulation.

The paper's claims are statements about skew trajectories -- global skew
Theta(D), gradient skew vs. distance, stabilization after an edge insertion.
This package computes those summaries incrementally in the simulation hot
loop instead of walking a fully materialized trace afterwards, which makes
full traces an opt-in debugging artifact (``trace: none`` runs are
constant-memory in the duration) while keeping every reported number
bit-identical to the post-hoc computation it replaced.

Layers:

* :mod:`repro.metrics.streaming` -- scalar single-pass reducers, each the
  exact counterpart of one trace-walking analysis;
* :mod:`repro.metrics.views`    -- one read surface over the three engine
  state layouts (per-node dicts, flat Python lists, NumPy columns);
* :mod:`repro.metrics.kernels`  -- NumPy reductions for the vec backend
  (never materializes per-node dicts);
* :mod:`repro.metrics.observers` -- the observer registry (``global_skew``,
  ``local_skew``, ``convergence_time``, ``mode_counts``,
  ``stabilization_window``, ``gradient_bound_check``, plus opt-in
  ``skew_by_distance``, ``max_estimate_lag``, ``edge_skew_histogram``);
* :mod:`repro.metrics.watchdogs` -- live threshold monitors
  (``watchdog_gradient_bound``, ``watchdog_global_skew``,
  ``watchdog_convergence``, ``watchdog_stabilization``) that emit
  structured telemetry events during the run and back the
  ``--until-stable`` early exit;
* :mod:`repro.metrics.pipeline` -- the per-run pipeline engines feed and the
  cacheable :class:`~repro.metrics.pipeline.ObserverReport` it produces.
"""

from .observers import (
    DEFAULT_OBSERVERS,
    OBSERVERS,
    MetricsError,
    Observer,
    ObserverContext,
    TelemetryChannel,
    make_observer,
    observer_names,
)
from .pipeline import MetricsPipeline, ObserverReport, build_pipeline
from .watchdogs import WATCHDOG_NAMES, Watchdog, is_watchdog_name

__all__ = [
    "DEFAULT_OBSERVERS",
    "MetricsError",
    "MetricsPipeline",
    "OBSERVERS",
    "Observer",
    "ObserverContext",
    "ObserverReport",
    "TelemetryChannel",
    "WATCHDOG_NAMES",
    "Watchdog",
    "build_pipeline",
    "is_watchdog_name",
    "make_observer",
    "observer_names",
]
