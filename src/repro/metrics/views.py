"""Sample views: one read surface over three engine representations.

Observers never touch engine state directly; they read the current sample
through a :class:`SampleView`, of which there is one implementation per
state layout:

* :class:`TraceSampleView` -- per-node dicts (the reference engine's
  :class:`~repro.sim.trace.TraceSample`, or any duck-typed equivalent such
  as the vec backend's lazy samples when replaying a trace);
* :class:`ColumnsView` -- the fast engine's flat Python-list columns
  (:class:`~repro.fastsim.columns.NodeColumns`), read without ever building
  per-node dicts;
* :class:`ArrayView` -- the vec backend's NumPy columns, reduced through
  :mod:`repro.metrics.kernels` (pure array reductions, no dicts).

All three produce bit-identical floats for the same state -- the reductions
are order-insensitive maxima/minima and exact comparisons (see the kernel
module docstring for the argument).  Pair lists (edges, gradient pairs) are
registered once under a key and translated to the view's native indexing on
first use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.aopt_step import MODE_NAMES
from ..network.edge import NodeId

Pair = Tuple[NodeId, NodeId]


class SampleView:
    """Read surface over one recorded sample (subclasses fill the hooks)."""

    time: float = 0.0

    def __init__(self):
        self._gskew: Optional[float] = None

    def _invalidate(self, time: float) -> None:
        self.time = time
        self._gskew = None

    # -- reductions (memoized where several observers share them) -------
    def global_skew(self) -> float:
        if self._gskew is None:
            self._gskew = self._global_skew()
        return self._gskew

    def _global_skew(self) -> float:
        raise NotImplementedError

    def pair_skew(self, u: NodeId, v: NodeId) -> float:
        """``|L_u - L_v|`` for one node pair."""
        raise NotImplementedError

    def max_pair_skew(self, key: str, pairs: Sequence[Pair]) -> float:
        """Largest ``|L_u - L_v|`` over a registered pair list (0.0 empty)."""
        raise NotImplementedError

    def count_exceeding(self, key: str, pairs: Sequence[Pair], limits: Sequence[float]) -> int:
        """How many pairs have ``|L_u - L_v| > limit``."""
        raise NotImplementedError

    def group_max_update(self, key: str, pairs: Sequence[Pair], group: Sequence[int], accumulator) -> None:
        """Fold this sample's pair skews into per-group running maxima."""
        raise NotImplementedError

    def histogram_update(self, key: str, pairs: Sequence[Pair], bin_edges: Sequence[float], counts) -> None:
        """Bucket this sample's pair skews into per-pair histograms."""
        raise NotImplementedError

    def max_estimate_lag(self) -> float:
        """``max_u (max_v L_v - M_u)`` over all nodes."""
        raise NotImplementedError

    def mode_counts_update(self, counts: List[int]) -> None:
        """Add this sample's per-mode-code tallies into ``counts``."""
        raise NotImplementedError

    # -- accumulator allocation (view-native containers) ----------------
    def make_group_accumulator(self, size: int):
        """A zero-filled per-group running-max container."""
        return [0.0] * size

    def make_histogram_counts(self, rows: int, buckets: int):
        """A zero-filled ``rows x buckets`` histogram container."""
        return [[0] * buckets for _ in range(rows)]


class TraceSampleView(SampleView):
    """View over dict-shaped samples (``TraceSample`` or duck-typed)."""

    def __init__(self):
        super().__init__()
        self._sample = None

    def set_sample(self, sample) -> "TraceSampleView":
        self._sample = sample
        self._invalidate(sample.time)
        return self

    def _global_skew(self) -> float:
        return self._sample.global_skew()

    def pair_skew(self, u: NodeId, v: NodeId) -> float:
        logical = self._sample.logical
        return abs(logical[u] - logical[v])

    def max_pair_skew(self, key, pairs) -> float:
        logical = self._sample.logical
        best = 0.0
        for u, v in pairs:
            skew = abs(logical[u] - logical[v])
            if skew > best:
                best = skew
        return best

    def count_exceeding(self, key, pairs, limits) -> int:
        logical = self._sample.logical
        count = 0
        for (u, v), limit in zip(pairs, limits):
            if abs(logical[u] - logical[v]) > limit:
                count += 1
        return count

    def group_max_update(self, key, pairs, group, accumulator) -> None:
        logical = self._sample.logical
        for (u, v), g in zip(pairs, group):
            skew = abs(logical[u] - logical[v])
            if skew > accumulator[g]:
                accumulator[g] = skew

    def histogram_update(self, key, pairs, bin_edges, counts) -> None:
        import bisect

        logical = self._sample.logical
        for index, (u, v) in enumerate(pairs):
            bucket = bisect.bisect_right(bin_edges, abs(logical[u] - logical[v]))
            counts[index][bucket] += 1

    def max_estimate_lag(self) -> float:
        logical = self._sample.logical
        true_max = max(logical.values())
        return true_max - min(self._sample.max_estimates.values())

    def mode_counts_update(self, counts: List[int]) -> None:
        for mode in self._sample.modes.values():
            counts[MODE_NAMES.index(mode)] += 1


class ColumnsView(SampleView):
    """View over the fast engine's flat Python-list columns."""

    def __init__(self, ids: Sequence[NodeId], index: Dict[NodeId, int]):
        super().__init__()
        self._ids = ids
        self._index = index
        self._logical: Sequence[float] = ()
        self._max_estimate: Sequence[float] = ()
        self._mode: Sequence[int] = ()
        self._pair_cache: Dict[str, Tuple[List[int], List[int]]] = {}

    def set_columns(self, time, logical, max_estimate, mode) -> "ColumnsView":
        self._logical = logical
        self._max_estimate = max_estimate
        self._mode = mode
        self._invalidate(time)
        return self

    def _positions(self, key: str, pairs) -> Tuple[List[int], List[int]]:
        cached = self._pair_cache.get(key)
        if cached is None:
            index = self._index
            cached = (
                [index[u] for u, _ in pairs],
                [index[v] for _, v in pairs],
            )
            self._pair_cache[key] = cached
        return cached

    def _global_skew(self) -> float:
        values = self._logical
        return max(values) - min(values) if values else 0.0

    def pair_skew(self, u: NodeId, v: NodeId) -> float:
        logical = self._logical
        return abs(logical[self._index[u]] - logical[self._index[v]])

    def max_pair_skew(self, key, pairs) -> float:
        iu, iv = self._positions(key, pairs)
        logical = self._logical
        best = 0.0
        for a, b in zip(iu, iv):
            skew = abs(logical[a] - logical[b])
            if skew > best:
                best = skew
        return best

    def count_exceeding(self, key, pairs, limits) -> int:
        iu, iv = self._positions(key, pairs)
        logical = self._logical
        count = 0
        for a, b, limit in zip(iu, iv, limits):
            if abs(logical[a] - logical[b]) > limit:
                count += 1
        return count

    def group_max_update(self, key, pairs, group, accumulator) -> None:
        iu, iv = self._positions(key, pairs)
        logical = self._logical
        for a, b, g in zip(iu, iv, group):
            skew = abs(logical[a] - logical[b])
            if skew > accumulator[g]:
                accumulator[g] = skew

    def histogram_update(self, key, pairs, bin_edges, counts) -> None:
        import bisect

        iu, iv = self._positions(key, pairs)
        logical = self._logical
        for index, (a, b) in enumerate(zip(iu, iv)):
            bucket = bisect.bisect_right(bin_edges, abs(logical[a] - logical[b]))
            counts[index][bucket] += 1

    def max_estimate_lag(self) -> float:
        return max(self._logical) - min(self._max_estimate)

    def mode_counts_update(self, counts: List[int]) -> None:
        for code in self._mode:
            counts[code] += 1


class ArrayView(SampleView):
    """View over the vec engine's NumPy columns (reductions in kernels)."""

    def __init__(self, ids: Sequence[NodeId], index: Dict[NodeId, int]):
        super().__init__()
        import numpy as np

        from . import kernels

        self._np = np
        self._kernels = kernels
        self._ids = ids
        self._index = index
        self._logical = None
        self._max_estimate = None
        self._mode = None
        self._pair_cache: Dict[str, Tuple[object, object]] = {}
        self._aux_cache: Dict[str, object] = {}

    def set_columns(self, time, logical, max_estimate, mode) -> "ArrayView":
        self._logical = logical
        self._max_estimate = max_estimate
        self._mode = mode
        self._invalidate(time)
        return self

    def _positions(self, key: str, pairs):
        cached = self._pair_cache.get(key)
        if cached is None:
            np = self._np
            index = self._index
            cached = (
                np.asarray([index[u] for u, _ in pairs], dtype=np.int64),
                np.asarray([index[v] for _, v in pairs], dtype=np.int64),
            )
            self._pair_cache[key] = cached
        return cached

    def _aux(self, key: str, values, dtype):
        cached = self._aux_cache.get(key)
        if cached is None:
            cached = self._np.asarray(list(values), dtype=dtype)
            self._aux_cache[key] = cached
        return cached

    def _global_skew(self) -> float:
        return self._kernels.global_skew(self._logical)

    def pair_skew(self, u: NodeId, v: NodeId) -> float:
        logical = self._logical
        return float(abs(logical[self._index[u]] - logical[self._index[v]]))

    def max_pair_skew(self, key, pairs) -> float:
        iu, iv = self._positions(key, pairs)
        return self._kernels.max_pair_skew(self._logical, iu, iv)

    def count_exceeding(self, key, pairs, limits) -> int:
        iu, iv = self._positions(key, pairs)
        limit_arr = self._aux(key + "/limits", limits, self._np.float64)
        return self._kernels.count_exceeding(self._logical, iu, iv, limit_arr)

    def group_max_update(self, key, pairs, group, accumulator) -> None:
        iu, iv = self._positions(key, pairs)
        group_arr = self._aux(key + "/group", group, self._np.int64)
        self._kernels.group_max_update(self._logical, iu, iv, group_arr, accumulator)

    def histogram_update(self, key, pairs, bin_edges, counts) -> None:
        iu, iv = self._positions(key, pairs)
        edges_arr = self._aux(key + "/bins", bin_edges, self._np.float64)
        self._kernels.histogram_update(self._logical, iu, iv, edges_arr, counts)

    def max_estimate_lag(self) -> float:
        return self._kernels.max_estimate_lag(self._logical, self._max_estimate)

    def mode_counts_update(self, counts: List[int]) -> None:
        self._kernels.mode_counts_update(self._mode, counts)

    def make_group_accumulator(self, size: int):
        return self._np.zeros(size, dtype=self._np.float64)

    def make_histogram_counts(self, rows: int, buckets: int):
        return self._np.zeros((rows, buckets), dtype=self._np.int64)
