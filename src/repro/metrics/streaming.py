"""Scalar streaming reducers shared by observers and trace analyses.

Every reducer here is the single-pass counterpart of one trace-walking
computation that used to live in :mod:`repro.analysis`: the *same* float
comparisons and the *same* update expressions, applied to one sample at a
time instead of a materialized :class:`~repro.sim.trace.Trace`.  The
observers of :mod:`repro.metrics.observers` feed them during the run; the
analysis helpers feed them from a finished trace.  Both paths therefore
produce bit-identical results -- the differential suite asserts this on
every named scenario and backend.

The only end-of-run quantity a streaming pass cannot observe is the time of
the final (forced) sample, which the steady-state window depends on.
:func:`predict_final_time` reproduces the engines' time accumulation loop
exactly (same floats, same ``1e-9`` guard), so the window start can be fixed
before the first sample arrives.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def predict_final_time(duration: float, dt: float) -> float:
    """The time of the final forced trace sample of ``run(duration)``.

    Reproduces ``Engine.run_until`` (and ``VecContext.run_until``) verbatim:
    starting from 0.0, ``dt`` is accumulated while ``t < end - 1e-9``; the
    forced sample is recorded at the accumulated ``t``.  Because this is the
    identical float accumulation, the predicted value is bit-equal to the
    recorded one.
    """
    t = 0.0
    end = 0.0 + float(duration)
    step = float(dt)
    while t < end - 1e-9:
        t += step
    return t


def steady_window_start(start_time: float, end_time: float, fraction: float) -> float:
    """Start of the window covering the last ``fraction`` of a run.

    The expression of :func:`repro.analysis.skew.steady_state_window`,
    verbatim.
    """
    return end_time - fraction * (end_time - start_time)


class PeakTracker:
    """Running maximum of a scalar series from ``start`` onwards.

    Mirrors the ``best = 0.0; if sample.time >= start: best = max(best, v)``
    loops of :func:`repro.analysis.skew.max_global_skew` and friends: the
    peak starts at 0.0 and is only replaced by strictly larger values.
    """

    __slots__ = ("start", "peak")

    def __init__(self, start: float = 0.0):
        self.start = start
        self.peak = 0.0

    def update(self, time: float, value: float) -> None:
        if time >= self.start and value > self.peak:
            self.peak = value


class HighWater:
    """Running maximum without a floor (``None`` until the first value)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def update(self, value: float) -> None:
        if self.value is None or value > self.value:
            self.value = value


class HoldDetector:
    """First time a series drops to/below ``bound`` and stays there.

    Mirrors :func:`repro.analysis.stabilization.global_skew_convergence_time`:
    the candidate time is set when ``value <= bound`` first holds and reset
    whenever the bound is violated again; at the end of the stream the
    surviving candidate (or ``None``) is the answer.
    """

    __slots__ = ("bound", "start", "candidate")

    def __init__(self, bound: float, start: float = 0.0):
        self.bound = bound
        self.start = start
        self.candidate: Optional[float] = None

    def update(self, time: float, value: float) -> None:
        if time < self.start:
            return
        if value <= self.bound:
            if self.candidate is None:
                self.candidate = time
        else:
            self.candidate = None


class StabilizationTracker:
    """Streaming counterpart of :func:`repro.analysis.stabilization.stabilization_time`.

    Feeds on the skew ``|L_u - L_v|`` over the inserted edge; only samples
    with ``time >= event_time`` participate, exactly like the post-hoc
    filter.  ``result()`` returns ``(stabilized, stabilization_time,
    elapsed_since_event, max_skew_after_event, final_skew)``.
    """

    __slots__ = ("bound", "event_time", "dwell", "_max", "_final", "_end", "_candidate", "_seen")

    def __init__(self, bound: float, event_time: float, dwell: Optional[float] = None):
        if bound < 0.0:
            raise ValueError("bound must be non-negative")
        self.bound = bound
        self.event_time = event_time
        self.dwell = dwell
        self._max = HighWater()
        self._final = 0.0
        self._end = 0.0
        self._candidate: Optional[float] = None
        self._seen = False

    def update(self, time: float, skew: float) -> None:
        if time < self.event_time:
            return
        self._seen = True
        self._max.update(skew)
        self._final = skew
        self._end = time
        if skew <= self.bound:
            if self._candidate is None:
                self._candidate = time
        else:
            self._candidate = None

    @property
    def observed(self) -> bool:
        return self._seen

    def result(self) -> Tuple[bool, Optional[float], Optional[float], float, float]:
        if not self._seen:
            raise ValueError("the trace has no samples after the event time")
        max_skew = self._max.value if self._max.value is not None else 0.0
        candidate = self._candidate
        if candidate is None:
            return (False, None, None, max_skew, self._final)
        if self.dwell is not None and self._end - candidate < self.dwell:
            return (False, None, None, max_skew, self._final)
        return (True, candidate, candidate - self.event_time, max_skew, self._final)


class EventSnapshot:
    """Streaming counterpart of ``trace.sample_at(event_time)`` for one scalar.

    ``Trace.sample_at`` picks the latest sample with ``time <= t + 1e-12``
    and falls back to the *first* sample when every sample is later; this
    tracker keeps the corresponding scalar with the identical comparison.
    """

    __slots__ = ("event_time", "_first", "_at_event")

    def __init__(self, event_time: float):
        self.event_time = event_time
        self._first: Optional[float] = None
        self._at_event: Optional[float] = None

    def update(self, time: float, value: float) -> None:
        if self._first is None:
            self._first = value
        if time <= self.event_time + 1e-12:
            self._at_event = value

    @property
    def value(self) -> Optional[float]:
        return self._at_event if self._at_event is not None else self._first


class GradientCounter:
    """Per-sample gradient-bound violation counting over a fixed pair list.

    ``pairs`` is a list of ``(u, v, distance, bound)`` entries; a violation
    is ``skew > bound + tolerance`` -- the comparison of
    :func:`repro.analysis.gradient.check_sample`, verbatim.  With
    ``collect=True`` every violation is kept as ``(time, index, skew)`` so
    :func:`repro.analysis.gradient.check_trace` can rebuild its rich
    violation objects; the observers only keep the count.
    """

    __slots__ = ("pairs", "limits", "tolerance", "count", "collected", "_collect")

    def __init__(self, pairs, *, tolerance: float = 1e-9, collect: bool = False):
        self.pairs = list(pairs)
        self.tolerance = tolerance
        self.limits = [bound + tolerance for (_, _, _, bound) in self.pairs]
        self.count = 0
        self._collect = collect
        self.collected: List[Tuple[float, int, float]] = []

    def update_skews(self, time: float, skews) -> None:
        """Consume one sample's per-pair skews (same order as ``pairs``)."""
        limits = self.limits
        for index, skew in enumerate(skews):
            if skew > limits[index]:
                self.count += 1
                if self._collect:
                    self.collected.append((time, index, skew))


class DistanceGroupMax:
    """Per-distance running maximum skew (dict-path core).

    Mirrors :func:`repro.analysis.skew.max_skew_by_distance`: a distance key
    enters the result only once a strictly positive skew is seen for it, and
    the reported mapping is sorted by distance.  ``keep_zeros=True`` instead
    pre-seeds every key at 0.0 (the behaviour of
    :func:`repro.analysis.gradient.profile`).
    """

    __slots__ = ("maxima", "_keep_zeros")

    def __init__(self, keys=(), *, keep_zeros: bool = False):
        self._keep_zeros = keep_zeros
        self.maxima = {key: 0.0 for key in keys} if keep_zeros else {}

    def update(self, key: float, skew: float) -> None:
        if skew > self.maxima.get(key, 0.0):
            self.maxima[key] = skew
        elif self._keep_zeros and key not in self.maxima:
            self.maxima[key] = 0.0

    def result(self):
        return dict(sorted(self.maxima.items()))
