"""Built-in streaming observers and their registry.

An observer consumes one :class:`~repro.metrics.views.SampleView` per
recorded sample and produces a plain-JSON payload at the end of the run.
The built-ins cover everything :class:`~repro.experiments.results.RunSummary`
reports (the ``DEFAULT_OBSERVERS`` set) plus opt-in extras:

=====================  =======================================================
``global_skew``        initial / max / final / steady-window global skew
``local_skew``         max / steady / post-event local skew over base edges
``convergence_time``   first time the global skew halves and stays halved
``mode_counts``        (node, sample) tallies per algorithm mode
``stabilization_window``  Listing-1 insertion stabilization measurement
``gradient_bound_check``  Corollary 5.26 gradient-bound violation count
``skew_by_distance``   per-weighted-distance maximum skew profile (opt-in)
``max_estimate_lag``   largest ``max_v L_v - M_u`` over the run (opt-in)
``edge_skew_histogram``  per-base-edge skew histograms (opt-in)
=====================  =======================================================

Every default observer reproduces the float expressions of the post-hoc
trace analysis it replaces (see :mod:`repro.metrics.streaming`), so its
payload is bit-identical to the value the pre-refactor code computed from a
full trace.  Observers that do not apply to a scenario (no insertion event,
churn making distances ambiguous) report ``applicable: False`` instead of
guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.aopt_step import MODE_NAMES
from ..core.parameters import Parameters
from ..network import paths
from ..sim.runner import minimum_kappa
from . import streaming
from .views import SampleView


class MetricsError(ValueError):
    """Raised on invalid observer configuration or lookups."""


class TelemetryChannel:
    """The live side-channel watchdog observers write to.

    One per :class:`ObserverContext` (so one per pipeline).  ``sink`` is an
    optional callable ``sink(event_type, **fields)`` -- when attached (the
    ``--telemetry`` path) every watchdog firing is emitted as a structured
    event *during* the run; when absent the firings are still tallied in
    ``fired`` and in each watchdog's own payload, so a cached result can
    replay them later.  ``stop`` is the early-exit flag: a watchdog armed
    via :meth:`~repro.metrics.pipeline.MetricsPipeline` ``stop_on`` sets it
    and the engines' ``run_until`` loops poll it once per recorded sample.
    """

    __slots__ = ("sink", "stop", "fired")

    def __init__(self):
        self.sink: Optional[Callable[..., None]] = None
        self.stop = False
        self.fired: Dict[str, int] = {}

    def emit(self, watchdog: str, time: float, value, threshold, **extra: Any) -> None:
        self.fired[watchdog] = self.fired.get(watchdog, 0) + 1
        if self.sink is not None:
            self.sink(
                "watchdog_fired",
                watchdog=watchdog,
                sim_time=time,
                value=value,
                threshold=threshold,
                **extra,
            )


@dataclass
class ObserverContext:
    """Everything an observer may need about the scenario being run.

    Built once per run by :func:`repro.metrics.pipeline.build_pipeline`;
    ``steady_start`` is filled in by the pipeline before the first sample
    (predicted for live streaming, measured for trace replays).
    """

    graph: Any = None
    base_edges: Sequence[Tuple[int, int]] = ()
    params: Optional[Parameters] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    global_skew_bound: Optional[float] = None
    has_dynamics: bool = False
    steady_fraction: float = 0.25
    steady_start: Optional[float] = None
    channel: TelemetryChannel = field(default_factory=TelemetryChannel)

    @property
    def event_time(self) -> Optional[float]:
        return self.meta.get("insertion_time")

    @property
    def new_edge(self) -> Optional[Tuple[int, int]]:
        edge = self.meta.get("new_edge")
        return tuple(edge) if edge is not None else None


class Observer:
    """Base class: per-sample hook plus an end-of-run payload."""

    name = "observer"

    def __init__(self, context: ObserverContext):
        self.context = context

    def observe(self, view: SampleView) -> None:
        raise NotImplementedError

    def finalize(self) -> Dict[str, Any]:
        raise NotImplementedError


class GlobalSkewObserver(Observer):
    """Initial, maximum, final and steady-window global skew."""

    name = "global_skew"

    def __init__(self, context):
        super().__init__(context)
        self._initial: Optional[float] = None
        self._final = 0.0
        self._max = streaming.PeakTracker()
        self._steady: Optional[streaming.PeakTracker] = None

    def observe(self, view: SampleView) -> None:
        gskew = view.global_skew()
        if self._initial is None:
            self._initial = gskew
        self._final = gskew
        self._max.update(view.time, gskew)
        if self._steady is None and self.context.steady_start is not None:
            self._steady = streaming.PeakTracker(start=self.context.steady_start)
        if self._steady is not None:
            self._steady.update(view.time, gskew)

    def finalize(self) -> Dict[str, Any]:
        return {
            "initial": self._initial if self._initial is not None else 0.0,
            "max": self._max.peak,
            "final": self._final,
            "steady_max": self._steady.peak if self._steady is not None else 0.0,
        }


class LocalSkewObserver(Observer):
    """Maximum, steady-window and post-event local skew over base edges."""

    name = "local_skew"

    def __init__(self, context):
        super().__init__(context)
        self._edges = [tuple(edge) for edge in context.base_edges]
        self._max = streaming.PeakTracker()
        self._steady: Optional[streaming.PeakTracker] = None
        event = context.event_time
        self._post_event = (
            streaming.PeakTracker(start=event) if event is not None else None
        )

    def observe(self, view: SampleView) -> None:
        lskew = view.max_pair_skew("local_skew/base_edges", self._edges)
        self._max.update(view.time, lskew)
        if self._steady is None and self.context.steady_start is not None:
            self._steady = streaming.PeakTracker(start=self.context.steady_start)
        if self._steady is not None:
            self._steady.update(view.time, lskew)
        if self._post_event is not None:
            self._post_event.update(view.time, lskew)

    def finalize(self) -> Dict[str, Any]:
        return {
            "max": self._max.peak,
            "steady_max": self._steady.peak if self._steady is not None else 0.0,
            "post_event_max": (
                self._post_event.peak if self._post_event is not None else None
            ),
        }


class ConvergenceTimeObserver(Observer):
    """First time the global skew halves its initial value and stays halved."""

    name = "convergence_time"

    def __init__(self, context):
        super().__init__(context)
        self._detector: Optional[streaming.HoldDetector] = None
        self._initial: Optional[float] = None

    def observe(self, view: SampleView) -> None:
        gskew = view.global_skew()
        if self._initial is None:
            self._initial = gskew
            if gskew > 0.0:
                self._detector = streaming.HoldDetector(gskew / 2.0)
        if self._detector is not None:
            self._detector.update(view.time, gskew)

    def finalize(self) -> Dict[str, Any]:
        return {
            "halving_time": (
                self._detector.candidate if self._detector is not None else None
            ),
        }


class ModeCountsObserver(Observer):
    """(node, sample) tallies per algorithm mode (fast / slow / free)."""

    name = "mode_counts"

    def __init__(self, context):
        super().__init__(context)
        self._counts = [0] * len(MODE_NAMES)

    def observe(self, view: SampleView) -> None:
        view.mode_counts_update(self._counts)

    def finalize(self) -> Dict[str, Any]:
        return {
            "counts": {
                MODE_NAMES[code]: count
                for code, count in enumerate(self._counts)
                if count
            }
        }


class StabilizationWindowObserver(Observer):
    """Edge-insertion stabilization: skew at the event, settle time, bound.

    Streaming counterpart of the E4 measurement: the skew over the inserted
    edge must drop below ``2 kappa_min`` and stay there (see
    :func:`repro.analysis.stabilization.stabilization_time`).
    """

    name = "stabilization_window"

    def __init__(self, context):
        super().__init__(context)
        event = context.event_time
        edge = context.new_edge
        self._applicable = event is not None and edge is not None
        if self._applicable:
            self._u, self._v = edge
            criterion = 2.0 * minimum_kappa(context.graph, context.params)
            self._tracker = streaming.StabilizationTracker(criterion, event)
            self._snapshot = streaming.EventSnapshot(event)

    def observe(self, view: SampleView) -> None:
        if not self._applicable:
            return
        skew = view.pair_skew(self._u, self._v)
        self._tracker.update(view.time, skew)
        self._snapshot.update(view.time, skew)

    def finalize(self) -> Dict[str, Any]:
        if not self._applicable:
            return {"applicable": False}
        if self._snapshot.value is None:  # no samples at all (empty run)
            return {"applicable": True, "observed": False}
        # Samples exist: a run with none after the event is the same error
        # the post-hoc measurement raised.
        stabilized, at_time, elapsed, max_after, final = self._tracker.result()
        return {
            "applicable": True,
            "observed": True,
            "event_time": self.context.event_time,
            "skew_at_event": self._snapshot.value,
            "stabilized": stabilized,
            "stabilization_time": at_time,
            "elapsed_since_event": elapsed,
            "max_skew_after_event": max_after,
            "final_skew": final,
        }


class GradientBoundObserver(Observer):
    """Count of Corollary 5.26 gradient-bound violations over the run.

    Applicable only on static graphs with a configured global skew bound --
    churn makes weighted distances ambiguous, exactly the condition the
    post-hoc summary used.
    """

    name = "gradient_bound_check"

    def __init__(self, context, *, tolerance: float = 1e-9):
        super().__init__(context)
        self._applicable = (
            not context.has_dynamics and context.global_skew_bound is not None
        )
        self._pairs: List[Tuple[int, int]] = []
        self._limits: List[float] = []
        self._count = 0
        if self._applicable:
            weight = paths.kappa_weight(context.graph, context.params)
            distances = paths.all_pairs_distances(context.graph, weight)
            bound = context.global_skew_bound
            for (u, v), distance in distances.items():
                if u >= v or distance <= 0.0:
                    continue
                self._pairs.append((u, v))
                self._limits.append(
                    context.params.gradient_skew_bound(distance, bound) + tolerance
                )

    def observe(self, view: SampleView) -> None:
        if not self._applicable:
            return
        self._count += view.count_exceeding(
            "gradient/pairs", self._pairs, self._limits
        )

    def finalize(self) -> Dict[str, Any]:
        if not self._applicable:
            return {"applicable": False}
        return {"applicable": True, "violations": self._count}


class SkewByDistanceObserver(Observer):
    """Maximum observed skew per exact weighted distance (opt-in).

    The streaming counterpart of
    :func:`repro.analysis.skew.max_skew_by_distance` (kappa weight): a
    distance enters the profile only once a strictly positive skew is seen.
    """

    name = "skew_by_distance"

    def __init__(self, context):
        super().__init__(context)
        weight = paths.kappa_weight(context.graph, context.params)
        distances = paths.all_pairs_distances(context.graph, weight)
        keys: List[float] = []
        key_index: Dict[float, int] = {}
        self._pairs: List[Tuple[int, int]] = []
        self._group: List[int] = []
        for (u, v), distance in distances.items():
            if u >= v or distance <= 0.0:
                continue
            key = round(distance, 9)
            slot = key_index.get(key)
            if slot is None:
                slot = len(keys)
                key_index[key] = slot
                keys.append(key)
            self._pairs.append((u, v))
            self._group.append(slot)
        self._keys = keys
        self._accumulator = None

    def observe(self, view: SampleView) -> None:
        if not self._pairs:
            return
        if self._accumulator is None:
            self._accumulator = view.make_group_accumulator(len(self._keys))
        view.group_max_update(
            "skew_by_distance/pairs", self._pairs, self._group, self._accumulator
        )

    def finalize(self) -> Dict[str, Any]:
        profile: Dict[float, float] = {}
        if self._accumulator is not None:
            for key, value in zip(self._keys, self._accumulator):
                value = float(value)
                if value > 0.0:
                    profile[key] = value
        items = sorted(profile.items())
        return {
            "distances": [distance for distance, _ in items],
            "max_skew": [skew for _, skew in items],
        }


class MaxEstimateLagObserver(Observer):
    """Largest ``max_v L_v - M_u`` over all nodes and samples (opt-in)."""

    name = "max_estimate_lag"

    def __init__(self, context):
        super().__init__(context)
        self._max = streaming.HighWater()

    def observe(self, view: SampleView) -> None:
        self._max.update(view.max_estimate_lag())

    def finalize(self) -> Dict[str, Any]:
        return {"max": self._max.value}


class EdgeSkewHistogramObserver(Observer):
    """Per-base-edge histograms of the skew across the edge (opt-in).

    Buckets are ``bins`` equal-width intervals over ``[0, upper]`` plus one
    overflow bucket; ``upper`` defaults to the configured global skew bound
    (or 1.0 when no bound is known), so the histogram is deterministic from
    the scenario alone.
    """

    name = "edge_skew_histogram"

    def __init__(self, context, *, bins: int = 16):
        super().__init__(context)
        if bins < 1:
            raise MetricsError(f"edge_skew_histogram needs bins >= 1, got {bins}")
        upper = context.global_skew_bound
        if upper is None or upper <= 0.0:
            upper = 1.0
        self._edges = [tuple(edge) for edge in context.base_edges]
        self._bin_edges = [upper * (i + 1) / bins for i in range(bins)]
        self._counts = None

    def observe(self, view: SampleView) -> None:
        if not self._edges:
            return
        if self._counts is None:
            self._counts = view.make_histogram_counts(
                len(self._edges), len(self._bin_edges) + 1
            )
        view.histogram_update(
            "edge_skew_histogram/edges", self._edges, self._bin_edges, self._counts
        )

    def finalize(self) -> Dict[str, Any]:
        counts: List[List[int]] = []
        if self._counts is not None:
            counts = [[int(c) for c in row] for row in self._counts]
        return {
            "edges": [list(edge) for edge in self._edges],
            "bin_edges": list(self._bin_edges),
            "counts": counts,
        }


#: Observer registry: name -> factory(context) -> Observer.
OBSERVERS: Dict[str, Callable[[ObserverContext], Observer]] = {
    GlobalSkewObserver.name: GlobalSkewObserver,
    LocalSkewObserver.name: LocalSkewObserver,
    ConvergenceTimeObserver.name: ConvergenceTimeObserver,
    ModeCountsObserver.name: ModeCountsObserver,
    StabilizationWindowObserver.name: StabilizationWindowObserver,
    GradientBoundObserver.name: GradientBoundObserver,
    SkewByDistanceObserver.name: SkewByDistanceObserver,
    MaxEstimateLagObserver.name: MaxEstimateLagObserver,
    EdgeSkewHistogramObserver.name: EdgeSkewHistogramObserver,
}

#: The set every run gets unless the spec selects otherwise: exactly what
#: :class:`~repro.experiments.results.RunSummary` needs.
DEFAULT_OBSERVERS: Tuple[str, ...] = (
    "global_skew",
    "local_skew",
    "convergence_time",
    "mode_counts",
    "stabilization_window",
    "gradient_bound_check",
)


def observer_names() -> List[str]:
    return sorted(OBSERVERS)


def make_observer(name: str, context: ObserverContext) -> Observer:
    try:
        factory = OBSERVERS[name]
    except KeyError:
        known = ", ".join(observer_names())
        raise MetricsError(f"unknown observer {name!r}; known: {known}") from None
    return factory(context)
