"""The directed dynamic estimate graph ``G = (V, E(t))``.

Edges are directed: ``(u, v) in E(t)`` means that at time ``t`` node ``u`` has
a means of estimating ``v``'s clock.  An undirected edge ``{u, v}`` exists when
both directions are present.  The asymmetry models the (bounded) delay with
which endpoints learn about link status changes.

The graph also stores a *schedule* of future edge events so that scenarios can
be described declaratively and replayed by the simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .edge import DEFAULT_EDGE_PARAMS, EdgeKey, EdgeParams, NodeId


class GraphError(ValueError):
    """Raised on invalid graph manipulations."""


@dataclass(frozen=True, order=True)
class EdgeEvent:
    """A scheduled directed edge appearance or disappearance."""

    time: float
    kind: str  # "up" or "down"
    source: NodeId
    target: NodeId

    def __post_init__(self):
        if self.kind not in ("up", "down"):
            raise GraphError(f"unknown edge event kind {self.kind!r}")
        if self.time < 0.0:
            raise GraphError(f"event times must be non-negative, got {self.time}")


@dataclass(frozen=True, order=True)
class NodeResetEvent:
    """A scheduled node restart: clocks and algorithm state start over.

    At ``time`` the node's hardware and logical clocks are replaced with
    fresh clocks at ``value`` and its algorithm instance is recreated, as if
    the node had crashed and rebooted with no memory of the run so far.  The
    surrounding outage (its edges going down and coming back) is expressed
    through ordinary edge events.
    """

    time: float
    node: NodeId
    value: float = 0.0

    def __post_init__(self):
        if self.time < 0.0:
            raise GraphError(f"event times must be non-negative, got {self.time}")


class DynamicGraph:
    """Mutable directed graph with per-edge parameters and an event schedule."""

    def __init__(self, nodes: Iterable[NodeId]):
        self._nodes: List[NodeId] = sorted(set(int(n) for n in nodes))
        if not self._nodes:
            raise GraphError("a dynamic graph needs at least one node")
        self._node_set: Set[NodeId] = set(self._nodes)
        self._out: Dict[NodeId, Set[NodeId]] = {n: set() for n in self._nodes}
        self._params: Dict[EdgeKey, EdgeParams] = {}
        self._schedule: List[EdgeEvent] = []
        self._schedule_sorted = True
        self._node_resets: List[NodeResetEvent] = []
        self._node_resets_sorted = True

    # ------------------------------------------------------------------
    # Node and edge accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def has_node(self, node: NodeId) -> bool:
        return node in self._node_set

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Out-neighbors of ``node``: the nodes it currently can estimate."""
        self._require_node(node)
        return set(self._out[node])

    def neighbors_view(self, node: NodeId) -> Set[NodeId]:
        """Live out-neighbor set of ``node`` -- no defensive copy.

        The returned set is the graph's internal state and MUST be treated as
        read-only; it changes when edge events are applied.  Hot loops (the
        fast simulation backend) use this accessor where the per-call copy of
        :meth:`neighbors` would dominate the runtime.
        """
        self._require_node(node)
        return self._out[node]

    def symmetric_neighbors(self, node: NodeId) -> Set[NodeId]:
        """Neighbors connected by an undirected (bidirectional) edge."""
        self._require_node(node)
        return {v for v in self._out[node] if node in self._out[v]}

    def has_directed_edge(self, source: NodeId, target: NodeId) -> bool:
        self._require_node(source)
        self._require_node(target)
        return target in self._out[source]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when the undirected edge ``{u, v}`` exists (both directions)."""
        return self.has_directed_edge(u, v) and self.has_directed_edge(v, u)

    def directed_edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        for u in self._nodes:
            for v in sorted(self._out[u]):
                yield (u, v)

    def edges(self) -> Iterator[EdgeKey]:
        """Iterate over undirected edges present in both directions."""
        seen: Set[EdgeKey] = set()
        for u in self._nodes:
            for v in self._out[u]:
                key = EdgeKey.of(u, v)
                if key in seen:
                    continue
                if self.has_edge(u, v):
                    seen.add(key)
                    yield key

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------------
    # Edge parameters
    # ------------------------------------------------------------------
    def set_edge_params(self, u: NodeId, v: NodeId, params: EdgeParams) -> None:
        self._require_node(u)
        self._require_node(v)
        self._params[EdgeKey.of(u, v)] = params

    def edge_params(self, u: NodeId, v: NodeId) -> EdgeParams:
        """Parameters of edge ``{u, v}`` (defaults apply if never set)."""
        return self._params.get(EdgeKey.of(u, v), DEFAULT_EDGE_PARAMS)

    def known_edge_params(self) -> Dict[EdgeKey, EdgeParams]:
        return dict(self._params)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_directed_edge(
        self, source: NodeId, target: NodeId, params: Optional[EdgeParams] = None
    ) -> None:
        self._require_node(source)
        self._require_node(target)
        if source == target:
            raise GraphError(f"self loops are not allowed ({source})")
        self._out[source].add(target)
        if params is not None:
            self._params[EdgeKey.of(source, target)] = params

    def remove_directed_edge(self, source: NodeId, target: NodeId) -> None:
        self._require_node(source)
        self._require_node(target)
        self._out[source].discard(target)

    def add_edge(
        self, u: NodeId, v: NodeId, params: Optional[EdgeParams] = None
    ) -> None:
        """Add the undirected edge ``{u, v}`` (both directions at once)."""
        self.add_directed_edge(u, v, params)
        self.add_directed_edge(v, u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``{u, v}`` (both directions)."""
        self.remove_directed_edge(u, v)
        self.remove_directed_edge(v, u)

    # ------------------------------------------------------------------
    # Event schedule
    # ------------------------------------------------------------------
    def schedule_edge_up(
        self,
        time: float,
        u: NodeId,
        v: NodeId,
        *,
        params: Optional[EdgeParams] = None,
        skew: float = 0.0,
    ) -> None:
        """Schedule the undirected edge ``{u, v}`` to appear at ``time``.

        ``skew`` delays the appearance of the ``(v, u)`` direction, modeling
        asymmetric link detection; it must not exceed the detection delay
        ``tau`` of the edge.
        """
        self._require_node(u)
        self._require_node(v)
        if params is not None:
            self.set_edge_params(u, v, params)
        tau = self.edge_params(u, v).tau
        if skew < 0.0 or skew > tau + 1e-12:
            raise GraphError(
                f"edge-up skew {skew} must lie in [0, tau={tau}] for edge ({u},{v})"
            )
        self._push_event(EdgeEvent(time, "up", u, v))
        self._push_event(EdgeEvent(time + skew, "up", v, u))

    def schedule_edge_down(
        self, time: float, u: NodeId, v: NodeId, *, skew: float = 0.0
    ) -> None:
        """Schedule the undirected edge ``{u, v}`` to disappear at ``time``."""
        self._require_node(u)
        self._require_node(v)
        tau = self.edge_params(u, v).tau
        if skew < 0.0 or skew > tau + 1e-12:
            raise GraphError(
                f"edge-down skew {skew} must lie in [0, tau={tau}] for edge ({u},{v})"
            )
        self._push_event(EdgeEvent(time, "down", u, v))
        self._push_event(EdgeEvent(time + skew, "down", v, u))

    def schedule_directed_event(self, event: EdgeEvent) -> None:
        self._require_node(event.source)
        self._require_node(event.target)
        self._push_event(event)

    def pending_events(self) -> List[EdgeEvent]:
        self._sort_schedule()
        return list(self._schedule)

    def pop_events_until(self, time: float) -> List[EdgeEvent]:
        """Remove and return all scheduled events with ``event.time <= time``."""
        self._sort_schedule()
        due: List[EdgeEvent] = []
        rest: List[EdgeEvent] = []
        for event in self._schedule:
            if event.time <= time + 1e-12:
                due.append(event)
            else:
                rest.append(event)
        self._schedule = rest
        return due

    def apply_event(self, event: EdgeEvent) -> None:
        """Apply a directed edge event to the current edge set."""
        if event.kind == "up":
            self.add_directed_edge(event.source, event.target)
        else:
            self.remove_directed_edge(event.source, event.target)

    # ------------------------------------------------------------------
    # Node-reset schedule (crash/restart scenarios)
    # ------------------------------------------------------------------
    def schedule_node_reset(
        self, time: float, node: NodeId, *, value: float = 0.0
    ) -> None:
        """Schedule ``node`` to restart at ``time`` with clocks at ``value``.

        The engine interprets the event as a crash/restart: clocks are
        replaced and the algorithm instance is rebuilt from its factory.
        Engines that do not implement node restarts must reject graphs with
        pending resets (``UnsupportedScenarioError``) so the established
        reference fallback applies.
        """
        self._require_node(node)
        self._node_resets.append(NodeResetEvent(time, node, float(value)))
        self._node_resets_sorted = False

    def pending_node_resets(self) -> List[NodeResetEvent]:
        self._sort_node_resets()
        return list(self._node_resets)

    def pop_node_resets_until(self, time: float) -> List[NodeResetEvent]:
        """Remove and return all node resets with ``event.time <= time``."""
        self._sort_node_resets()
        due: List[NodeResetEvent] = []
        rest: List[NodeResetEvent] = []
        for event in self._node_resets:
            if event.time <= time + 1e-12:
                due.append(event)
            else:
                rest.append(event)
        self._node_resets = rest
        return due

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[NodeId, Set[NodeId]]:
        """Symmetric adjacency over undirected edges (copy)."""
        return {n: self.symmetric_neighbors(n) for n in self._nodes}

    def is_connected(self) -> bool:
        """Connectivity of the undirected graph induced by symmetric edges."""
        if not self._nodes:
            return True
        adjacency = self.adjacency()
        start = self._nodes[0]
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(self._nodes)

    def copy(self) -> "DynamicGraph":
        clone = DynamicGraph(self._nodes)
        for u in self._nodes:
            clone._out[u] = set(self._out[u])
        clone._params = dict(self._params)
        clone._schedule = list(self._schedule)
        clone._schedule_sorted = self._schedule_sorted
        clone._node_resets = list(self._node_resets)
        clone._node_resets_sorted = self._node_resets_sorted
        return clone

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_node(self, node: NodeId) -> None:
        if node not in self._node_set:
            raise GraphError(f"unknown node {node}")

    def _push_event(self, event: EdgeEvent) -> None:
        self._schedule.append(event)
        self._schedule_sorted = False

    def _sort_schedule(self) -> None:
        if not self._schedule_sorted:
            self._schedule.sort()
            self._schedule_sorted = True

    def _sort_node_resets(self) -> None:
        if not self._node_resets_sorted:
            self._node_resets.sort()
            self._node_resets_sorted = True
