"""Weighted paths and distances over the estimate graph.

The gradient skew bound is expressed in terms of the *weight* of a path,
``kappa_p = sum_e kappa_e`` (or the uncertainty ``epsilon_p = sum_e epsilon_e``
for lower bounds).  This module computes shortest weighted paths and distances
under a caller-supplied edge weight function.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .dynamic_graph import DynamicGraph, GraphError
from .edge import NodeId

EdgeWeight = Callable[[NodeId, NodeId], float]


def epsilon_weight(graph: DynamicGraph) -> EdgeWeight:
    """Weight function returning the estimate uncertainty of each edge."""

    def weight(u: NodeId, v: NodeId) -> float:
        return graph.edge_params(u, v).epsilon

    return weight


def kappa_weight(graph: DynamicGraph, params) -> EdgeWeight:
    """Weight function returning the algorithm weight ``kappa_e`` of each edge."""

    def weight(u: NodeId, v: NodeId) -> float:
        edge = graph.edge_params(u, v)
        return params.kappa_for(edge.epsilon, edge.tau)

    return weight


def hop_weight(_graph: DynamicGraph) -> EdgeWeight:
    """Weight function assigning unit weight to every edge."""

    def weight(_u: NodeId, _v: NodeId) -> float:
        return 1.0

    return weight


def path_weight(path: Sequence[NodeId], weight: EdgeWeight) -> float:
    """Total weight of an explicit path (0 for a single-node path)."""
    if len(path) < 1:
        raise GraphError("a path needs at least one node")
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += weight(u, v)
    return total


def path_exists(graph: DynamicGraph, path: Sequence[NodeId]) -> bool:
    """True when every consecutive pair of the path is an undirected edge."""
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


def shortest_distances(
    graph: DynamicGraph,
    source: NodeId,
    weight: Optional[EdgeWeight] = None,
) -> Dict[NodeId, float]:
    """Dijkstra distances from ``source`` over the symmetric edge set."""
    if weight is None:
        weight = epsilon_weight(graph)
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source}")
    dist: Dict[NodeId, float] = {source: 0.0}
    visited: Dict[NodeId, bool] = {}
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if visited.get(node):
            continue
        visited[node] = True
        for other in graph.symmetric_neighbors(node):
            w = weight(node, other)
            if w < 0.0:
                raise GraphError(f"negative edge weight on ({node}, {other})")
            nd = d + w
            if nd < dist.get(other, float("inf")):
                dist[other] = nd
                heapq.heappush(heap, (nd, other))
    return dist


def shortest_path(
    graph: DynamicGraph,
    source: NodeId,
    target: NodeId,
    weight: Optional[EdgeWeight] = None,
) -> List[NodeId]:
    """One shortest weighted path from ``source`` to ``target``."""
    if weight is None:
        weight = epsilon_weight(graph)
    if not graph.has_node(source) or not graph.has_node(target):
        raise GraphError("unknown endpoint")
    dist: Dict[NodeId, float] = {source: 0.0}
    prev: Dict[NodeId, NodeId] = {}
    visited: Dict[NodeId, bool] = {}
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if visited.get(node):
            continue
        visited[node] = True
        if node == target:
            break
        for other in graph.symmetric_neighbors(node):
            nd = d + weight(node, other)
            if nd < dist.get(other, float("inf")):
                dist[other] = nd
                prev[other] = node
                heapq.heappush(heap, (nd, other))
    if target not in dist:
        raise GraphError(f"no path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def weighted_distance(
    graph: DynamicGraph,
    source: NodeId,
    target: NodeId,
    weight: Optional[EdgeWeight] = None,
) -> float:
    """Shortest weighted distance between two nodes."""
    distances = shortest_distances(graph, source, weight)
    if target not in distances:
        raise GraphError(f"no path from {source} to {target}")
    return distances[target]


def weighted_diameter(
    graph: DynamicGraph, weight: Optional[EdgeWeight] = None
) -> float:
    """Maximum over all pairs of the shortest weighted distance."""
    if weight is None:
        weight = epsilon_weight(graph)
    best = 0.0
    for source in graph.nodes:
        distances = shortest_distances(graph, source, weight)
        if len(distances) != graph.node_count:
            raise GraphError("weighted_diameter requires a connected graph")
        best = max(best, max(distances.values()))
    return best


def all_pairs_distances(
    graph: DynamicGraph, weight: Optional[EdgeWeight] = None
) -> Dict[Tuple[NodeId, NodeId], float]:
    """All-pairs shortest weighted distances (symmetric, includes (u, u) = 0)."""
    result: Dict[Tuple[NodeId, NodeId], float] = {}
    for source in graph.nodes:
        for target, d in shortest_distances(graph, source, weight).items():
            result[(source, target)] = d
    return result


def pairs_at_distance(
    graph: DynamicGraph,
    lower: float,
    upper: float,
    weight: Optional[EdgeWeight] = None,
) -> List[Tuple[NodeId, NodeId]]:
    """All unordered pairs whose weighted distance lies in ``[lower, upper]``."""
    pairs = []
    distances = all_pairs_distances(graph, weight)
    for (u, v), d in distances.items():
        if u < v and lower <= d <= upper:
            pairs.append((u, v))
    return pairs
