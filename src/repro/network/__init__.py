"""Dynamic estimate graph, topologies, paths and diameter bookkeeping."""

from .dynamic_graph import DynamicGraph, EdgeEvent, GraphError
from .edge import DEFAULT_EDGE_PARAMS, EdgeKey, EdgeParams, NodeId
from .diameter import DiameterTracker

__all__ = [
    "DynamicGraph",
    "EdgeEvent",
    "GraphError",
    "DEFAULT_EDGE_PARAMS",
    "EdgeKey",
    "EdgeParams",
    "NodeId",
    "DiameterTracker",
]
