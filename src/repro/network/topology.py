"""Static topology generators.

All generators return a :class:`~repro.network.dynamic_graph.DynamicGraph`
whose edges are present (in both directions) from time zero.  The paper's
lower bounds and worst cases are exhibited on line graphs; grids, rings, trees
and random graphs exercise the algorithm on richer topologies.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from .dynamic_graph import DynamicGraph, GraphError
from .edge import DEFAULT_EDGE_PARAMS, EdgeParams, NodeId


def _new_graph(
    n: int, edges: Iterable[Tuple[NodeId, NodeId]], params: EdgeParams
) -> DynamicGraph:
    if n < 1:
        raise GraphError(f"a topology needs at least one node, got n={n}")
    graph = DynamicGraph(range(n))
    for u, v in edges:
        graph.add_edge(u, v, params)
    return graph


def line(n: int, params: EdgeParams = DEFAULT_EDGE_PARAMS) -> DynamicGraph:
    """Path graph ``0 - 1 - ... - (n-1)``; the paper's canonical worst case."""
    return _new_graph(n, ((i, i + 1) for i in range(n - 1)), params)


def ring(n: int, params: EdgeParams = DEFAULT_EDGE_PARAMS) -> DynamicGraph:
    """Cycle over ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError(f"a ring needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _new_graph(n, edges, params)


def star(n: int, params: EdgeParams = DEFAULT_EDGE_PARAMS) -> DynamicGraph:
    """Star with center ``0`` and ``n - 1`` leaves."""
    if n < 2:
        raise GraphError(f"a star needs at least 2 nodes, got {n}")
    return _new_graph(n, ((0, i) for i in range(1, n)), params)


def complete(n: int, params: EdgeParams = DEFAULT_EDGE_PARAMS) -> DynamicGraph:
    """Complete graph on ``n`` nodes."""
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _new_graph(n, edges, params)


def grid(
    rows: int, cols: int, params: EdgeParams = DEFAULT_EDGE_PARAMS
) -> DynamicGraph:
    """``rows x cols`` grid; node ``(r, c)`` has index ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid dimensions must be positive, got {rows}x{cols}")
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            index = r * cols + c
            if c + 1 < cols:
                edges.append((index, index + 1))
            if r + 1 < rows:
                edges.append((index, index + cols))
    return _new_graph(rows * cols, edges, params)


def binary_tree(depth: int, params: EdgeParams = DEFAULT_EDGE_PARAMS) -> DynamicGraph:
    """Complete binary tree of the given depth (depth 0 is a single node)."""
    if depth < 0:
        raise GraphError(f"depth must be non-negative, got {depth}")
    n = 2 ** (depth + 1) - 1
    edges = []
    for i in range(n):
        left = 2 * i + 1
        right = 2 * i + 2
        if left < n:
            edges.append((i, left))
        if right < n:
            edges.append((i, right))
    return _new_graph(n, edges, params)


def random_tree(
    n: int,
    params: EdgeParams = DEFAULT_EDGE_PARAMS,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Uniform random recursive tree: node ``i`` attaches to a random earlier node."""
    if n < 1:
        raise GraphError(f"a tree needs at least one node, got {n}")
    rng = random.Random(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return _new_graph(n, edges, params)


def random_connected(
    n: int,
    extra_edge_probability: float = 0.1,
    params: EdgeParams = DEFAULT_EDGE_PARAMS,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """A random connected graph: a random tree plus independent extra edges."""
    if not 0.0 <= extra_edge_probability <= 1.0:
        raise GraphError(
            f"extra_edge_probability must lie in [0, 1], got {extra_edge_probability}"
        )
    rng = random.Random(seed)
    graph = random_tree(n, params, seed=rng.randrange(2 ** 30))
    for i in range(n):
        for j in range(i + 1, n):
            if not graph.has_edge(i, j) and rng.random() < extra_edge_probability:
                graph.add_edge(i, j, params)
    return graph


def from_edge_list(
    n: int,
    edges: Sequence[Tuple[NodeId, NodeId]],
    params: EdgeParams = DEFAULT_EDGE_PARAMS,
) -> DynamicGraph:
    """Build a graph from an explicit undirected edge list."""
    return _new_graph(n, edges, params)


def hop_diameter(graph: DynamicGraph) -> int:
    """Unweighted diameter of the symmetric graph (0 for a single node)."""
    nodes = graph.nodes
    adjacency = graph.adjacency()
    best = 0
    for source in nodes:
        dist = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier = []
            for node in frontier:
                for other in adjacency[node]:
                    if other not in dist:
                        dist[other] = dist[node] + 1
                        next_frontier.append(other)
            frontier = next_frontier
        if len(dist) != len(nodes):
            raise GraphError("hop_diameter requires a connected graph")
        best = max(best, max(dist.values()))
    return best
