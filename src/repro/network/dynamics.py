"""Dynamic-network scenarios: scripted edge churn on top of a base topology.

The adversary of the paper may insert and remove (estimate) edges at will,
subject only to keeping the network connected enough for a bounded dynamic
diameter.  These helpers build the scenarios used by the experiments:

* :func:`with_edge_insertion` -- a static base graph plus one new edge that
  appears mid-run (the stabilization-time experiments E4 and E7);
* :func:`periodic_churn` -- random extra edges that flap on and off;
* :func:`sliding_window_line` -- a "mobile" line in which each node is only
  connected to a window of nearby nodes and the window drifts over time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .dynamic_graph import DynamicGraph, GraphError
from .edge import DEFAULT_EDGE_PARAMS, EdgeParams, NodeId
from . import topology


@dataclass(frozen=True)
class InsertionScenario:
    """A base graph plus a single scheduled edge insertion."""

    graph: DynamicGraph
    new_edge: Tuple[NodeId, NodeId]
    insertion_time: float


def with_edge_insertion(
    graph: DynamicGraph,
    u: NodeId,
    v: NodeId,
    insertion_time: float,
    *,
    params: Optional[EdgeParams] = None,
    detection_skew: float = 0.0,
) -> InsertionScenario:
    """Schedule the undirected edge ``{u, v}`` to appear at ``insertion_time``."""
    if graph.has_edge(u, v):
        raise GraphError(f"edge ({u}, {v}) already exists in the base graph")
    if insertion_time < 0.0:
        raise GraphError("insertion_time must be non-negative")
    scenario_graph = graph.copy()
    scenario_graph.schedule_edge_up(
        insertion_time, u, v, params=params, skew=detection_skew
    )
    return InsertionScenario(scenario_graph, (u, v), insertion_time)


def line_with_end_to_end_insertion(
    n: int,
    insertion_time: float,
    params: EdgeParams = DEFAULT_EDGE_PARAMS,
    *,
    detection_skew: float = 0.0,
) -> InsertionScenario:
    """The Theorem 8.1 scenario: a line whose endpoints become adjacent."""
    if n < 3:
        raise GraphError(f"the end-to-end insertion scenario needs n >= 3, got {n}")
    base = topology.line(n, params)
    return with_edge_insertion(
        base, 0, n - 1, insertion_time, params=params, detection_skew=detection_skew
    )


def periodic_churn(
    graph: DynamicGraph,
    candidate_edges: Sequence[Tuple[NodeId, NodeId]],
    *,
    period: float,
    up_fraction: float = 0.5,
    horizon: float,
    params: Optional[EdgeParams] = None,
    seed: Optional[int] = None,
) -> DynamicGraph:
    """Randomly toggle extra edges every ``period`` time units until ``horizon``.

    The base edges of ``graph`` are never removed, so the network stays
    connected at all times (the paper's connectivity assumption).
    """
    if period <= 0.0:
        raise GraphError("churn period must be positive")
    if not 0.0 <= up_fraction <= 1.0:
        raise GraphError("up_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    scenario = graph.copy()
    state = {tuple(sorted(e)): False for e in candidate_edges}
    for edge in state:
        if scenario.has_edge(*edge):
            raise GraphError(f"candidate edge {edge} already exists in the base graph")
    t = period
    while t <= horizon:
        for edge in sorted(state):
            want_up = rng.random() < up_fraction
            if want_up and not state[edge]:
                scenario.schedule_edge_up(t, edge[0], edge[1], params=params)
                state[edge] = True
            elif not want_up and state[edge]:
                scenario.schedule_edge_down(t, edge[0], edge[1])
                state[edge] = False
        t += period
    return scenario


def sliding_window_line(
    n: int,
    *,
    window: int = 2,
    shift_period: float,
    horizon: float,
    params: EdgeParams = DEFAULT_EDGE_PARAMS,
) -> DynamicGraph:
    """A mobility-flavoured dynamic line.

    Nodes are arranged on a line; besides the always-on backbone edges
    ``(i, i+1)``, each node is connected to nodes up to ``window`` hops away,
    but those shortcut edges rotate over time: every ``shift_period`` the set
    of active shortcuts shifts by one position, emulating relative movement.
    """
    if n < 3:
        raise GraphError("sliding_window_line needs at least 3 nodes")
    if window < 2:
        raise GraphError("window must be at least 2 to create shortcuts")
    graph = topology.line(n, params)
    shortcuts: List[Tuple[int, int]] = []
    for i in range(n):
        for d in range(2, window + 1):
            if i + d < n:
                shortcuts.append((i, i + d))
    if not shortcuts:
        return graph
    # Initially the even-indexed shortcuts are up.
    active = set(idx for idx in range(len(shortcuts)) if idx % 2 == 0)
    for idx in sorted(active):
        u, v = shortcuts[idx]
        graph.add_edge(u, v, params)
    t = shift_period
    offset = 1
    while t <= horizon:
        new_active = set(
            (idx + offset) % len(shortcuts) for idx in range(0, len(shortcuts), 2)
        )
        for idx in sorted(active - new_active):
            graph.schedule_edge_down(t, *shortcuts[idx])
        for idx in sorted(new_active - active):
            u, v = shortcuts[idx]
            graph.schedule_edge_up(t, u, v, params=params)
        active = new_active
        offset += 1
        t += shift_period
    return graph
