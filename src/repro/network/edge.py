"""Estimate edges and their parameters.

Every (undirected) estimate edge ``{u, v}`` carries three parameters
(Section 3.1):

* ``epsilon`` -- the estimate uncertainty: the estimate layer guarantees
  ``|L_v(t) - L~_u^v(t)| <= epsilon`` whenever ``v`` is a neighbor of ``u``.
* ``tau`` -- the detection delay: the two endpoints detect the appearance or
  disappearance of the edge within ``tau`` time of each other.
* ``delay`` -- the bound ``T_{u,v}`` on the delivery time of messages actively
  exchanged over the edge (used only for the insertion handshake and for
  flooding of max estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

NodeId = int


@dataclass(frozen=True, order=True)
class EdgeKey:
    """Canonical identifier of an undirected edge (smaller endpoint first)."""

    a: NodeId
    b: NodeId

    def __post_init__(self):
        if self.a == self.b:
            raise ValueError(f"self loops are not allowed ({self.a})")
        if self.a > self.b:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    @staticmethod
    def of(u: NodeId, v: NodeId) -> "EdgeKey":
        if u == v:
            raise ValueError(f"self loops are not allowed ({u})")
        lo, hi = (u, v) if u < v else (v, u)
        return EdgeKey(lo, hi)

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint different from ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} is not an endpoint of {self}")

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.a, self.b)

    def __iter__(self):
        return iter((self.a, self.b))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{{{self.a}, {self.b}}}"


@dataclass(frozen=True)
class EdgeParams:
    """Per-edge uncertainty, detection delay and message delay bound."""

    epsilon: float = 1.0
    tau: float = 0.5
    delay: float = 2.0

    def __post_init__(self):
        if self.epsilon < 0.0:
            raise ValueError(f"epsilon must be non-negative, got {self.epsilon}")
        if self.tau < 0.0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")
        if self.delay < 0.0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")

    def scaled(self, factor: float) -> "EdgeParams":
        """Return parameters scaled by ``factor`` (used for heterogeneity)."""
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return EdgeParams(
            epsilon=self.epsilon * factor,
            tau=self.tau * factor,
            delay=self.delay * factor,
        )


DEFAULT_EDGE_PARAMS = EdgeParams()
