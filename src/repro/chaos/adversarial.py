"""Adversarial schedules: the shifting-argument worst cases as scenarios.

:mod:`repro.lower_bounds.shifting` constructs the execution behind the
``Omega(D)`` global-skew lower bound -- hardware rates ramping along a line
while message delays are extremal in opposite directions, so every node's
observations stay consistent with a much smaller skew than the real one.
This module turns that construction into declarative
:class:`~repro.experiments.spec.ScenarioSpec` payloads in two flavours:

* ``hardware_only`` *accumulation* runs: no correction is applied, so the
  measured final global skew is exactly the skew the adversary built,
  ``2 rho t``.  Sized via :func:`shifting.minimum_time_to_accumulate` times a
  ``duration_factor > 1``, the measured skew provably *exceeds* the analytic
  lower bound ``global_skew_lower_bound`` -- the assertion the chaos pack's
  acceptance check runs.
* ``aopt`` runs: the full algorithm under the same adversary, asserted to
  stay *below* its configured global-skew bound (the upper-bound side of the
  same experiment; the lower bound says no algorithm can beat
  ``sum(eps)/2``, the envelope guarantees AOPT never exceeds ``G~``).

Both flavours use ``estimate_mode="broadcast"`` -- the adversary manipulates
*message* delays, which only matters when estimates travel in messages -- and
broadcast mode is exactly what the fast and vectorised backends do not
implement, so these scenarios also exercise the established
``UnsupportedScenarioError`` -> reference fallback on every backend.

The packaged ``chaos_shifting_*`` scenario files are generated from this
module (``python -m repro.chaos.adversarial``); the validate lint and the
test suite re-derive each file from :data:`PACKAGED_VARIANTS` and compare
content hashes, so the files can never drift from the lower-bound
construction they claim to encode.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.parameters import Parameters
from ..core.skew_estimates import suggest_global_skew_bound
from ..lower_bounds import shifting
from ..metrics import DEFAULT_OBSERVERS, WATCHDOG_NAMES
from ..network.edge import EdgeParams
from ..experiments.spec import ScenarioSpec, SpecError

#: Scenario-file observers: the full default report plus every watchdog, so
#: chaos runs emit telemetry firings out of the box.
CHAOS_OBSERVERS: Tuple[str, ...] = tuple(DEFAULT_OBSERVERS) + tuple(WATCHDOG_NAMES)

#: The packaged adversarial scenarios: ``name -> shifting_spec kwargs``.
PACKAGED_VARIANTS: Dict[str, Dict[str, Any]] = {
    "chaos_shifting_accumulate_n6": {
        "n": 6, "algorithm": "hardware_only", "duration_factor": 1.5,
    },
    "chaos_shifting_accumulate_n10": {
        "n": 10, "algorithm": "hardware_only", "duration_factor": 1.5,
    },
    "chaos_shifting_aopt_n6": {
        "n": 6, "algorithm": "aopt", "duration_factor": 2.0,
    },
    "chaos_shifting_aopt_n10": {
        "n": 10, "algorithm": "aopt", "duration_factor": 2.0,
    },
}


def _benchmark() -> Tuple[Dict[str, float], Dict[str, float]]:
    # Lazy: the registry imports repro.chaos at its bottom; by the time a
    # builder runs, the registry module is complete.
    from ..experiments import registry as registry_mod

    return dict(registry_mod.BENCHMARK_PARAMS), dict(registry_mod.BENCHMARK_EDGE)


def shifting_spec(
    name: str,
    *,
    n: int,
    algorithm: str = "hardware_only",
    duration_factor: float = 1.5,
) -> ScenarioSpec:
    """The shifting worst case on a line of ``n`` nodes as a ScenarioSpec.

    ``duration_factor`` scales :func:`shifting.minimum_time_to_accumulate`
    of the analytic bound; it must exceed 1 or the run is too short to
    exhibit the bound by construction.
    """
    if algorithm not in ("hardware_only", "aopt"):
        raise SpecError(
            f"adversarial algorithm must be hardware_only or aopt, got {algorithm!r}"
        )
    if duration_factor <= 1.0:
        raise SpecError(
            "duration_factor must exceed 1 so the run can exhibit the bound, "
            f"got {duration_factor}"
        )
    params_args, edge_args = _benchmark()
    params = Parameters(**params_args)
    edge = EdgeParams(**edge_args)
    scenario = shifting.build(n, params, edge_params=edge)
    bound = scenario.expected_lower_bound
    t_min = shifting.minimum_time_to_accumulate(bound, params)
    duration = duration_factor * t_min
    broadcast_interval = 1.0
    notes: Dict[str, Any] = {
        "chaos_family": "adversarial_shifting",
        "expected_lower_bound": bound,
        "minimum_accumulation_time": t_min,
        "duration_factor": duration_factor,
        "n": n,
    }
    algorithm_spec: Any = algorithm
    if algorithm == "aopt":
        global_skew_bound = suggest_global_skew_bound(
            scenario.graph, params, broadcast_interval=broadcast_interval
        )
        algorithm_spec = ("aopt", {"global_skew_bound": global_skew_bound})
        notes["global_skew_bound"] = global_skew_bound
    return ScenarioSpec(
        label=name,
        topology=("line", {"n": n}),
        drift="ramp",
        delay=("directional", {"slow_towards_higher": True}),
        algorithm=algorithm_spec,
        observers=CHAOS_OBSERVERS,
        params=params_args,
        edge=edge_args,
        sim={
            "dt": 0.1,
            "duration": duration,
            "sample_interval": 1.0,
            "broadcast_interval": broadcast_interval,
            "estimate_mode": "broadcast",
        },
        notes=notes,
    )


def expected_spec(name: str) -> Optional[ScenarioSpec]:
    """Re-derive the spec a packaged adversarial file must contain."""
    kwargs = PACKAGED_VARIANTS.get(name)
    if kwargs is None:
        return None
    return shifting_spec(name, **kwargs)


def file_payload(name: str) -> Dict[str, Any]:
    """The full scenario-file payload for a packaged adversarial variant."""
    kwargs = PACKAGED_VARIANTS[name]
    spec = shifting_spec(name, **kwargs)
    if kwargs["algorithm"] == "hardware_only":
        description = (
            f"Shifting-argument accumulation on a {kwargs['n']}-node line: "
            "ramped rates + directional delays, no correction; final skew "
            "must exceed the analytic lower bound."
        )
        expect = {"min_final_global_skew": spec.notes["expected_lower_bound"]}
    else:
        description = (
            f"Shifting-argument adversary vs AOPT on a {kwargs['n']}-node "
            "line: the algorithm must hold the global skew below its "
            "configured bound despite the worst-case drift/delay schedule."
        )
        expect = {"max_final_global_skew": spec.notes["global_skew_bound"]}
    return {
        "chaos_format": 1,
        "name": name,
        "family": "adversarial_shifting",
        "description": description,
        "spec": spec.to_dict(),
        "expect": expect,
    }


def render_file(name: str) -> str:
    """Scenario-file text (with the generated-file comment header)."""
    payload = file_payload(name)
    return (
        "# Generated by `python -m repro.chaos.adversarial`; derived from\n"
        "# repro.lower_bounds.shifting -- regenerate rather than editing.\n"
        + json.dumps(payload, indent=2, sort_keys=True)
        + "\n"
    )


def generate_packaged_files(directory: Optional[Path] = None) -> List[Path]:
    """(Re)write the packaged ``chaos_shifting_*`` scenario files."""
    from .loader import packaged_scenario_dir

    directory = Path(directory) if directory is not None else packaged_scenario_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in sorted(PACKAGED_VARIANTS):
        path = directory / f"{name}.json"
        path.write_text(render_file(name), encoding="utf-8")
        written.append(path)
    return written


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    for path in generate_packaged_files():
        print(path)
