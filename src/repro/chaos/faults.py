"""Composable fault-injection dynamics: the chaos fault family.

Pure graph/schedule transformations with the same shape as the entries of
:data:`repro.experiments.registry.DYNAMICS` -- ``fn(graph, edge, **args) ->
(DynamicGraph, meta)`` -- but kept free of any ``repro.experiments`` import
so the registry can wrap them without a cycle:

* :func:`correlated_mass_churn` -- k nodes lose *all* their edges together
  and get them back together, repeatedly (a failure domain, not independent
  churn);
* :func:`partition_then_heal` -- the graph splits into two components and
  re-merges after the drift adversary has had time to build skew across the
  cut;
* :func:`crash_restart` -- one node leaves, loses its clock and algorithm
  state entirely, and rejoins from scratch (drives the engine's
  node-reset events; backends without reset support raise
  ``UnsupportedScenarioError`` and the executor falls back to reference).

The fourth family member, the windowed delay amplifier, is a
:class:`repro.sim.delay.DelaySpikeStorm` and registers under ``DELAYS``
rather than ``DYNAMICS`` -- a storm perturbs message timing, not topology.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..network.dynamic_graph import DynamicGraph, GraphError
from ..network.edge import EdgeKey, EdgeParams, NodeId


def _incident_edges(
    graph: DynamicGraph, victims: Sequence[NodeId]
) -> List[Tuple[NodeId, NodeId]]:
    """Undirected base-graph edges touching any victim, each listed once."""
    victim_set = set(victims)
    seen = set()
    edges: List[Tuple[NodeId, NodeId]] = []
    for node in victims:
        for neighbor in sorted(graph.neighbors(node)):
            key = EdgeKey.of(node, neighbor)
            if key in seen or not graph.has_edge(node, neighbor):
                continue
            seen.add(key)
            edges.append((key.a, key.b))
    # Edges between two victims were collected once via the EdgeKey dedup.
    del victim_set
    return edges


def correlated_mass_churn(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    horizon: float,
    k: int = 2,
    victims: Optional[Sequence[NodeId]] = None,
    period: float = 60.0,
    outage: float = 10.0,
    start: float = 20.0,
    seed: int = 0,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """``k`` nodes' edges drop and return *together*, every ``period``.

    Models a shared failure domain (rack, power feed): the victim set is
    fixed up front (``victims``, or ``k`` nodes sampled by ``seed``) and on
    every cycle starting at ``start + i * period`` all edges incident to any
    victim go down at the same instant and come back ``outage`` later.
    During an outage the victims are isolated -- the paper's connectivity
    assumption is deliberately violated, which is exactly the adversity the
    chaos pack exists to measure.
    """
    if outage <= 0.0:
        raise GraphError(f"outage must be positive, got {outage}")
    if period <= outage:
        raise GraphError(
            f"period ({period}) must exceed the outage ({outage})"
        )
    scenario = graph.copy()
    nodes = scenario.nodes
    if victims is None:
        if not 1 <= k < len(nodes):
            raise GraphError(
                f"k must lie in [1, {len(nodes) - 1}] to leave survivors, got {k}"
            )
        rng = random.Random(seed)
        victims = sorted(rng.sample(nodes, k))
    else:
        victims = sorted(int(v) for v in victims)
        if len(set(victims)) >= len(nodes):
            raise GraphError("some node must survive the mass churn")
    edges = _incident_edges(scenario, victims)
    windows: List[Tuple[float, float]] = []
    t = start
    while t + outage <= horizon:
        for u, v in edges:
            scenario.schedule_edge_down(t, u, v)
            scenario.schedule_edge_up(t + outage, u, v, params=edge)
        windows.append((t, t + outage))
        t += period
    return scenario, {
        "victims": list(victims),
        "churned_edges": [list(pair) for pair in edges],
        "outage_windows": [list(window) for window in windows],
    }


def partition_then_heal(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    split_time: float,
    heal_time: float,
    split_fraction: float = 0.5,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """Split the graph into two components, then re-merge them.

    The node order is cut at ``split_fraction``; at ``split_time`` every
    edge crossing the cut disappears and at ``heal_time`` all of them come
    back.  While the halves are separated the drift adversary accumulates
    skew that no algorithm can fight (there is no communication path), so
    the heal instant is the interesting moment: the re-merged network
    suddenly carries cross-cut skew proportional to the partition length.
    """
    if heal_time <= split_time:
        raise GraphError(
            f"heal_time ({heal_time}) must come after split_time ({split_time})"
        )
    if not 0.0 < split_fraction < 1.0:
        raise GraphError(
            f"split_fraction must lie in (0, 1), got {split_fraction}"
        )
    scenario = graph.copy()
    nodes = scenario.nodes
    cut_index = max(1, min(len(nodes) - 1, int(round(split_fraction * len(nodes)))))
    lower = set(nodes[:cut_index])
    cut_edges = [
        (key.a, key.b)
        for key in scenario.edges()
        if (key.a in lower) != (key.b in lower)
    ]
    if not cut_edges:
        raise GraphError("the chosen split crosses no edges; nothing to cut")
    for u, v in cut_edges:
        scenario.schedule_edge_down(split_time, u, v)
        scenario.schedule_edge_up(heal_time, u, v, params=edge)
    return scenario, {
        "cut_edges": [list(pair) for pair in cut_edges],
        "split_time": split_time,
        "heal_time": heal_time,
        "partition_sizes": [cut_index, len(nodes) - cut_index],
    }


def crash_restart(
    graph: DynamicGraph,
    edge: EdgeParams,
    *,
    crash_time: float,
    downtime: float = 10.0,
    node: Optional[NodeId] = None,
    reset_value: float = 0.0,
) -> Tuple[DynamicGraph, Dict[str, Any]]:
    """One node crashes, forgets everything, and rejoins from scratch.

    At ``crash_time`` the node's edges disappear; ``downtime`` later the
    node reset fires (fresh clocks at ``reset_value``, a brand-new
    algorithm instance) and its edges return in the same step.  The rejoin
    is the hard part for the algorithm: the reborn node is up to the whole
    network's logical-clock value behind its neighbors and must be pulled
    up without wrecking the gradient property for everyone else.
    """
    if downtime <= 0.0:
        raise GraphError(f"downtime must be positive, got {downtime}")
    scenario = graph.copy()
    nodes = scenario.nodes
    if node is None:
        node = nodes[len(nodes) // 2]
    if not scenario.has_node(node):
        raise GraphError(f"unknown crash node {node}")
    edges = _incident_edges(scenario, [node])
    if not edges:
        raise GraphError(f"node {node} has no edges to lose")
    restart_time = crash_time + downtime
    for u, v in edges:
        scenario.schedule_edge_down(crash_time, u, v)
        scenario.schedule_edge_up(restart_time, u, v, params=edge)
    scenario.schedule_node_reset(restart_time, node, value=reset_value)
    return scenario, {
        "crashed_node": node,
        "crash_time": crash_time,
        "restart_time": restart_time,
        "dropped_edges": [list(pair) for pair in edges],
    }
