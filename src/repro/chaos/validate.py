"""The ``scenarios --validate`` lint: schema, registry, derivation checks.

Four layers of checking, each catching a different way a scenario pack rots:

1. **Schema** -- the loader already rejects malformed files; their error
   messages surface here as global problems instead of import failures.
2. **Registry resolution + dry-run build** -- every component name must
   resolve and the whole spec must materialise
   (:func:`repro.experiments.registry.build_scenario`), so a renamed
   dynamics entry or a bad argument is caught before anyone runs a sweep.
3. **Registration round-trip** -- the file's ``name`` must be registered in
   ``SCENARIOS`` and building it must reproduce the file's spec bit-for-bit
   (content-hash equality), so the CLI name and the file never diverge.
4. **Family semantics** -- watchdog observers must be pre-wired in every
   file; ``adversarial_shifting`` files must carry the analytic notes, be
   re-derivable from :mod:`repro.chaos.adversarial` (hash equality again)
   and run long enough (``duration >= minimum_time_to_accumulate``) to
   exhibit the bound they claim to measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence

from .loader import ScenarioFile, scenario_files


@dataclass
class FileReport:
    """Validation outcome for one scenario file."""

    name: str
    path: str
    family: str
    description: str = ""
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class ValidationReport:
    """Validation outcome for a whole scenario pack."""

    files: List[FileReport] = field(default_factory=list)
    global_problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.global_problems and all(f.ok for f in self.files)

    @property
    def problem_count(self) -> int:
        return len(self.global_problems) + sum(len(f.problems) for f in self.files)

    def describe(self) -> List[str]:
        lines: List[str] = []
        for report in self.files:
            status = "ok" if report.ok else "FAIL"
            lines.append(f"{status:4s} {report.name} ({report.family})")
            for problem in report.problems:
                lines.append(f"       - {problem}")
        for problem in self.global_problems:
            lines.append(f"FAIL (pack) {problem}")
        lines.append(
            f"{len(self.files)} scenario files, {self.problem_count} problem(s)"
        )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "files": [
                {
                    "name": f.name,
                    "path": f.path,
                    "family": f.family,
                    "description": f.description,
                    "ok": f.ok,
                    "problems": list(f.problems),
                }
                for f in self.files
            ],
            "global_problems": list(self.global_problems),
        }


def _check_observers(sf: ScenarioFile, problems: List[str]) -> None:
    from ..metrics import OBSERVERS, is_watchdog_name

    unknown = [name for name in sf.spec.observers if name not in OBSERVERS]
    if unknown:
        problems.append(f"unknown observers {unknown}")
    if not any(is_watchdog_name(name) for name in sf.spec.observers):
        problems.append(
            "no watchdog observer pre-wired (chaos scenarios must emit "
            "telemetry firings out of the box)"
        )


def _check_build(sf: ScenarioFile, problems: List[str]) -> None:
    from ..experiments import registry as registry_mod

    try:
        registry_mod.build_scenario(sf.spec)
    except Exception as exc:  # lint must report, not crash
        problems.append(f"dry-run build failed: {type(exc).__name__}: {exc}")


def _check_registration(sf: ScenarioFile, problems: List[str]) -> None:
    from ..experiments import registry as registry_mod
    from .loader import packaged_scenario_dir

    if sf.name not in registry_mod.SCENARIOS:
        # Only packaged files register at import time; a user-supplied
        # directory is linted for schema and buildability, not registration.
        if Path(sf.path).parent == packaged_scenario_dir():
            problems.append("not registered in SCENARIOS (load error at import?)")
        return
    try:
        built = registry_mod.scenario(sf.name)
    except Exception as exc:
        problems.append(f"registered builder failed: {type(exc).__name__}: {exc}")
        return
    if built.content_hash() != sf.spec.content_hash():
        problems.append(
            "registered scenario does not reproduce the file spec "
            f"(hash {built.short_hash()} != {sf.spec.short_hash()})"
        )


def _check_adversarial(sf: ScenarioFile, problems: List[str]) -> None:
    from ..core.parameters import Parameters
    from ..lower_bounds import shifting
    from . import adversarial

    notes = sf.spec.notes
    for key in ("expected_lower_bound", "minimum_accumulation_time"):
        if key not in notes:
            problems.append(f"adversarial scenario missing notes[{key!r}]")
            return
    try:
        params = Parameters(**sf.spec.params)
        t_min = shifting.minimum_time_to_accumulate(
            float(notes["expected_lower_bound"]), params
        )
    except (TypeError, ValueError) as exc:
        problems.append(f"cannot recompute accumulation time: {exc}")
        return
    if abs(t_min - float(notes["minimum_accumulation_time"])) > 1e-9:
        problems.append(
            f"notes disagree with lower_bounds.shifting: minimum accumulation "
            f"time {notes['minimum_accumulation_time']} != analytic {t_min}"
        )
    duration = sf.spec.sim.get("duration")
    if duration is None or float(duration) < t_min:
        problems.append(
            f"duration {duration} is shorter than the minimum accumulation "
            f"time {t_min}; the run cannot exhibit the bound"
        )
    expected = adversarial.expected_spec(sf.name)
    if expected is not None and expected.content_hash() != sf.spec.content_hash():
        problems.append(
            "file has drifted from its repro.chaos.adversarial derivation; "
            "regenerate with `python -m repro.chaos.adversarial`"
        )


def validate_files(
    files: Sequence[ScenarioFile], load_errors: Sequence[str] = ()
) -> ValidationReport:
    """Run the full lint over already-loaded scenario files."""
    report = ValidationReport(global_problems=list(load_errors))
    seen: Dict[str, str] = {}
    for sf in files:
        if sf.name in seen:
            report.global_problems.append(
                f"duplicate scenario name {sf.name!r} in "
                f"{Path(seen[sf.name]).name} and {Path(sf.path).name}"
            )
        else:
            seen[sf.name] = sf.path
    for sf in files:
        file_report = FileReport(
            name=sf.name,
            path=sf.path,
            family=sf.family,
            description=sf.description,
        )
        _check_observers(sf, file_report.problems)
        _check_build(sf, file_report.problems)
        _check_registration(sf, file_report.problems)
        if sf.family == "adversarial_shifting":
            _check_adversarial(sf, file_report.problems)
        report.files.append(file_report)
    return report


def validate_pack(extra_dirs: Sequence[Path] = ()) -> ValidationReport:
    """Lint the packaged scenario files plus any extra directories."""
    files, errors = scenario_files(extra_dirs)
    return validate_files(files, errors)
