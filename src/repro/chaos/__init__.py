"""repro.chaos: declarative fault injection for the sweep pipeline.

The chaos pack has four moving parts:

* :mod:`repro.chaos.faults` -- the composable fault dynamics
  (``correlated_mass_churn``, ``partition_then_heal``, ``crash_restart``;
  the fourth family member, :class:`repro.sim.delay.DelaySpikeStorm`, is a
  delay model).  The experiments registry wraps them as ordinary DYNAMICS /
  DELAYS entries, so any spec can compose them with any topology, drift and
  algorithm.
* :mod:`repro.chaos.loader` -- JSON scenario files under ``scenarios/``
  (package data), loaded through :class:`repro.experiments.spec.ScenarioSpec`
  and registered as named SCENARIOS at import time.
* :mod:`repro.chaos.adversarial` -- the shifting-argument lower-bound worst
  cases as runnable scenarios, derived from
  :mod:`repro.lower_bounds.shifting`.
* :mod:`repro.chaos.validate` -- the ``repro-experiments scenarios
  --validate`` lint.

This package never imports :mod:`repro.experiments` at module level: the
registry imports *us* (bottom of ``registry.py``), and all references back
into the registry happen lazily inside functions.
"""

from .faults import (  # noqa: F401
    correlated_mass_churn,
    crash_restart,
    partition_then_heal,
)
from .loader import (  # noqa: F401
    CHAOS_FORMAT_VERSION,
    FAMILIES,
    LOAD_ERRORS,
    ChaosError,
    ScenarioFile,
    load_packaged_scenarios,
    load_scenario_dir,
    load_scenario_file,
    packaged_scenario_dir,
    register_packaged_scenarios,
    scenario_files,
)
from .validate import (  # noqa: F401
    FileReport,
    ValidationReport,
    validate_files,
    validate_pack,
)

__all__ = [
    "CHAOS_FORMAT_VERSION",
    "FAMILIES",
    "LOAD_ERRORS",
    "ChaosError",
    "FileReport",
    "ScenarioFile",
    "ValidationReport",
    "correlated_mass_churn",
    "crash_restart",
    "load_packaged_scenarios",
    "load_scenario_dir",
    "load_scenario_file",
    "packaged_scenario_dir",
    "partition_then_heal",
    "register_packaged_scenarios",
    "scenario_files",
    "validate_files",
    "validate_pack",
]
