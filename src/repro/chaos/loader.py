"""Declarative chaos scenario files: parsing, schema checks, registration.

A scenario file is a JSON document (with ``#`` comment lines allowed, so the
files read like the YAML-ish configs people actually write) describing one
named chaos scenario::

    # A line that loses its middle node once.
    {
      "chaos_format": 1,
      "name": "chaos_crash_restart_line",
      "family": "crash_restart",
      "description": "one-line blurb shown by `repro-experiments scenarios`",
      "spec": { ... ScenarioSpec.to_dict() payload ... },
      "expect": {"min_final_global_skew": 2.5}          # optional
    }

Files shipped under ``repro/chaos/scenarios/`` are package data; at import
time :func:`register_packaged_scenarios` loads each one through
:class:`repro.experiments.spec.ScenarioSpec` and registers a builder under
the file's ``name`` in :data:`repro.experiments.registry.SCENARIOS`, so chaos
scenarios are first-class citizens of ``repro-experiments run/sweep`` and the
result cache.  A malformed file never breaks the package import: its error is
recorded in :data:`LOAD_ERRORS` (and surfaced by ``scenarios --validate``)
while every well-formed sibling still registers.

This module only imports :mod:`repro.experiments` lazily inside functions --
the registry imports *us* at the bottom of its module (and we trigger the
registry when ``repro.chaos`` is imported first), so the module level must
stay clear of the cycle in both directions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.spec import ScenarioSpec

#: Bumped when the scenario-file schema changes shape.
CHAOS_FORMAT_VERSION = 1

#: The fault families a scenario file may declare.  ``adversarial_shifting``
#: marks the lower-bound worst cases derived from
#: :mod:`repro.lower_bounds.shifting`; ``composite`` marks scenarios stacking
#: several fault mechanisms.
FAMILIES = (
    "correlated_mass_churn",
    "partition_then_heal",
    "delay_spike_storm",
    "crash_restart",
    "adversarial_shifting",
    "composite",
)

_REQUIRED_KEYS = ("chaos_format", "name", "family", "spec")
_OPTIONAL_KEYS = ("description", "expect")

#: Recognised keys of the optional ``expect`` block; checked by the validate
#: lint and asserted by the chaos test suite after full-length runs.
EXPECT_KEYS = ("min_final_global_skew", "max_final_global_skew")

#: Errors collected by :func:`register_packaged_scenarios` (one string per
#: broken file).  Empty after a clean import.
LOAD_ERRORS: List[str] = []


class ChaosError(ValueError):
    """Raised on malformed chaos scenario files."""


@dataclass(frozen=True)
class ScenarioFile:
    """One parsed scenario file."""

    path: str
    name: str
    family: str
    spec: ScenarioSpec
    description: str = ""
    expect: Dict[str, float] = field(default_factory=dict)


def parse_commented_json(text: str) -> Any:
    """Parse JSON after stripping full-line ``#`` comments."""
    lines = [
        line for line in text.splitlines() if not line.lstrip().startswith("#")
    ]
    return json.loads("\n".join(lines))


def load_scenario_file(path: Path) -> ScenarioFile:
    """Load and schema-check a single scenario file."""
    path = Path(path)
    try:
        payload = parse_commented_json(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ChaosError(f"{path.name}: cannot parse: {exc}") from exc
    if not isinstance(payload, dict):
        raise ChaosError(f"{path.name}: top level must be a JSON object")
    for key in _REQUIRED_KEYS:
        if key not in payload:
            raise ChaosError(f"{path.name}: missing required key {key!r}")
    unknown = sorted(set(payload) - set(_REQUIRED_KEYS) - set(_OPTIONAL_KEYS))
    if unknown:
        raise ChaosError(f"{path.name}: unknown keys {unknown}")
    if payload["chaos_format"] != CHAOS_FORMAT_VERSION:
        raise ChaosError(
            f"{path.name}: chaos_format {payload['chaos_format']!r} is not "
            f"the supported version {CHAOS_FORMAT_VERSION}"
        )
    name = payload["name"]
    if not isinstance(name, str) or not name or not all(
        ch.isalnum() or ch == "_" for ch in name
    ):
        raise ChaosError(
            f"{path.name}: name must be a non-empty [a-z0-9_] string, got {name!r}"
        )
    family = payload["family"]
    if family not in FAMILIES:
        raise ChaosError(
            f"{path.name}: family {family!r} is not one of {FAMILIES}"
        )
    description = payload.get("description", "")
    if not isinstance(description, str):
        raise ChaosError(f"{path.name}: description must be a string")
    expect = payload.get("expect", {})
    if not isinstance(expect, dict):
        raise ChaosError(f"{path.name}: expect must be an object")
    bad_expect = sorted(set(expect) - set(EXPECT_KEYS))
    if bad_expect:
        raise ChaosError(
            f"{path.name}: unknown expect keys {bad_expect}; known: {list(EXPECT_KEYS)}"
        )
    for key, value in expect.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ChaosError(f"{path.name}: expect[{key!r}] must be a number")
    if not isinstance(payload["spec"], dict):
        raise ChaosError(f"{path.name}: spec must be an object")
    from ..experiments.spec import ScenarioSpec

    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ChaosError(f"{path.name}: bad spec: {exc}") from exc
    return ScenarioFile(
        path=str(path),
        name=name,
        family=family,
        spec=spec,
        description=description,
        expect={key: float(value) for key, value in expect.items()},
    )


def packaged_scenario_dir() -> Path:
    """Directory holding the scenario files shipped as package data."""
    return Path(__file__).resolve().parent / "scenarios"


def load_scenario_dir(directory: Path) -> Tuple[List[ScenarioFile], List[str]]:
    """Load every ``*.json`` file in ``directory``.

    Returns ``(files, errors)``; a broken file lands in ``errors`` as a
    one-line message and does not prevent its siblings from loading.
    """
    directory = Path(directory)
    files: List[ScenarioFile] = []
    errors: List[str] = []
    if not directory.is_dir():
        return files, [f"{directory}: not a directory"]
    for path in sorted(directory.glob("*.json")):
        try:
            files.append(load_scenario_file(path))
        except ChaosError as exc:
            errors.append(str(exc))
    return files, errors


def load_packaged_scenarios() -> Tuple[List[ScenarioFile], List[str]]:
    """Load the scenario pack shipped with the package."""
    return load_scenario_dir(packaged_scenario_dir())


def _apply_overrides(sf: ScenarioFile, overrides: Dict[str, Any]) -> "ScenarioSpec":
    from dataclasses import replace

    from ..experiments.spec import SpecError

    spec = sf.spec
    updates: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key == "sim":
            merged = dict(spec.sim)
            merged.update(value)
            updates["sim"] = merged
        elif key in ("label", "params", "edge", "notes", "initial_ramp_per_edge",
                     "initial_logical"):
            updates[key] = value
        else:
            raise SpecError(
                f"chaos scenario {sf.name!r} accepts overrides for "
                f"sim/label/params/edge/notes/initial_ramp_per_edge/"
                f"initial_logical, got {key!r}"
            )
    return replace(spec, **updates) if updates else spec


def _builder_for(sf: ScenarioFile):
    def build(**overrides: Any) -> ScenarioSpec:
        return _apply_overrides(sf, overrides)

    build.__name__ = sf.name
    build.__doc__ = f"[chaos/{sf.family}] {sf.description}".strip()
    build.chaos_family = sf.family
    build.chaos_path = sf.path
    return build


def register_packaged_scenarios() -> List[str]:
    """Register every packaged scenario file into ``SCENARIOS``.

    Called once from the bottom of :mod:`repro.experiments.registry`.
    Returns (and records in :data:`LOAD_ERRORS`) the per-file error messages;
    duplicate names -- within the pack or against built-in scenarios -- are
    reported the same way instead of aborting the import.
    """
    from ..experiments import registry as registry_mod

    files, errors = load_packaged_scenarios()
    for sf in files:
        try:
            registry_mod.SCENARIOS.register(sf.name, _builder_for(sf))
        except registry_mod.RegistryError as exc:
            errors.append(f"{Path(sf.path).name}: {exc}")
    LOAD_ERRORS[:] = errors
    return list(errors)


def scenario_files(
    extra_dirs: Sequence[Path] = (),
) -> Tuple[List[ScenarioFile], List[str]]:
    """Packaged scenario files plus any user-supplied directories."""
    files, errors = load_packaged_scenarios()
    for directory in extra_dirs:
        more, more_errors = load_scenario_dir(Path(directory))
        files.extend(more)
        errors.extend(more_errors)
    return files, errors
