"""Reproduction of "Optimal Gradient Clock Synchronization in Dynamic Networks".

The package is organised by subsystem:

* :mod:`repro.core` -- the AOPT algorithm and its building blocks
  (parameters, clocks, triggers, neighbor levels, edge insertion, max
  estimates);
* :mod:`repro.network` -- the dynamic estimate graph, topology generators and
  diameter bookkeeping;
* :mod:`repro.estimate` -- the estimate layer abstraction, the bounded-delay
  transport and the message types;
* :mod:`repro.sim` -- the fixed-step simulation engine, drift and delay
  adversaries, trace recording and the high-level runner;
* :mod:`repro.baselines` -- comparison algorithms (max propagation, single
  level threshold rule, immediate insertion, no synchronization);
* :mod:`repro.analysis` -- skew, gradient, legality and stabilization
  measurements plus report formatting;
* :mod:`repro.metrics` -- streaming run observers: summaries computed in the
  simulation hot loop (bit-identical to post-hoc trace analysis), making
  full traces an opt-in artifact and long runs constant-memory;
* :mod:`repro.fastsim` -- the struct-of-arrays fast simulation backend and
  the pluggable engine-backend registry (bit-identical to the reference
  engine on the scenarios it supports);
* :mod:`repro.lower_bounds` -- analytic bounds and the adversarial scenarios
  that exhibit them.
"""

from .core.algorithm import AOPT, AOPTConfig, aopt_factory
from .core.interfaces import ClockSyncAlgorithm, ControlDecision
from .core.parameters import DEFAULT_PARAMETERS, ParameterError, Parameters
from .core.skew_estimates import StaticGlobalSkewEstimate, suggest_global_skew_bound
from .network.dynamic_graph import DynamicGraph
from .network.edge import EdgeParams
from .sim.runner import (
    SimulationConfig,
    SimulationResult,
    default_aopt_config,
    run_aopt,
    run_simulation,
)

__version__ = "1.8.0"

__all__ = [
    "AOPT",
    "AOPTConfig",
    "aopt_factory",
    "ClockSyncAlgorithm",
    "ControlDecision",
    "DEFAULT_PARAMETERS",
    "ParameterError",
    "Parameters",
    "StaticGlobalSkewEstimate",
    "suggest_global_skew_bound",
    "DynamicGraph",
    "EdgeParams",
    "SimulationConfig",
    "SimulationResult",
    "default_aopt_config",
    "run_aopt",
    "run_simulation",
    "__version__",
]
