"""Oracle estimate layer: true clock values plus bounded, controllable error.

This layer realizes inequality (1) exactly: the estimate equals the subject's
true logical clock perturbed by an error whose magnitude never exceeds the
edge's uncertainty ``epsilon_e``.  The error strategy is pluggable so that the
experiments can exercise both benign and adversarial estimate noise:

* ``"zero"``          -- perfect estimates;
* ``"uniform"``       -- independent uniform noise in ``[-eps, +eps]``;
* ``"underestimate"`` -- always ``-eps`` (neighbors look behind);
* ``"overestimate"``  -- always ``+eps`` (neighbors look ahead);
* ``"toward_observer"`` -- the adversarial strategy that maximally delays
  corrections: each estimate is shifted by ``eps`` toward the observer's own
  clock value, so every skew looks smaller than it is.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from .estimate_layer import EstimateLayer, EstimateLayerError

ClockReader = Callable[[NodeId], float]

_STRATEGIES = ("zero", "uniform", "underestimate", "overestimate", "toward_observer")


class OracleEstimateLayer(EstimateLayer):
    """Estimates computed from the true clocks with bounded injected error."""

    def __init__(
        self,
        graph: DynamicGraph,
        clock_reader: ClockReader,
        *,
        strategy: str = "zero",
        seed: Optional[int] = None,
        error_scale: float = 1.0,
    ):
        if strategy not in _STRATEGIES:
            raise EstimateLayerError(
                f"unknown error strategy {strategy!r}; choose one of {_STRATEGIES}"
            )
        if not 0.0 <= error_scale <= 1.0:
            raise EstimateLayerError(
                f"error_scale must lie in [0, 1] so that (1) holds, got {error_scale}"
            )
        self.graph = graph
        self._clock_reader = clock_reader
        self.strategy = strategy
        self.error_scale = float(error_scale)
        self._rng = random.Random(seed)

    def _error(self, observer: NodeId, subject: NodeId, true_value: float) -> float:
        epsilon = self.graph.edge_params(observer, subject).epsilon * self.error_scale
        if epsilon == 0.0 or self.strategy == "zero":
            return 0.0
        if self.strategy == "uniform":
            return self._rng.uniform(-epsilon, epsilon)
        if self.strategy == "underestimate":
            return -epsilon
        if self.strategy == "overestimate":
            return epsilon
        # "toward_observer": shift the estimate toward the observer's clock,
        # clamped so the perturbation never exceeds the true difference.
        observer_value = self._clock_reader(observer)
        difference = observer_value - true_value
        if difference > 0.0:
            return min(epsilon, difference)
        return max(-epsilon, difference)

    def estimate(self, observer: NodeId, subject: NodeId, t: float) -> Optional[float]:
        if subject not in self.graph.neighbors(observer):
            return None
        true_value = self._clock_reader(subject)
        return max(0.0, true_value + self._error(observer, subject, true_value))

    def error_bound(self, observer: NodeId, subject: NodeId) -> float:
        return self.graph.edge_params(observer, subject).epsilon
