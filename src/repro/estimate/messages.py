"""Message payloads exchanged by clock synchronization algorithms.

Only two message kinds are needed:

* :class:`ClockBroadcast` -- a periodic broadcast carrying the sender's
  logical clock and max estimate; it drives the message-based estimate layer
  and the flooding of max estimates (Condition 4.3).
* :class:`InsertEdgeMessage` -- the handshake message of Listing 1, sent by
  the leader of a freshly discovered edge and carrying the logical insertion
  anchor ``L_ins`` and the global skew estimate used for the insertion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..network.edge import NodeId

_message_ids = itertools.count()


@dataclass(frozen=True)
class ClockBroadcast:
    """Periodic clock announcement from ``sender``."""

    sender: NodeId
    logical: float
    max_estimate: float
    hardware: float = 0.0

    def __post_init__(self):
        if self.logical < 0.0 or self.max_estimate < 0.0 or self.hardware < 0.0:
            raise ValueError("clock values are non-negative")


@dataclass(frozen=True)
class InsertEdgeMessage:
    """The ``insertedge({u, v}, L_ins, G~)`` handshake message of Listing 1."""

    edge: Tuple[NodeId, NodeId]
    insertion_anchor: float
    global_skew_estimate: float
    max_estimate: float = 0.0

    def __post_init__(self):
        u, v = self.edge
        if u == v:
            raise ValueError("an edge needs two distinct endpoints")
        if self.insertion_anchor < 0.0:
            raise ValueError("the insertion anchor is a logical time, hence >= 0")
        if self.global_skew_estimate <= 0.0:
            raise ValueError("the global skew estimate must be positive")


@dataclass(frozen=True)
class Envelope:
    """A payload in flight: sender, receiver and timing metadata."""

    sender: NodeId
    receiver: NodeId
    payload: object
    send_time: float
    delivery_time: float
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self):
        if self.delivery_time < self.send_time:
            raise ValueError(
                f"delivery time {self.delivery_time} precedes send time {self.send_time}"
            )

    @property
    def transit_time(self) -> float:
        return self.delivery_time - self.send_time
