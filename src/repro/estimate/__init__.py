"""Estimate layer abstraction, message types and bounded-delay transport."""

from .estimate_layer import EstimateLayer, EstimateLayerError
from .message_layer import BroadcastEstimateLayer, broadcast_error_bound
from .messages import ClockBroadcast, Envelope, InsertEdgeMessage
from .oracle_layer import OracleEstimateLayer
from .transport import Transport, TransportError

__all__ = [
    "EstimateLayer",
    "EstimateLayerError",
    "BroadcastEstimateLayer",
    "broadcast_error_bound",
    "ClockBroadcast",
    "Envelope",
    "InsertEdgeMessage",
    "OracleEstimateLayer",
    "Transport",
    "TransportError",
]
