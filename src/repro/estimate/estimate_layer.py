"""The estimate layer abstraction (Section 3.1).

An estimate layer provides, for every node ``u`` and every current neighbor
``v``, an estimate ``L~_u^v(t)`` of ``v``'s logical clock together with a
guaranteed error bound ``epsilon_{u,v}`` such that inequality (1) of the paper
holds:

    |L_v(t) - L~_u^v(t)| <= epsilon_{u,v}.

Two concrete layers are provided:

* :class:`~repro.estimate.oracle_layer.OracleEstimateLayer` reads the true
  clock and perturbs it by a bounded (possibly adversarial) error -- the
  abstraction the paper analyses directly.
* :class:`~repro.estimate.message_layer.BroadcastEstimateLayer` derives
  estimates from periodic clock broadcasts over the bounded-delay transport,
  showing one concrete realization of the abstraction.
"""

from __future__ import annotations

from typing import Optional

from ..network.edge import NodeId
from .messages import ClockBroadcast


class EstimateLayerError(ValueError):
    """Raised on invalid estimate layer operations."""


class EstimateLayer:
    """Interface shared by all estimate layers."""

    def estimate(
        self, observer: NodeId, subject: NodeId, t: float
    ) -> Optional[float]:  # pragma: no cover - abstract
        """Return ``L~_observer^subject(t)`` or ``None`` when unavailable."""
        raise NotImplementedError

    def error_bound(
        self, observer: NodeId, subject: NodeId
    ) -> float:  # pragma: no cover - abstract
        """Guaranteed error bound ``epsilon_{observer, subject}``."""
        raise NotImplementedError

    def on_broadcast(
        self, receiver: NodeId, broadcast: ClockBroadcast, t: float, transit_time: float
    ) -> None:
        """Hook invoked when a clock broadcast reaches ``receiver``."""
        # Oracle-style layers do not need broadcasts; default is a no-op.
        return None

    def requires_broadcasts(self) -> bool:
        """True when the layer only works if nodes broadcast periodically."""
        return False
