"""Message-based estimate layer.

Estimates are derived from periodic :class:`ClockBroadcast` messages: the
observer stores the most recent broadcast value of each neighbor together with
its own hardware clock at receipt, and extrapolates at its own hardware rate.
The guaranteed error bound follows from the broadcast interval, the delay
bound of the edge and the drift/rate envelopes:

* during the transit time (at most ``T``) the subject's logical clock advances
  by at most ``(1 + rho)(1 + mu) * T``;
* during the staleness period after receipt the extrapolation error grows at
  rate at most ``mu * (1 + rho) + 2 * rho`` (the difference between the
  fastest logical rate and the slowest hardware rate, and vice versa).

The resulting bound is what :meth:`error_bound` reports, so inequality (1)
holds for this layer by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from .estimate_layer import EstimateLayer, EstimateLayerError
from .messages import ClockBroadcast

HardwareReader = Callable[[NodeId], float]


@dataclass
class _StoredEstimate:
    value: float
    observer_hardware_at_receipt: float
    receipt_time: float


def broadcast_error_bound(
    delay_bound: float, broadcast_interval: float, rho: float, mu: float
) -> float:
    """Guaranteed estimate error of the broadcast layer for one edge.

    Shared by :meth:`BroadcastEstimateLayer.error_bound` and the flat
    engines' CSR columns, so the per-edge epsilon feeding the threshold
    tables is the exact same float everywhere.
    """
    # Worst-case real-time staleness of the stored value: one full
    # broadcast interval (measured on the sender's hardware clock, hence
    # the 1/(1-rho) factor) plus the transit time of the next broadcast.
    staleness_bound = broadcast_interval / (1.0 - rho) + delay_bound
    transit_error = (1.0 + rho) * (1.0 + mu) * delay_bound
    drift_error = (mu * (1.0 + rho) + 2.0 * rho) * staleness_bound
    return transit_error + drift_error


class BroadcastEstimateLayer(EstimateLayer):
    """Estimates extrapolated from the latest received clock broadcast."""

    def __init__(
        self,
        graph: DynamicGraph,
        hardware_reader: HardwareReader,
        *,
        broadcast_interval: float,
        rho: float,
        mu: float,
    ):
        if broadcast_interval <= 0.0:
            raise EstimateLayerError("broadcast_interval must be positive")
        if not 0.0 <= rho < 1.0:
            raise EstimateLayerError(f"rho must lie in [0, 1), got {rho}")
        if mu < 0.0:
            raise EstimateLayerError(f"mu must be non-negative, got {mu}")
        self.graph = graph
        self._hardware_reader = hardware_reader
        self.broadcast_interval = float(broadcast_interval)
        self.rho = float(rho)
        self.mu = float(mu)
        self._stored: Dict[Tuple[NodeId, NodeId], _StoredEstimate] = {}

    # ------------------------------------------------------------------
    def requires_broadcasts(self) -> bool:
        return True

    def on_broadcast(
        self, receiver: NodeId, broadcast: ClockBroadcast, t: float, transit_time: float
    ) -> None:
        key = (receiver, broadcast.sender)
        self._stored[key] = _StoredEstimate(
            value=broadcast.logical,
            observer_hardware_at_receipt=self._hardware_reader(receiver),
            receipt_time=t,
        )

    def forget(self, observer: NodeId, subject: NodeId) -> None:
        """Discard the stored estimate (called when an edge disappears)."""
        self._stored.pop((observer, subject), None)

    # ------------------------------------------------------------------
    def estimate(self, observer: NodeId, subject: NodeId, t: float) -> Optional[float]:
        stored = self._stored.get((observer, subject))
        if stored is None:
            return None
        elapsed_hardware = (
            self._hardware_reader(observer) - stored.observer_hardware_at_receipt
        )
        return stored.value + max(0.0, elapsed_hardware)

    def staleness(self, observer: NodeId, subject: NodeId, t: float) -> Optional[float]:
        """Real time since the last broadcast from ``subject`` was received."""
        stored = self._stored.get((observer, subject))
        if stored is None:
            return None
        return max(0.0, t - stored.receipt_time)

    def error_bound(self, observer: NodeId, subject: NodeId) -> float:
        params = self.graph.edge_params(observer, subject)
        return broadcast_error_bound(
            params.delay, self.broadcast_interval, self.rho, self.mu
        )
