"""Bounded-delay message transport.

The transport delivers messages sent over currently existing directed edges
within the edge's delay bound ``T_{u,v}``; the exact delay is chosen by a
:class:`~repro.sim.delay.DelayModel`.  Messages sent over edges that disappear
while the message is in flight may be dropped (the model permits either).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from .messages import Envelope


class TransportError(ValueError):
    """Raised on invalid transport operations."""


class Transport:
    """Queue of in-flight messages with bounded delays."""

    def __init__(
        self,
        graph: DynamicGraph,
        delay_model=None,
        *,
        drop_on_edge_loss: bool = False,
    ):
        if delay_model is None:
            # Imported lazily: the sim package imports the estimate package,
            # so a module-level import here would create a cycle.
            from ..sim.delay import FixedFractionDelay

            delay_model = FixedFractionDelay(0.5)
        self.graph = graph
        self.delay_model = delay_model
        self.drop_on_edge_loss = bool(drop_on_edge_loss)
        # Min-heap keyed on (delivery_time, message_id): deliveries_due pops
        # due messages in exactly the (delivery_time, message_id) order the
        # old scan-and-sort produced, without rescanning the whole queue
        # every step.
        self._in_flight: List[Tuple[float, int, Envelope]] = []
        self._sent_count = 0
        self._delivered_count = 0
        self._dropped_count = 0

    # ------------------------------------------------------------------
    @property
    def sent_count(self) -> int:
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        return self._delivered_count

    @property
    def dropped_count(self) -> int:
        return self._dropped_count

    def pending_count(self) -> int:
        return len(self._in_flight)

    # ------------------------------------------------------------------
    def send(self, sender: NodeId, receiver: NodeId, payload: object, t: float) -> Envelope:
        """Send ``payload`` from ``sender`` to ``receiver`` at time ``t``.

        The sender must currently see the edge (``receiver`` is among its
        out-neighbors); otherwise the send is rejected, mirroring the fact
        that a node only communicates with neighbors it has discovered.
        """
        if not self.graph.has_node(sender) or not self.graph.has_node(receiver):
            raise TransportError("unknown sender or receiver")
        if receiver not in self.graph.neighbors(sender):
            raise TransportError(
                f"node {sender} has no estimate edge towards {receiver} at time {t}"
            )
        bound = self.graph.edge_params(sender, receiver).delay
        delay = self.delay_model.delay(sender, receiver, t, bound)
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            payload=payload,
            send_time=t,
            delivery_time=t + delay,
        )
        heapq.heappush(
            self._in_flight, (envelope.delivery_time, envelope.message_id, envelope)
        )
        self._sent_count += 1
        return envelope

    def try_send(
        self, sender: NodeId, receiver: NodeId, payload: object, t: float
    ) -> Optional[Envelope]:
        """Like :meth:`send` but returns ``None`` when the edge is absent."""
        if not self.graph.has_node(sender) or not self.graph.has_node(receiver):
            return None
        if receiver not in self.graph.neighbors(sender):
            return None
        return self.send(sender, receiver, payload, t)

    def deliveries_due(self, t: float) -> List[Envelope]:
        """Remove and return the messages whose delivery time has been reached."""
        epsilon = 1e-12
        due: List[Envelope] = []
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= t + epsilon:
            envelope = heapq.heappop(in_flight)[2]
            if self.drop_on_edge_loss and not self.graph.has_directed_edge(
                envelope.receiver, envelope.sender
            ):
                # Receiver no longer sees the sender; the model allows the
                # message to be lost in this case.
                self._dropped_count += 1
                continue
            due.append(envelope)
        self._delivered_count += len(due)
        return due

    def drop_all(self) -> int:
        """Drop every in-flight message (used by fault-injection tests)."""
        dropped = len(self._in_flight)
        self._dropped_count += dropped
        self._in_flight = []
        return dropped
