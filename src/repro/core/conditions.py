"""Reference fast/slow/max-estimate conditions (Definitions 4.1, 4.2, 4.4).

These conditions are stated on the *true* clock values of a node and its
level-``s`` neighbors; they are what the analysis of the paper reasons about,
while the triggers of :mod:`repro.core.triggers` are what nodes can actually
evaluate.  Lemma 5.2 shows the triggers implement the conditions; the test
suite and the invariant benchmark (E10) re-check this relationship on recorded
simulation states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..network.edge import NodeId
from .parameters import Parameters


@dataclass(frozen=True)
class TrueNeighborState:
    """True clock value of a level-annotated neighbor (omniscient view)."""

    neighbor: NodeId
    logical: float
    kappa: float
    tau: float
    level: int

    def __post_init__(self):
        if self.kappa <= 0.0:
            raise ValueError("kappa must be positive")
        if self.tau < 0.0:
            raise ValueError("tau must be non-negative")


def _at_level(states: Iterable[TrueNeighborState], level: int) -> List[TrueNeighborState]:
    return [state for state in states if state.level >= level]


def fast_condition_requires_fast(
    logical: float,
    states: Sequence[TrueNeighborState],
    params: Parameters,
    max_level: int,
) -> Optional[int]:
    """FC (Definition 4.1): level on which the node *must* be fast, if any."""
    for level in range(1, max_level + 1):
        level_states = _at_level(states, level)
        if not level_states:
            break
        someone_ahead = any(
            state.logical - logical >= level * state.kappa for state in level_states
        )
        nobody_far_behind = all(
            logical - state.logical <= level * state.kappa + 2.0 * params.mu * state.tau
            for state in level_states
        )
        if someone_ahead and nobody_far_behind:
            return level
    return None


def slow_condition_requires_slow(
    logical: float,
    states: Sequence[TrueNeighborState],
    params: Parameters,
    max_level: int,
    delta: float,
) -> Optional[int]:
    """SC (Definition 4.2): level on which the node *must* be slow, if any.

    ``delta`` is the network-wide slack ``min_e delta_e`` used in the
    definition (Lemma 5.2 shows any positive value below the per-edge slacks
    works).
    """
    if delta <= 0.0:
        raise ValueError("delta must be positive")
    for level in range(1, max_level + 1):
        level_states = _at_level(states, level)
        if not level_states:
            break
        someone_behind = any(
            logical - state.logical >= (level + 0.5) * state.kappa - delta
            for state in level_states
        )
        nobody_far_ahead = all(
            state.logical - logical
            <= (level + 0.5) * state.kappa
            + delta
            + params.mu * (1.0 + params.rho) * state.tau
            for state in level_states
        )
        if someone_behind and nobody_far_ahead:
            return level
    return None


@dataclass(frozen=True)
class MaxConditionResult:
    """Outcome of evaluating MC (Definition 4.4)."""

    requires_slow: bool
    requires_fast: bool


def max_estimate_condition(
    logical: float,
    max_estimate: float,
    neighbor_logicals: Sequence[float],
    params: Parameters,
    *,
    tolerance: float = 1e-9,
) -> MaxConditionResult:
    """MC (Definition 4.4) on true values.

    * slow is required when ``L = M`` and the node is (weakly) ahead of every
      neighbor;
    * fast is required when ``L <= M - iota`` and the node is (weakly) behind
      every neighbor.
    """
    ahead_of_all = all(logical >= other - tolerance for other in neighbor_logicals)
    behind_all = all(logical <= other + tolerance for other in neighbor_logicals)
    requires_slow = abs(max_estimate - logical) <= tolerance and ahead_of_all
    requires_fast = (max_estimate - logical >= params.iota - tolerance) and behind_all
    return MaxConditionResult(requires_slow=requires_slow, requires_fast=requires_fast)


def conditions_conflict(
    logical: float,
    states: Sequence[TrueNeighborState],
    params: Parameters,
    max_level: int,
    delta: float,
) -> bool:
    """True when FC and SC simultaneously require fast *and* slow mode.

    The paper proves (implicitly, through Lemma 5.3 and the choice of the
    trigger constants) that this never happens; the invariant benchmark E10
    counts violations over randomized runs (and should always report zero).
    """
    fast_level = fast_condition_requires_fast(logical, states, params, max_level)
    slow_level = slow_condition_requires_slow(logical, states, params, max_level, delta)
    return fast_level is not None and slow_level is not None


def condition_4_3_holds(
    max_estimate: float,
    own_logical: float,
    true_max_logical: float,
    dynamic_diameter: float,
    *,
    tolerance: float = 1e-6,
) -> bool:
    """Condition 4.3: ``L_u <= M_u <= max L_v`` and ``M_u >= max L_v - D(t)``."""
    if max_estimate > true_max_logical + tolerance:
        return False
    if max_estimate < own_logical - tolerance:
        return False
    if max_estimate < true_max_logical - dynamic_diameter - tolerance:
        return False
    return True
