"""Maintenance of the max estimate ``M_u`` (Condition 4.3).

Every node keeps an estimate of the largest logical clock in the network.
The update rules are exactly those of Section 4.2:

* while ``M_u = L_u`` the estimate follows the node's own logical clock;
* while ``M_u > L_u`` it grows at rate ``(1 - rho) / (1 + rho)`` times the
  node's hardware clock rate, which is guaranteed not to overtake the true
  maximum (whose rate is at least ``1 - rho``);
* on reception of a message carrying a neighbor's max estimate the local
  value is raised to the received one (the received value was a valid lower
  bound on the maximum when it was sent, and the maximum only increases).

Together these rules imply Condition 4.3:
``L_u(t) <= M_u(t) <= max_v L_v(t)`` and
``M_u(t) >= max_v L_v(t) - D(t)``.
"""

from __future__ import annotations

from typing import Optional


class MaxEstimateTracker:
    """Tracks ``M_u`` for one node."""

    def __init__(self, rho: float, initial_value: float = 0.0):
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must lie in [0, 1), got {rho}")
        if initial_value < 0.0:
            raise ValueError("the max estimate is non-negative")
        self.rho = float(rho)
        self._value = float(initial_value)
        self._last_hardware: Optional[float] = None

    @property
    def value(self) -> float:
        """Current max estimate ``M_u``."""
        return self._value

    @property
    def conservative_rate_factor(self) -> float:
        """Growth factor applied to hardware progress while ``M_u > L_u``."""
        return (1.0 - self.rho) / (1.0 + self.rho)

    def advance(self, hardware_value: float, logical_value: float) -> float:
        """Advance the estimate given the node's current clock readings.

        ``hardware_value`` must be non-decreasing across calls; the difference
        to the previous call determines the conservative growth.  The estimate
        is then raised to the node's own logical clock, which is always a
        valid lower bound on the network maximum.
        """
        if logical_value < 0.0 or hardware_value < 0.0:
            raise ValueError("clock values are non-negative")
        if self._last_hardware is None:
            self._last_hardware = hardware_value
        if hardware_value < self._last_hardware - 1e-12:
            raise ValueError("hardware clocks never run backwards")
        delta = max(0.0, hardware_value - self._last_hardware)
        self._last_hardware = hardware_value
        self._value += delta * self.conservative_rate_factor
        if logical_value > self._value:
            self._value = logical_value
        return self._value

    def observe_remote(self, remote_estimate: float) -> float:
        """Incorporate a max estimate received from a neighbor."""
        if remote_estimate < 0.0:
            raise ValueError("the max estimate is non-negative")
        if remote_estimate > self._value:
            self._value = remote_estimate
        return self._value

    def lag_behind(self, logical_value: float) -> float:
        """``M_u - L_u``; non-negative whenever :meth:`advance` was called."""
        return self._value - logical_value
