"""Level-indexed neighbor sets ``N^0_u >= N^1_u >= N^2_u >= ...``.

A node keeps, for every discovered neighbor, the highest level ``s`` such that
the neighbor belongs to ``N^s_u``.  Because neighbors are only ever added to
level ``s`` after having been added to all smaller levels, and removal always
removes a neighbor from every level at once (Listing 1), storing the single
highest level per neighbor represents the whole family of sets and makes the
subset invariant of Lemma 5.1 hold by construction.

Edges present at time 0 are members of every level from the start; this is
represented by the sentinel :data:`FULLY_INSERTED`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..network.edge import NodeId

#: Sentinel level meaning "member of N^s for every s" (fully inserted edge).
FULLY_INSERTED: int = 10 ** 9


class NeighborLevelError(ValueError):
    """Raised on invalid neighbor set manipulations."""


class NeighborLevels:
    """Per-node view of the level sets ``N^s_u``."""

    def __init__(self, max_level: int):
        if max_level < 1:
            raise NeighborLevelError(f"max_level must be >= 1, got {max_level}")
        self.max_level = int(max_level)
        self._level: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def discover(self, neighbor: NodeId) -> None:
        """Add a freshly discovered neighbor to ``N^0_u`` only."""
        if neighbor not in self._level:
            self._level[neighbor] = 0

    def add_fully_inserted(self, neighbor: NodeId) -> None:
        """Add a neighbor to every level at once (edges present at time 0)."""
        self._level[neighbor] = FULLY_INSERTED

    def promote(self, neighbor: NodeId, level: int) -> None:
        """Insert ``neighbor`` into ``N^level_u`` (and implicitly all below)."""
        if level < 0:
            raise NeighborLevelError(f"levels are non-negative, got {level}")
        if neighbor not in self._level:
            raise NeighborLevelError(
                f"neighbor {neighbor} must be discovered before promotion"
            )
        if level > self._level[neighbor]:
            self._level[neighbor] = level
        if self._level[neighbor] >= self.max_level:
            self._level[neighbor] = FULLY_INSERTED

    def remove(self, neighbor: NodeId) -> None:
        """Remove a neighbor from every level (edge failure, Listing 1)."""
        self._level.pop(neighbor, None)

    def clear(self) -> None:
        self._level.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def discovered(self) -> Set[NodeId]:
        """The set ``N^0_u = N_u`` of all discovered neighbors."""
        return set(self._level)

    def members(self, level: int) -> Set[NodeId]:
        """The set ``N^level_u``."""
        if level < 0:
            raise NeighborLevelError(f"levels are non-negative, got {level}")
        return {v for v, lv in self._level.items() if lv >= level}

    def level_of(self, neighbor: NodeId) -> Optional[int]:
        """Highest level the neighbor belongs to, or ``None`` if unknown."""
        return self._level.get(neighbor)

    def contains(self, neighbor: NodeId, level: int) -> bool:
        lv = self._level.get(neighbor)
        return lv is not None and lv >= level

    def is_fully_inserted(self, neighbor: NodeId) -> bool:
        return self._level.get(neighbor, -1) >= self.max_level

    def fully_inserted(self) -> Set[NodeId]:
        return {v for v in self._level if self.is_fully_inserted(v)}

    def __len__(self) -> int:
        return len(self._level)

    def __contains__(self, neighbor: NodeId) -> bool:
        return neighbor in self._level

    # ------------------------------------------------------------------
    # Invariant checks (used by tests and the invariant benchmark)
    # ------------------------------------------------------------------
    def subset_chain_holds(self) -> bool:
        """Lemma 5.1: ``N^s_u`` is a subset of ``N^(s-1)_u`` for every s."""
        previous = self.members(0)
        for level in range(1, self.max_level + 1):
            current = self.members(level)
            if not current.issubset(previous):
                return False
            previous = current
        return True
