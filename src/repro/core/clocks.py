"""Hardware and logical clocks.

Clocks in the paper are continuous, (left-)differentiable functions of real
time.  In the simulator they are piecewise linear: during a simulation step of
length ``dt`` a clock advances by ``rate * dt`` where the rate stays constant
within the step.  Both clock classes keep a small amount of history so that
tests and analyses can interpolate past values.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ClockError(ValueError):
    """Raised on invalid clock operations (negative time, rate violations)."""


class _PiecewiseLinearClock:
    """Common machinery for piecewise linear clocks."""

    __slots__ = ("_value", "_time", "_history", "_record_history")

    def __init__(self, initial_value: float = 0.0, *, record_history: bool = False):
        if initial_value < 0.0:
            raise ClockError(f"clock values are non-negative, got {initial_value}")
        self._value = float(initial_value)
        self._time = 0.0
        self._record_history = bool(record_history)
        self._history: List[Tuple[float, float]] = [(0.0, self._value)]

    @property
    def value(self) -> float:
        """Current clock reading."""
        return self._value

    @property
    def time(self) -> float:
        """Real time up to which the clock has been advanced."""
        return self._time

    def _advance(self, dt: float, rate: float) -> float:
        if dt < 0.0:
            raise ClockError(f"cannot advance a clock by negative time {dt}")
        if rate < 0.0:
            raise ClockError(f"clock rates are non-negative, got {rate}")
        self._value += rate * dt
        self._time += dt
        if self._record_history:
            self._history.append((self._time, self._value))
        return self._value

    def value_at(self, t: float) -> float:
        """Interpolated clock value at real time ``t`` (requires history)."""
        if not self._record_history:
            raise ClockError("history recording is disabled for this clock")
        history = self._history
        if t <= history[0][0]:
            return history[0][1]
        if t >= history[-1][0]:
            return history[-1][1]
        lo, hi = 0, len(history) - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if history[mid][0] <= t:
                lo = mid
            else:
                hi = mid
        t0, v0 = history[lo]
        t1, v1 = history[hi]
        if t1 == t0:
            return v1
        frac = (t - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    @property
    def history(self) -> List[Tuple[float, float]]:
        return list(self._history)


class HardwareClock(_PiecewiseLinearClock):
    """A drifting hardware clock ``H_u`` with rate in ``[1 - rho, 1 + rho]``."""

    __slots__ = ("rho", "_last_rate")

    def __init__(
        self,
        rho: float,
        initial_value: float = 0.0,
        *,
        record_history: bool = False,
    ):
        if not 0.0 <= rho < 1.0:
            raise ClockError(f"rho must lie in [0, 1), got {rho}")
        super().__init__(initial_value, record_history=record_history)
        self.rho = float(rho)
        self._last_rate = 1.0

    def advance(self, dt: float, rate: float) -> float:
        """Advance by ``dt`` real time at hardware rate ``rate``."""
        tolerance = 1e-12
        if rate < 1.0 - self.rho - tolerance or rate > 1.0 + self.rho + tolerance:
            raise ClockError(
                f"hardware rate {rate} outside [{1.0 - self.rho}, {1.0 + self.rho}]"
            )
        self._last_rate = float(rate)
        return self._advance(dt, rate)

    @property
    def last_rate(self) -> float:
        """Hardware rate used in the most recent advancement."""
        return self._last_rate


class LogicalClock(_PiecewiseLinearClock):
    """A logical clock ``L_u`` driven by a hardware clock and a multiplier."""

    __slots__ = ("_last_multiplier", "allow_jumps")

    def __init__(
        self,
        initial_value: float = 0.0,
        *,
        record_history: bool = False,
        allow_jumps: bool = False,
    ):
        super().__init__(initial_value, record_history=record_history)
        self._last_multiplier = 1.0
        self.allow_jumps = bool(allow_jumps)

    def advance(self, dt: float, hardware_rate: float, multiplier: float) -> float:
        """Advance by ``dt`` at rate ``multiplier * hardware_rate``."""
        if multiplier < 0.0:
            raise ClockError(f"multiplier must be non-negative, got {multiplier}")
        self._last_multiplier = float(multiplier)
        return self._advance(dt, hardware_rate * multiplier)

    def jump_to(self, value: float) -> float:
        """Discontinuously set the clock (used by baselines, never by AOPT)."""
        if not self.allow_jumps:
            raise ClockError("this logical clock does not permit jumps")
        if value < self._value:
            raise ClockError(
                f"logical clocks never decrease (current {self._value}, asked {value})"
            )
        self._value = float(value)
        if self._record_history:
            self._history.append((self._time, self._value))
        return self._value

    @property
    def last_multiplier(self) -> float:
        """Rate multiplier used in the most recent advancement."""
        return self._last_multiplier


def rate_envelope_holds(
    elapsed: float,
    clock_delta: float,
    min_rate: float,
    max_rate: float,
    tolerance: float = 1e-9,
) -> bool:
    """Check ``min_rate * elapsed <= clock_delta <= max_rate * elapsed``."""
    if elapsed < 0.0:
        raise ClockError("elapsed time must be non-negative")
    lower = min_rate * elapsed - tolerance
    upper = max_rate * elapsed + tolerance
    return lower <= clock_delta <= upper
