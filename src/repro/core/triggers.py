"""Fast and slow mode triggers (Definitions 4.5, 4.6 and 4.7).

The triggers are the *implementable* counterparts of the fast/slow mode
conditions FC and SC: they are expressed in terms of the clock estimates a
node actually has, and they compensate for the estimate error so that the
conditions (stated on true clock values) are implied (Lemma 5.2).

The functions here are pure: they take the node's own logical clock, the
per-level neighbor views and the algorithm parameters, and report whether a
trigger fires (and on which level).  This keeps them independently testable
and lets the verification tooling re-evaluate them on recorded snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..network.edge import NodeId
from .parameters import Parameters


@dataclass(frozen=True)
class NeighborView:
    """What a node knows about one neighbor when evaluating its triggers."""

    neighbor: NodeId
    estimate: float
    kappa: float
    epsilon: float
    tau: float
    delta: float
    level: int

    def __post_init__(self):
        if self.kappa <= 0.0:
            raise ValueError("kappa must be positive")
        if self.epsilon < 0.0 or self.tau < 0.0 or self.delta < 0.0:
            raise ValueError("epsilon, tau and delta must be non-negative")
        if self.level < 0:
            raise ValueError("levels are non-negative")


def views_at_level(views: Iterable[NeighborView], level: int) -> List[NeighborView]:
    """Neighbors that belong to ``N^level_u`` (their level is at least s)."""
    return [view for view in views if view.level >= level]


def fast_trigger_at_level(
    logical: float, level: int, level_views: Sequence[NeighborView], params: Parameters
) -> bool:
    """Definition 4.5 for a fixed level ``s``.

    Fires when some neighbor's estimate is at least ``s * kappa - epsilon``
    ahead and no neighbor's estimate is more than
    ``s * kappa + 2 * mu * tau + epsilon`` behind.
    """
    if level < 1:
        raise ValueError("trigger levels start at 1")
    if not level_views:
        return False
    someone_ahead = any(
        view.estimate - logical >= level * view.kappa - view.epsilon
        for view in level_views
    )
    if not someone_ahead:
        return False
    nobody_far_behind = all(
        logical - view.estimate
        <= level * view.kappa + 2.0 * params.mu * view.tau + view.epsilon
        for view in level_views
    )
    return nobody_far_behind


def slow_trigger_at_level(
    logical: float, level: int, level_views: Sequence[NeighborView], params: Parameters
) -> bool:
    """Definition 4.6 for a fixed level ``s``.

    Fires when some neighbor's estimate is at least
    ``(s + 1/2) * kappa - delta - epsilon`` behind and no neighbor's estimate
    is more than ``(s + 1/2) * kappa + delta + epsilon + mu (1 + rho) tau``
    ahead.
    """
    if level < 1:
        raise ValueError("trigger levels start at 1")
    if not level_views:
        return False
    someone_behind = any(
        logical - view.estimate
        >= (level + 0.5) * view.kappa - view.delta - view.epsilon
        for view in level_views
    )
    if not someone_behind:
        return False
    nobody_far_ahead = all(
        view.estimate - logical
        <= (level + 0.5) * view.kappa
        + view.delta
        + view.epsilon
        + params.mu * (1.0 + params.rho) * view.tau
        for view in level_views
    )
    return nobody_far_ahead


def fast_trigger_level(
    logical: float,
    views: Sequence[NeighborView],
    params: Parameters,
    max_level: int,
) -> Optional[int]:
    """Smallest level on which the fast mode trigger fires, or ``None``."""
    for level in range(1, max_level + 1):
        level_views = views_at_level(views, level)
        if not level_views:
            break
        if fast_trigger_at_level(logical, level, level_views, params):
            return level
    return None


def slow_trigger_level(
    logical: float,
    views: Sequence[NeighborView],
    params: Parameters,
    max_level: int,
) -> Optional[int]:
    """Smallest level on which the slow mode trigger fires, or ``None``."""
    for level in range(1, max_level + 1):
        level_views = views_at_level(views, level)
        if not level_views:
            break
        if slow_trigger_at_level(logical, level, level_views, params):
            return level
    return None


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of evaluating all triggers for a node."""

    mode: str  # "fast", "slow" or "free"
    level: Optional[int] = None
    reason: str = ""


def evaluate_triggers(
    logical: float,
    max_estimate: float,
    views: Sequence[NeighborView],
    params: Parameters,
    max_level: int,
    *,
    equality_tolerance: float = 1e-9,
) -> TriggerDecision:
    """Full mode logic of Listing 3.

    The slow trigger takes precedence, then the fast trigger, then the max
    estimate triggers (Definition 4.7).  When none applies the decision is
    ``"free"`` and the caller keeps its current mode.
    """
    slow_level = slow_trigger_level(logical, views, params, max_level)
    if slow_level is not None:
        return TriggerDecision("slow", slow_level, "slow mode trigger")
    fast_level = fast_trigger_level(logical, views, params, max_level)
    if fast_level is not None:
        return TriggerDecision("fast", fast_level, "fast mode trigger")
    lag = max_estimate - logical
    if lag <= equality_tolerance:
        return TriggerDecision("slow", None, "max estimate trigger (L = M)")
    if lag >= params.iota:
        return TriggerDecision("fast", None, "max estimate trigger (L <= M - iota)")
    return TriggerDecision("free", None, "no trigger")
