"""Global skew estimates ``G~`` used by the edge insertion protocol.

The algorithm needs, for every edge insertion, an upper bound on the global
skew (equation (5)/(6)).  Two variants are supported:

* :class:`StaticGlobalSkewEstimate` -- a single a-priori bound ``G~`` valid at
  all times (the assumption of Sections 4--6);
* :class:`DynamicGlobalSkewEstimate` -- a time-dependent, node-local estimate
  as in Section 7, here derived from the node's max-estimate lag and a bound
  on the dynamic diameter (``G(t) <= D(t) + iota`` by Theorem 5.6, so any
  upper bound on the diameter yields a valid estimate).

The module also provides a heuristic for picking a static bound from a given
topology, which the simulation runner uses by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..network.dynamic_graph import DynamicGraph
from ..network import paths
from .parameters import Parameters


class GlobalSkewEstimate:
    """Interface: return the node's current global skew estimate."""

    def value(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def is_dynamic(self) -> bool:
        return False


@dataclass(frozen=True)
class StaticGlobalSkewEstimate(GlobalSkewEstimate):
    """The fixed bound ``G~`` of equation (6)."""

    bound: float

    def __post_init__(self):
        if self.bound <= 0.0:
            raise ValueError(f"the global skew bound must be positive, got {self.bound}")

    def value(self, t: float) -> float:
        return self.bound


class DynamicGlobalSkewEstimate(GlobalSkewEstimate):
    """A time-dependent estimate ``G~_u(t)`` (Section 7).

    ``provider`` returns the node's current estimate; it must always be an
    upper bound on the true global skew (equation (5)).  ``floor`` guards
    against degenerate values.
    """

    def __init__(self, provider: Callable[[float], float], *, floor: float = 1.0):
        if not callable(provider):
            raise ValueError("provider must be callable")
        if floor <= 0.0:
            raise ValueError("floor must be positive")
        self._provider = provider
        self.floor = float(floor)

    def value(self, t: float) -> float:
        return max(self.floor, float(self._provider(t)))

    def is_dynamic(self) -> bool:
        return True


def suggest_global_skew_bound(
    graph: DynamicGraph,
    params: Parameters,
    *,
    broadcast_interval: float = 1.0,
    safety_factor: float = 2.0,
) -> float:
    """Heuristic static bound ``G~`` for a given (initial) topology.

    The global skew converges to roughly the dynamic estimate diameter plus
    ``iota`` (Theorem 5.6).  With periodic broadcasts every
    ``broadcast_interval`` over edges with delay bound ``T`` and uncertainty
    ``epsilon``, one hop contributes an estimate error of about
    ``epsilon + T + 2 rho (broadcast_interval + T)``; summing along the
    weighted diameter and applying a safety factor yields the suggested bound.
    New edges may later shrink the diameter but never enlarge it beyond the
    initial value as long as base edges persist, so the bound stays valid.
    """
    if safety_factor < 1.0:
        raise ValueError("safety_factor must be at least 1")

    def per_hop(u, v):
        edge = graph.edge_params(u, v)
        return (
            edge.epsilon
            + edge.delay
            + 2.0 * params.rho * (broadcast_interval + edge.delay)
        )

    diameter = paths.weighted_diameter(graph, per_hop)
    return safety_factor * (diameter + params.iota) + 1.0
