"""Interfaces between clock synchronization algorithms and the simulator.

An algorithm instance is attached to exactly one node.  It interacts with the
world only through a :class:`NodeAPI`:

* reading its own hardware and logical clocks,
* reading clock estimates (and their guaranteed error bounds) of neighbors,
* sending messages over currently existing estimate edges,
* scheduling callbacks at future times.

The simulation engine drives the algorithm through the
:class:`ClockSyncAlgorithm` callbacks and applies the
:class:`ControlDecision` it returns each step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Set

from ..network.edge import EdgeParams, NodeId


@dataclass(frozen=True)
class ControlDecision:
    """Outcome of one control evaluation.

    ``multiplier`` is the factor applied to the hardware rate for the next
    simulation step (1 for slow mode, ``1 + mu`` for fast mode).  ``jump_to``
    requests a discrete increase of the logical clock; it is used only by
    baselines that are allowed to jump (AOPT never jumps).
    """

    multiplier: float
    jump_to: Optional[float] = None

    def __post_init__(self):
        if self.multiplier < 0.0:
            raise ValueError(f"multiplier must be non-negative, got {self.multiplier}")
        if self.jump_to is not None and self.jump_to < 0.0:
            raise ValueError(f"jump_to must be non-negative, got {self.jump_to}")


class NodeAPI(ABC):
    """Everything a node-local algorithm may observe or do."""

    @property
    @abstractmethod
    def node_id(self) -> NodeId:
        """Identifier of the node this API belongs to."""

    @abstractmethod
    def now(self) -> float:
        """Current real time (used only for scheduling, never for clocks)."""

    @abstractmethod
    def hardware(self) -> float:
        """Current hardware clock value ``H_u(t)``."""

    @abstractmethod
    def logical(self) -> float:
        """Current logical clock value ``L_u(t)``."""

    @abstractmethod
    def neighbors(self) -> Set[NodeId]:
        """Out-neighbors in the estimate graph (the set ``N_u(t)``)."""

    @abstractmethod
    def estimate(self, neighbor: NodeId) -> Optional[float]:
        """Estimate ``L~_u^v(t)`` of a neighbor's logical clock, if available."""

    @abstractmethod
    def estimate_error(self, neighbor: NodeId) -> float:
        """Guaranteed error bound ``epsilon_{u,v}`` of the estimate."""

    @abstractmethod
    def edge_params(self, neighbor: NodeId) -> EdgeParams:
        """Parameters (epsilon, tau, delay bound) of the edge to ``neighbor``."""

    @abstractmethod
    def send(self, neighbor: NodeId, payload: object) -> bool:
        """Send ``payload`` to ``neighbor``; returns False when no edge exists."""

    @abstractmethod
    def schedule(self, delay: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(fire_time)`` after ``delay`` real time units."""


class ClockSyncAlgorithm(ABC):
    """Base class for all clock synchronization algorithms."""

    #: Human readable name used in reports and benchmark tables.
    name: str = "abstract"

    def __init__(self):
        self.api: Optional[NodeAPI] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, api: NodeAPI) -> None:
        """Attach the algorithm to a node; called once before the run starts."""
        self.api = api

    def on_start(self, t: float, initial_neighbors: Iterable[NodeId]) -> None:
        """Called at the start of the run with the neighbors present at time 0."""

    # ------------------------------------------------------------------
    # Event callbacks
    # ------------------------------------------------------------------
    def on_edge_discovered(self, t: float, neighbor: NodeId) -> None:
        """The estimate edge towards ``neighbor`` has appeared."""

    def on_edge_lost(self, t: float, neighbor: NodeId) -> None:
        """The estimate edge towards ``neighbor`` has disappeared."""

    def on_message(self, t: float, sender: NodeId, payload: object) -> None:
        """A message from ``sender`` has been delivered."""

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    @abstractmethod
    def control(self, t: float) -> ControlDecision:
        """Evaluate the mode logic and return the decision for the next step."""

    # ------------------------------------------------------------------
    # Introspection used by analyses and tests (optional overrides)
    # ------------------------------------------------------------------
    def mode(self) -> str:
        """Return ``"fast"`` or ``"slow"`` (best effort, for reporting)."""
        return "slow"

    def max_estimate(self) -> float:
        """The node's current estimate of the maximum logical clock."""
        return self.api.logical() if self.api is not None else 0.0


AlgorithmFactory = Callable[[NodeId], ClockSyncAlgorithm]
