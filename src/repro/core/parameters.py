"""Algorithm parameters and the constraints the paper places on them.

The parameters mirror Section 4.3.1 of the paper:

* ``rho``   -- upper bound on the hardware clock drift (Section 3).
* ``mu``    -- rate boost used in fast mode; the logical clock runs at
  ``(1 + mu) * h_u(t)`` in fast mode and at ``h_u(t)`` in slow mode.
* ``sigma`` -- base of the logarithm in the gradient skew bound,
  ``sigma = (1 - rho) * mu / (2 * rho)`` (equation (8)).
* ``kappa_e`` -- per-edge weight, which must satisfy
  ``kappa_e > 4 * (epsilon_e + mu * tau_e)`` (equation (9)).
* ``delta_e`` -- slack used by the slow mode trigger, chosen in the open
  interval ``(0, kappa_e / 2 - 2 * epsilon_e - 2 * mu * tau_e)``.
* ``I(G)``  -- insertion duration for the static global skew estimate
  (equation (10)) and its dynamic-estimate counterpart (equation (11)).
* ``B``     -- constant for the dynamic-estimate analysis (equation (12)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


class ParameterError(ValueError):
    """Raised when a parameter assignment violates a constraint of the paper."""


@dataclass(frozen=True)
class Parameters:
    """Immutable bundle of the algorithm parameters.

    The defaults describe a mildly drifting system (``rho = 1e-3``) with a ten
    percent fast-mode boost, which satisfies every constraint of the paper
    (``sigma`` is then just below 50, comfortably above the ``sigma >= 3``
    assumption used in the analysis).
    """

    rho: float = 1e-3
    mu: float = 0.1
    iota: float = 1e-3
    kappa_margin: float = 1.05
    delta_fraction: float = 0.5
    max_level: int = 0  # 0 means "derive from the global skew estimate"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sigma(self) -> float:
        """Base of the gradient logarithm, equation (8)."""
        return (1.0 - self.rho) * self.mu / (2.0 * self.rho)

    @property
    def alpha(self) -> float:
        """Minimum logical clock rate (slow mode, slowest hardware clock)."""
        return 1.0 - self.rho

    @property
    def beta(self) -> float:
        """Maximum logical clock rate (fast mode, fastest hardware clock)."""
        return (1.0 + self.rho) * (1.0 + self.mu)

    @property
    def min_hardware_rate(self) -> float:
        return 1.0 - self.rho

    @property
    def max_hardware_rate(self) -> float:
        return 1.0 + self.rho

    @property
    def self_stabilization_rate(self) -> float:
        """Rate at which an excessive global skew shrinks, Theorem 5.6(II)."""
        return self.mu * (1.0 - self.rho) - 2.0 * self.rho

    @property
    def b_constant(self) -> float:
        """The constant ``B`` of equation (12) (its smallest legal value)."""
        return 320.0 * (2.0 ** 7) / ((1.0 - self.rho) ** 2)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, *, strict_sigma: bool = False) -> None:
        """Check the constraints of Section 4.3.1.

        ``strict_sigma`` additionally enforces ``sigma >= 3``, which the
        analysis in Section 5 assumes (the algorithm itself only needs
        ``sigma > 1``).
        """
        if not 0.0 < self.rho < 1.0:
            raise ParameterError(f"rho must lie in (0, 1), got {self.rho}")
        if self.mu <= 0.0:
            raise ParameterError(f"mu must be positive, got {self.mu}")
        if self.mu > 0.1 + 1e-12:
            raise ParameterError(
                f"mu must not exceed 1/10 (equation (7)), got {self.mu}"
            )
        if self.sigma <= 1.0:
            raise ParameterError(
                "sigma = (1-rho)*mu/(2*rho) must exceed 1, i.e. "
                f"mu > 2*rho/(1-rho); got sigma = {self.sigma:.4f}"
            )
        if strict_sigma and self.sigma < 3.0:
            raise ParameterError(
                f"the analysis assumes sigma >= 3, got sigma = {self.sigma:.4f}"
            )
        if self.iota <= 0.0:
            raise ParameterError(f"iota must be positive, got {self.iota}")
        if self.kappa_margin <= 1.0:
            raise ParameterError(
                f"kappa_margin must exceed 1 so that equation (9) is strict, "
                f"got {self.kappa_margin}"
            )
        if not 0.0 < self.delta_fraction < 1.0:
            raise ParameterError(
                f"delta_fraction must lie in (0, 1), got {self.delta_fraction}"
            )
        if self.max_level < 0:
            raise ParameterError(f"max_level must be >= 0, got {self.max_level}")

    def is_valid(self) -> bool:
        """Return True when :meth:`validate` would not raise."""
        try:
            self.validate()
        except ParameterError:
            return False
        return True

    def with_mu(self, mu: float) -> "Parameters":
        """Return a copy with a different ``mu`` (useful for sweeps)."""
        return replace(self, mu=mu)

    def with_rho(self, rho: float) -> "Parameters":
        """Return a copy with a different ``rho``."""
        return replace(self, rho=rho)

    # ------------------------------------------------------------------
    # Per-edge quantities
    # ------------------------------------------------------------------
    def kappa_for(self, epsilon: float, tau: float) -> float:
        """Edge weight ``kappa_e`` satisfying equation (9) with a margin."""
        if epsilon < 0.0 or tau < 0.0:
            raise ParameterError("epsilon and tau must be non-negative")
        base = 4.0 * (epsilon + self.mu * tau)
        if base <= 0.0:
            # A zero-uncertainty, zero-detection-delay edge still needs a
            # strictly positive weight for the triggers to be well defined.
            base = 4.0 * self.mu * 1e-9 + 1e-9
        return self.kappa_margin * base

    def delta_for(self, kappa: float, epsilon: float, tau: float) -> float:
        """Slack ``delta_e`` in ``(0, kappa/2 - 2*epsilon - 2*mu*tau)``."""
        upper = kappa / 2.0 - 2.0 * epsilon - 2.0 * self.mu * tau
        if upper <= 0.0:
            raise ParameterError(
                "kappa violates equation (9): "
                f"kappa/2 - 2*epsilon - 2*mu*tau = {upper} <= 0"
            )
        return self.delta_fraction * upper

    # ------------------------------------------------------------------
    # Insertion durations
    # ------------------------------------------------------------------
    def insertion_duration(self, global_skew_bound: float) -> float:
        """Insertion duration ``I(G~)`` for a static estimate, equation (10)."""
        if global_skew_bound <= 0.0:
            raise ParameterError(
                f"the global skew bound must be positive, got {global_skew_bound}"
            )
        factor = (
            20.0 * (1.0 + self.mu) / (1.0 - self.rho)
            + 56.0 * self.mu
            + (8.0 + 56.0 * self.mu) / self.sigma
        )
        return factor * global_skew_bound / self.mu

    def insertion_duration_dynamic(
        self, global_skew_estimate: float, message_delay: float, tau: float
    ) -> float:
        """Insertion duration for dynamic estimates, equation (11)."""
        if global_skew_estimate <= 0.0:
            raise ParameterError(
                "the global skew estimate must be positive, got "
                f"{global_skew_estimate}"
            )
        if message_delay < 0.0 or tau < 0.0:
            raise ParameterError("message delay and tau must be non-negative")
        ell = (1.0 + self.rho) * (1.0 + self.mu) * (message_delay + 2.0 * tau) + (
            8.0 * self.b_constant * global_skew_estimate / self.mu
        )
        return float(2.0 ** math.ceil(math.log2(ell)))

    # ------------------------------------------------------------------
    # Levels and gradient sequences
    # ------------------------------------------------------------------
    def levels_for(self, global_skew_bound: float, kappa_min: float) -> int:
        """Number of levels that can ever be relevant.

        Levels ``s`` with ``C_s = 2 * G~ / sigma**(s-1) < kappa_min`` impose a
        vacuous requirement on any real path, so ``O(log_sigma G~)`` levels
        suffice (Section 4.3.2).
        """
        if self.max_level:
            return self.max_level
        if global_skew_bound <= 0.0 or kappa_min <= 0.0:
            raise ParameterError("global skew bound and kappa_min must be positive")
        ratio = 2.0 * global_skew_bound / kappa_min
        if ratio <= 1.0:
            return 1
        return max(1, int(math.ceil(math.log(ratio, self.sigma))) + 2)

    def gradient_sequence(self, global_skew_bound: float, levels: int) -> list:
        """The gradient sequence ``C_s = 2*G / sigma**max(s-2, 0)``.

        This is the sequence used by Theorem 5.22 / Lemma 5.14 to turn
        legality into explicit skew bounds.  ``C[0]`` is unused (levels are
        1-based) and set equal to ``C[1]`` for convenience.
        """
        if levels < 1:
            raise ParameterError(f"levels must be >= 1, got {levels}")
        values = [2.0 * global_skew_bound]
        for s in range(1, levels + 1):
            values.append(2.0 * global_skew_bound / (self.sigma ** max(s - 2, 0)))
        return values

    def gradient_skew_bound(self, path_weight: float, global_skew_bound: float) -> float:
        """Skew bound on a fully inserted path of weight ``kappa_p``.

        This is the bound of Corollary 5.26 / Corollary 7.10:
        ``(s(p) + 1) * kappa_p`` with
        ``s(p) = max(2 + ceil(log_sigma(4*G / kappa_p)), 1)`` where we use the
        static bound ``G`` in place of ``4*G(P(t))``.
        """
        if path_weight <= 0.0:
            return 0.0
        ratio = 4.0 * global_skew_bound / path_weight
        if ratio <= 0.0:
            level = 1
        else:
            # The corollary's formula applies on both sides of ratio = 1;
            # short-circuiting small ratios to level 1 (as an earlier
            # revision did) makes the bound drop discontinuously as the
            # path weight crosses 4*G, breaking monotonicity in the weight.
            level = max(2 + int(math.ceil(math.log(ratio, self.sigma))), 1)
        return (level + 1) * path_weight

    def local_skew_bound(self, kappa: float, global_skew_bound: float) -> float:
        """Gradient bound applied to a single edge of weight ``kappa``."""
        return self.gradient_skew_bound(kappa, global_skew_bound)


DEFAULT_PARAMETERS = Parameters()
