"""Core algorithm: AOPT and its building blocks."""

from .algorithm import AOPT, AOPTConfig, aopt_factory
from .clocks import ClockError, HardwareClock, LogicalClock
from .interfaces import AlgorithmFactory, ClockSyncAlgorithm, ControlDecision, NodeAPI
from .max_estimate import MaxEstimateTracker
from .neighbor_sets import FULLY_INSERTED, NeighborLevels
from .parameters import DEFAULT_PARAMETERS, ParameterError, Parameters
from .skew_estimates import (
    DynamicGlobalSkewEstimate,
    GlobalSkewEstimate,
    StaticGlobalSkewEstimate,
    suggest_global_skew_bound,
)

__all__ = [
    "AOPT",
    "AOPTConfig",
    "aopt_factory",
    "ClockError",
    "HardwareClock",
    "LogicalClock",
    "AlgorithmFactory",
    "ClockSyncAlgorithm",
    "ControlDecision",
    "NodeAPI",
    "MaxEstimateTracker",
    "FULLY_INSERTED",
    "NeighborLevels",
    "DEFAULT_PARAMETERS",
    "ParameterError",
    "Parameters",
    "DynamicGlobalSkewEstimate",
    "GlobalSkewEstimate",
    "StaticGlobalSkewEstimate",
    "suggest_global_skew_bound",
]
