"""Pure, allocation-light AOPT control-step kernels.

The object-oriented trigger evaluation of :mod:`repro.core.triggers` builds a
:class:`~repro.core.triggers.NeighborView` per neighbor and filters fresh
lists per level -- convenient for verification tooling, but far too much
allocation for a hot simulation loop.  This module provides the same decision
logic as plain functions over pre-filled flat arrays, so that array-based
backends (:mod:`repro.fastsim`) can evaluate the Listing 3 mode logic without
creating a single object per node per step.

Equivalence contract
--------------------

:func:`evaluate_mode_flat` returns exactly the mode that
:func:`repro.core.triggers.evaluate_triggers` would return for the same
inputs, bit for bit:

* the per-level thresholds produced by :func:`edge_threshold_table` are
  computed with the very float expressions of Definitions 4.5 and 4.6 as
  written in :mod:`repro.core.triggers`, so precomputing them does not change
  a single rounding;
* the level loops terminate early when the *existential* half of a trigger
  fails, which is sound because the thresholds grow strictly with the level
  while the level-``s`` view sets only shrink (``N^s_u`` is a subset of
  ``N^{s-1}_u``); the reference instead evaluates every level -- same result,
  more work.

The differential suite (``tests/test_fastsim_equivalence.py``) and the unit
tests in ``tests/test_fastsim_backend.py`` cross-check the two
implementations on randomized inputs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .parameters import Parameters

#: Mode codes returned by :func:`evaluate_mode_flat`.
MODE_SLOW = 0
MODE_FAST = 1
MODE_FREE = 2

MODE_NAMES = ("slow", "fast", "free")

#: A per-edge threshold table: four tuples (fast-ahead, fast-behind,
#: slow-behind, slow-ahead), each indexed by ``level - 1``.
ThresholdTable = Tuple[
    Tuple[float, ...], Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]
]


def edge_threshold_table(
    params: Parameters, epsilon: float, tau: float, max_level: int
) -> ThresholdTable:
    """Per-level trigger thresholds of one edge (Definitions 4.5 / 4.6).

    The expressions mirror :func:`repro.core.triggers.fast_trigger_at_level`
    and :func:`repro.core.triggers.slow_trigger_at_level` term for term, so
    the precomputed values are bit-identical to what the reference computes
    inline every step.
    """
    kappa = params.kappa_for(epsilon, tau)
    delta = params.delta_for(kappa, epsilon, tau)
    fast_ahead: List[float] = []
    fast_behind: List[float] = []
    slow_behind: List[float] = []
    slow_ahead: List[float] = []
    for level in range(1, max_level + 1):
        fast_ahead.append(level * kappa - epsilon)
        fast_behind.append(level * kappa + 2.0 * params.mu * tau + epsilon)
        slow_behind.append((level + 0.5) * kappa - delta - epsilon)
        slow_ahead.append(
            (level + 0.5) * kappa
            + delta
            + epsilon
            + params.mu * (1.0 + params.rho) * tau
        )
    return (
        tuple(fast_ahead),
        tuple(fast_behind),
        tuple(slow_behind),
        tuple(slow_ahead),
    )


def evaluate_mode_flat(
    logical: float,
    max_estimate: float,
    iota: float,
    count: int,
    aheads: Sequence[float],
    levels: Sequence[int],
    tables: Sequence[ThresholdTable],
    equality_tolerance: float = 1e-9,
) -> int:
    """Flat-array counterpart of :func:`repro.core.triggers.evaluate_triggers`.

    ``aheads[k]`` is ``estimate_k - logical`` (the neighbor's estimated lead),
    ``levels[k]`` its level already clamped to ``max_level`` (entries below
    level 1 must be filtered out by the caller), and ``tables[k]`` its
    :func:`edge_threshold_table`.  Only the first ``count`` entries of the
    scratch sequences are read, so callers can reuse preallocated buffers.

    Returns :data:`MODE_SLOW`, :data:`MODE_FAST` or :data:`MODE_FREE`.
    """
    if count:
        lmax = 0
        for k in range(count):
            lv = levels[k]
            if lv > lmax:
                lmax = lv
        # Slow mode trigger (Definition 4.6), smallest level first.
        for s in range(1, lmax + 1):
            idx = s - 1
            someone_behind = False
            nobody_far_ahead = True
            for k in range(count):
                if levels[k] < s:
                    continue
                ahead = aheads[k]
                table = tables[k]
                if -ahead >= table[2][idx]:
                    someone_behind = True
                if ahead > table[3][idx]:
                    nobody_far_ahead = False
            if not someone_behind:
                # The behind-threshold grows with s and the view set shrinks,
                # so no higher level can fire either.
                break
            if nobody_far_ahead:
                return MODE_SLOW
        # Fast mode trigger (Definition 4.5).
        for s in range(1, lmax + 1):
            idx = s - 1
            someone_ahead = False
            nobody_far_behind = True
            for k in range(count):
                if levels[k] < s:
                    continue
                ahead = aheads[k]
                table = tables[k]
                if ahead >= table[0][idx]:
                    someone_ahead = True
                if -ahead > table[1][idx]:
                    nobody_far_behind = False
            if not someone_ahead:
                break
            if nobody_far_behind:
                return MODE_FAST
    # Max estimate triggers (Definition 4.7).
    lag = max_estimate - logical
    if lag <= equality_tolerance:
        return MODE_SLOW
    if lag >= iota:
        return MODE_FAST
    return MODE_FREE
