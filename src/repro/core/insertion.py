"""Edge insertion: handshake timing and insertion-time computation.

This module contains the *pure* parts of Listings 1 and 2: the waiting times
of the leader/follower handshake, the logical insertion anchor ``L_ins``, the
insertion duration ``I`` (static, equation (10), or dynamic, equation (11))
and the insertion schedule ``T^e_0 < T^e_1 < ... `` computed by
``computeInsertionTimes``.  The message-driven part of the protocol lives in
:mod:`repro.core.algorithm`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..network.edge import EdgeParams, NodeId
from .parameters import ParameterError, Parameters


def leader_wait(params: Parameters, edge: EdgeParams) -> float:
    """The leader's waiting time ``Delta`` (Listing 1, line 1).

    ``Delta = (1+rho)(1+mu)(T + tau) / (1 - rho) + tau``.
    """
    return (
        (1.0 + params.rho) * (1.0 + params.mu) * (edge.delay + edge.tau)
        / (1.0 - params.rho)
        + edge.tau
    )


def follower_wait(params: Parameters, edge: EdgeParams) -> float:
    """The follower's waiting time after receiving ``insertedge`` (line 12).

    The follower must wait at least ``T + tau`` but at most ``Delta - tau``;
    we use the lower end of the window.
    """
    return edge.delay + edge.tau


def insertion_anchor(
    logical_now: float,
    global_skew_estimate: float,
    params: Parameters,
    edge: EdgeParams,
) -> float:
    """The logical anchor ``L_ins`` sent by the leader (Listing 1, line 8)."""
    if logical_now < 0.0:
        raise ParameterError("logical clock values are non-negative")
    if global_skew_estimate <= 0.0:
        raise ParameterError("the global skew estimate must be positive")
    return (
        logical_now
        + global_skew_estimate
        + (1.0 + params.rho) * (1.0 + params.mu) * edge.delay
    )


@dataclass
class InsertionSchedule:
    """The insertion times of one edge, as computed by Listing 2."""

    neighbor: NodeId
    global_skew_estimate: float
    duration: float
    anchor: float
    level_times: List[float] = field(default_factory=list)
    next_level: int = 1

    @property
    def final_time(self) -> float:
        """Logical time by which the edge is inserted on every level."""
        return self.anchor + self.duration

    def time_for_level(self, level: int) -> float:
        if not 1 <= level <= len(self.level_times):
            raise ParameterError(
                f"level {level} outside 1..{len(self.level_times)}"
            )
        return self.level_times[level - 1]

    def due_levels(self, logical_now: float) -> List[int]:
        """Levels whose insertion time has been reached (and not yet applied)."""
        due = []
        while (
            self.next_level <= len(self.level_times)
            and logical_now >= self.level_times[self.next_level - 1] - 1e-12
        ):
            due.append(self.next_level)
            self.next_level += 1
        return due

    def is_complete(self) -> bool:
        return self.next_level > len(self.level_times)


def compute_insertion_times(
    anchor_logical: float,
    duration: float,
    max_level: int,
    *,
    neighbor: NodeId,
    global_skew_estimate: float,
) -> InsertionSchedule:
    """``computeInsertionTimes`` of Listing 2.

    ``T_0`` is the smallest integer multiple of the insertion duration ``I``
    that is at least the anchor ``L``; level ``s`` is inserted at
    ``T_s = T_0 + (1 - 2**-(s-1)) * I``.
    """
    if anchor_logical < 0.0:
        raise ParameterError("the anchor is a logical time, hence non-negative")
    if duration <= 0.0:
        raise ParameterError(f"the insertion duration must be positive, got {duration}")
    if max_level < 1:
        raise ParameterError(f"max_level must be >= 1, got {max_level}")
    t0 = math.ceil(anchor_logical / duration - 1e-12) * duration
    level_times = [
        t0 + (1.0 - 2.0 ** (-(s - 1))) * duration for s in range(1, max_level + 1)
    ]
    return InsertionSchedule(
        neighbor=neighbor,
        global_skew_estimate=global_skew_estimate,
        duration=duration,
        anchor=t0,
        level_times=level_times,
    )


def static_insertion_duration(params: Parameters, global_skew_estimate: float) -> float:
    """Insertion duration for a static global skew estimate (equation (10))."""
    return params.insertion_duration(global_skew_estimate)


def dynamic_insertion_duration(
    params: Parameters, global_skew_estimate: float, edge: EdgeParams
) -> float:
    """Insertion duration for dynamic estimates (equation (11))."""
    return params.insertion_duration_dynamic(
        global_skew_estimate, edge.delay, edge.tau
    )


DurationFunction = Callable[[Parameters, float, EdgeParams], float]


def scaled_insertion_duration(factor: float) -> DurationFunction:
    """A duration function ``factor * (equation (10))``.

    The paper's constant in equation (10) is roughly ``20 / mu``, which makes
    full-scale simulations of the insertion process expensive.  Benchmarks may
    use a smaller constant factor -- the stabilization time stays
    ``Theta(G~ / mu)`` and therefore ``Theta(D)``, only the constant changes;
    EXPERIMENTS.md documents where this is done.
    """
    if factor <= 0.0:
        raise ParameterError(f"the scaling factor must be positive, got {factor}")

    def duration(params: Parameters, global_skew_estimate: float, _edge: EdgeParams) -> float:
        return factor * params.insertion_duration(global_skew_estimate)

    return duration


def paper_static_duration() -> DurationFunction:
    """The unscaled duration function of equation (10)."""

    def duration(params: Parameters, global_skew_estimate: float, _edge: EdgeParams) -> float:
        return params.insertion_duration(global_skew_estimate)

    return duration


def paper_dynamic_duration() -> DurationFunction:
    """The duration function of equation (11) for dynamic estimates."""

    def duration(params: Parameters, global_skew_estimate: float, edge: EdgeParams) -> float:
        return params.insertion_duration_dynamic(
            global_skew_estimate, edge.delay, edge.tau
        )

    return duration


def insertion_time_separation(
    duration_a: float, level_a: int, duration_b: float, level_b: int
) -> float:
    """Lower bound of Lemma 7.1 on ``|T^e_s - T^e'_s'|`` for distinct levels.

    Returns ``min(I_e, I_e') / (2**7 * 4**(min(s, s') - 2))``.
    """
    if duration_a <= 0.0 or duration_b <= 0.0:
        raise ParameterError("insertion durations must be positive")
    if level_a < 1 or level_b < 1:
        raise ParameterError("levels are positive integers")
    return min(duration_a, duration_b) / (
        (2.0 ** 7) * (4.0 ** (min(level_a, level_b) - 2))
    )
