"""The AOPT dynamic gradient clock synchronization algorithm (Section 4).

The algorithm is assembled from the building blocks of the other ``core``
modules:

* hardware/logical clocks are advanced by the simulation engine; the
  algorithm only decides the rate multiplier (1 or ``1 + mu``) each step,
  exactly as Listing 3 prescribes;
* the max estimate ``M_u`` is maintained by a
  :class:`~repro.core.max_estimate.MaxEstimateTracker` and flooded by
  piggy-backing it on every broadcast (Condition 4.3);
* the level sets ``N^s_u`` are kept in a
  :class:`~repro.core.neighbor_sets.NeighborLevels` structure; new edges run
  the leader/follower handshake of Listing 1 and are then promoted level by
  level at the logical times computed by Listing 2
  (:mod:`repro.core.insertion`);
* the mode logic evaluates the fast/slow/max-estimate triggers of
  Definitions 4.5--4.7 (:mod:`repro.core.triggers`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..estimate.messages import ClockBroadcast, InsertEdgeMessage
from ..network.edge import EdgeParams, NodeId
from . import insertion as insertion_mod
from .interfaces import ClockSyncAlgorithm, ControlDecision, NodeAPI
from .max_estimate import MaxEstimateTracker
from .neighbor_sets import FULLY_INSERTED, NeighborLevels
from .parameters import Parameters
from .skew_estimates import GlobalSkewEstimate, StaticGlobalSkewEstimate
from .triggers import NeighborView, TriggerDecision, evaluate_triggers


@dataclass
class AOPTConfig:
    """Configuration of one AOPT instance (shared by all nodes of a run)."""

    params: Parameters
    global_skew: GlobalSkewEstimate
    max_level: int
    broadcast_interval: float = 1.0
    insertion_duration: insertion_mod.DurationFunction = field(
        default_factory=insertion_mod.paper_static_duration
    )
    immediate_insertion: bool = False

    def __post_init__(self):
        self.params.validate()
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")
        if self.broadcast_interval <= 0.0:
            raise ValueError("broadcast_interval must be positive")

    @staticmethod
    def for_bound(
        params: Parameters,
        global_skew_bound: float,
        *,
        kappa_min: float,
        broadcast_interval: float = 1.0,
        insertion_duration: Optional[insertion_mod.DurationFunction] = None,
        immediate_insertion: bool = False,
    ) -> "AOPTConfig":
        """Build a configuration from a static global skew bound."""
        levels = params.levels_for(global_skew_bound, kappa_min)
        return AOPTConfig(
            params=params,
            global_skew=StaticGlobalSkewEstimate(global_skew_bound),
            max_level=levels,
            broadcast_interval=broadcast_interval,
            insertion_duration=(
                insertion_duration
                if insertion_duration is not None
                else insertion_mod.paper_static_duration()
            ),
            immediate_insertion=immediate_insertion,
        )


class AOPT(ClockSyncAlgorithm):
    """One node's instance of the AOPT algorithm."""

    name = "AOPT"

    def __init__(self, config: AOPTConfig):
        super().__init__()
        self.config = config
        self.params = config.params
        self.levels = NeighborLevels(config.max_level)
        self.max_tracker = MaxEstimateTracker(self.params.rho)
        self._multiplier = 1.0
        self._mode = "slow"
        self._discovered_since: Dict[NodeId, float] = {}
        self._schedules: Dict[NodeId, insertion_mod.InsertionSchedule] = {}
        self._next_broadcast_hardware = 0.0
        self._edge_cache: Dict[NodeId, Dict[str, float]] = {}
        self._last_trigger: Optional[TriggerDecision] = None

    # ------------------------------------------------------------------
    # Lifecycle and event callbacks
    # ------------------------------------------------------------------
    def on_start(self, t: float, initial_neighbors: Iterable[NodeId]) -> None:
        for neighbor in initial_neighbors:
            self.levels.add_fully_inserted(neighbor)
            self._discovered_since[neighbor] = t

    def on_edge_discovered(self, t: float, neighbor: NodeId) -> None:
        self.levels.discover(neighbor)
        self._discovered_since[neighbor] = t
        self._edge_cache.pop(neighbor, None)
        if self.config.immediate_insertion:
            # The simpler strategy discussed in Section 5.5: skip the staged
            # insertion entirely and treat the edge as fully inserted.
            self.levels.promote(neighbor, FULLY_INSERTED)
            return
        if self._is_leader(neighbor):
            edge = self.api.edge_params(neighbor)
            wait = insertion_mod.leader_wait(self.params, edge)
            self.api.schedule(
                wait, lambda fire_time, v=neighbor: self._leader_check(fire_time, v)
            )

    def on_edge_lost(self, t: float, neighbor: NodeId) -> None:
        self.levels.remove(neighbor)
        self._schedules.pop(neighbor, None)
        self._discovered_since.pop(neighbor, None)
        self._edge_cache.pop(neighbor, None)

    def on_message(self, t: float, sender: NodeId, payload: object) -> None:
        if isinstance(payload, ClockBroadcast):
            self.max_tracker.observe_remote(payload.max_estimate)
        elif isinstance(payload, InsertEdgeMessage):
            self.max_tracker.observe_remote(payload.max_estimate)
            edge = self.api.edge_params(sender)
            wait = insertion_mod.follower_wait(self.params, edge)
            self.api.schedule(
                wait,
                lambda fire_time, msg=payload, v=sender: self._follower_check(
                    fire_time, v, msg
                ),
            )

    # ------------------------------------------------------------------
    # Handshake (Listing 1)
    # ------------------------------------------------------------------
    def _is_leader(self, neighbor: NodeId) -> bool:
        return self.api.node_id < neighbor

    def _edge_present_since(self, neighbor: NodeId, t: float, window: float) -> bool:
        """The edge to ``neighbor`` has been continuously present for ``window``."""
        since = self._discovered_since.get(neighbor)
        if since is None or neighbor not in self.api.neighbors():
            return False
        return t - since >= window - 1e-9

    def _leader_check(self, t: float, neighbor: NodeId) -> None:
        edge = self.api.edge_params(neighbor)
        wait = insertion_mod.leader_wait(self.params, edge)
        if not self._edge_present_since(neighbor, t, wait):
            return
        skew_estimate = self.config.global_skew.value(t)
        anchor = insertion_mod.insertion_anchor(
            self.api.logical(), skew_estimate, self.params, edge
        )
        message = InsertEdgeMessage(
            edge=(self.api.node_id, neighbor),
            insertion_anchor=anchor,
            global_skew_estimate=skew_estimate,
            max_estimate=self.max_tracker.value,
        )
        self.api.send(neighbor, message)
        self._install_schedule(neighbor, anchor, skew_estimate, edge)

    def _follower_check(self, t: float, neighbor: NodeId, message: InsertEdgeMessage) -> None:
        edge = self.api.edge_params(neighbor)
        wait = insertion_mod.follower_wait(self.params, edge)
        if not self._edge_present_since(neighbor, t, wait):
            return
        self._install_schedule(
            neighbor, message.insertion_anchor, message.global_skew_estimate, edge
        )

    def _install_schedule(
        self,
        neighbor: NodeId,
        anchor: float,
        skew_estimate: float,
        edge: EdgeParams,
    ) -> None:
        duration = self.config.insertion_duration(self.params, skew_estimate, edge)
        schedule = insertion_mod.compute_insertion_times(
            anchor,
            duration,
            self.config.max_level,
            neighbor=neighbor,
            global_skew_estimate=skew_estimate,
        )
        self._schedules[neighbor] = schedule

    # ------------------------------------------------------------------
    # Control (Listing 3)
    # ------------------------------------------------------------------
    def control(self, t: float) -> ControlDecision:
        logical = self.api.logical()
        hardware = self.api.hardware()
        self.max_tracker.advance(hardware, logical)
        self._apply_due_insertions(logical)
        self._maybe_broadcast(hardware, logical)
        decision = evaluate_triggers(
            logical,
            self.max_tracker.value,
            self._neighbor_views(t),
            self.params,
            self.config.max_level,
        )
        self._last_trigger = decision
        if decision.mode == "slow":
            self._multiplier = 1.0
            self._mode = "slow"
        elif decision.mode == "fast":
            self._multiplier = 1.0 + self.params.mu
            self._mode = "fast"
        # "free": keep the current mode (the algorithm may choose arbitrarily).
        return ControlDecision(multiplier=self._multiplier)

    def _apply_due_insertions(self, logical: float) -> None:
        completed: List[NodeId] = []
        for neighbor, schedule in self._schedules.items():
            if neighbor not in self.levels:
                completed.append(neighbor)
                continue
            for level in schedule.due_levels(logical):
                self.levels.promote(neighbor, level)
            if schedule.is_complete():
                completed.append(neighbor)
        for neighbor in completed:
            self._schedules.pop(neighbor, None)

    def _maybe_broadcast(self, hardware: float, logical: float) -> None:
        if hardware + 1e-12 < self._next_broadcast_hardware:
            return
        self._next_broadcast_hardware = hardware + self.config.broadcast_interval
        payload = ClockBroadcast(
            sender=self.api.node_id,
            logical=logical,
            max_estimate=self.max_tracker.value,
            hardware=hardware,
        )
        for neighbor in self.levels.discovered():
            self.api.send(neighbor, payload)

    def _edge_constants(self, neighbor: NodeId) -> Dict[str, float]:
        cached = self._edge_cache.get(neighbor)
        if cached is not None:
            return cached
        edge = self.api.edge_params(neighbor)
        epsilon = self.api.estimate_error(neighbor)
        kappa = self.params.kappa_for(epsilon, edge.tau)
        delta = self.params.delta_for(kappa, epsilon, edge.tau)
        constants = {
            "epsilon": epsilon,
            "tau": edge.tau,
            "kappa": kappa,
            "delta": delta,
        }
        self._edge_cache[neighbor] = constants
        return constants

    def _neighbor_views(self, t: float) -> List[NeighborView]:
        views: List[NeighborView] = []
        current_neighbors = self.api.neighbors()
        for neighbor in self.levels.discovered():
            level = self.levels.level_of(neighbor)
            if level is None or level < 1:
                continue
            if neighbor not in current_neighbors:
                continue
            estimate = self.api.estimate(neighbor)
            if estimate is None:
                continue
            constants = self._edge_constants(neighbor)
            views.append(
                NeighborView(
                    neighbor=neighbor,
                    estimate=estimate,
                    kappa=constants["kappa"],
                    epsilon=constants["epsilon"],
                    tau=constants["tau"],
                    delta=constants["delta"],
                    level=min(level, self.config.max_level),
                )
            )
        return views

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mode(self) -> str:
        return self._mode

    def max_estimate(self) -> float:
        return self.max_tracker.value

    def last_trigger(self) -> Optional[TriggerDecision]:
        return self._last_trigger

    def insertion_schedule(self, neighbor: NodeId) -> Optional[insertion_mod.InsertionSchedule]:
        return self._schedules.get(neighbor)

    def neighbor_level(self, neighbor: NodeId) -> Optional[int]:
        return self.levels.level_of(neighbor)


def aopt_factory(config: AOPTConfig):
    """Return an algorithm factory producing one AOPT instance per node."""

    def factory(_node_id: NodeId) -> AOPT:
        return AOPT(config)

    # Every node shares the same ``config`` object: the columnar backends
    # use this marker to validate the factory by probing one node instead
    # of instantiating an algorithm per node just to compare configs.
    factory.uniform_config = True
    return factory
