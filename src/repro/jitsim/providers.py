"""Kernel providers for the jit backend.

The fused segment kernel (:mod:`repro.jitsim.kernel`) has three executable
forms, resolved in this order:

``numba``
    ``numba.njit``-compiled Python kernel (the preferred form from
    ISSUE/ROADMAP; used automatically whenever numba is importable, e.g. on
    the numba-equipped CI leg).
``cc``
    The C port (``_fused_loop.c``) compiled on demand into a cached shared
    library with the system C compiler and called through :mod:`ctypes`.
    Compile flags are ``-O2 -ffp-contract=off`` and deliberately *not*
    ``-march=native`` / ``-ffast-math``: plain IEEE-754 double ops in source
    order, so the library is bit-identical to the Python kernel.
``python``
    The interpreted kernel itself.  Slower than vecsim's whole-array NumPy
    for large ``n`` (it exists for differential testing where no compiler
    toolchain is available), so it is **opt-in only** via
    ``REPRO_JIT_PROVIDER=python`` -- the jit backend reports unavailable
    rather than silently running an interpreted "compiled tier".

``REPRO_JIT_PROVIDER`` forces a specific provider (``numba`` / ``cc`` /
``python``) and raises :class:`ProviderUnavailableError` if that provider
cannot be used.  ``REPRO_JIT_CACHE_DIR`` overrides where compiled shared
libraries are cached (default ``~/.cache/repro-jitsim``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

__all__ = [
    "KernelProvider",
    "ProviderUnavailableError",
    "available_provider_names",
    "get_provider",
    "provider_available",
    "reset_provider_cache",
]

PROVIDER_ENV = "REPRO_JIT_PROVIDER"
CACHE_DIR_ENV = "REPRO_JIT_CACHE_DIR"

#: Bump when the kernel ABI (argument list) changes so stale cached shared
#: libraries are never loaded.
_KERNEL_ABI = 1

#: ctypes argument spec for ``fused_segment`` in canonical order.  ``real``
#: arrays are double in exact mode and float in the opt-in float32 mode.
_ARG_KINDS = (
    "i64",  # n_nodes
    "i64",  # n_engines
    "i64",  # steps
    "f64",  # dt
    "f64*",  # t_steps
    "i64*",  # engine_start
    "i64*",  # engine_of
    "real*",  # hardware
    "real*",  # logical
    "real*",  # last_hardware
    "real*",  # max_estimate
    "real*",  # next_broadcast
    "real*",  # multiplier
    "i64*",  # mode
    "real*",  # iota
    "real*",  # fast_mult
    "real*",  # max_factor
    "real*",  # rates
    "real*",  # bcast_interval
    "i64*",  # strategy
    "i64*",  # indptr
    "i64*",  # nbr
    "real*",  # eps
    "i64*",  # level
    "i64*",  # table_id
    "real*",  # thresholds
    "i64",  # n_levels
    "i64*",  # sb_indptr
    "i64*",  # sb_recv
    "f64*",  # sb_bound
    "f64*",  # sb_static
    "i64*",  # dp_kind
    "f64*",  # dp_low
    "f64*",  # dp_span
    "i64*",  # mt_state
    "i64*",  # mt_pos
    "i64",  # n_pend
    "i64*",  # pend_recv
    "real*",  # pend_val
    "f64*",  # pend_time
    "i64",  # cap_total
    "i64*",  # bh_head
    "i64*",  # bh_next
    "i64*",  # b_recv
    "real*",  # b_val
    "f64*",  # b_time
    "i64*",  # sent
    "i64*",  # delivered
    "i64",  # n_snap
    "i64*",  # snap_step
    "i64*",  # snap_engine
    "i64*",  # snap_offset
    "real*",  # snap_logical
    "real*",  # snap_hardware
    "real*",  # snap_multiplier
    "real*",  # snap_max_estimate
    "i64*",  # snap_mode
    "i64*",  # left_recv
    "real*",  # left_val
    "f64*",  # left_time
    "i64*",  # out_counts
    "real*",  # ahead_scratch
    "i64*",  # level_scratch
    "i64*",  # tid_scratch
)


class ProviderUnavailableError(RuntimeError):
    """No kernel provider (numba / C toolchain) can run the jit backend."""


class KernelProvider:
    """One executable form of the fused segment kernel.

    ``name`` is ``numba`` / ``cc`` / ``python``; ``real_dtype(float32)``
    names the numpy dtype state columns must use, and ``fused_segment`` runs
    one segment (canonical argument order, returns the int status).
    """

    def __init__(self, name: str):
        self.name = name

    def real_dtype(self, float32: bool):
        import numpy as np

        return np.float32 if float32 else np.float64

    def fused_segment(self, *args):  # pragma: no cover - interface
        raise NotImplementedError


class _PythonProvider(KernelProvider):
    """Interpreted (or numba-compiled, when numba is importable) kernel."""

    def __init__(self, name: str = "python"):
        super().__init__(name)
        from . import kernel

        self._kernel = kernel

    def fused_segment(self, *args):
        return int(self._kernel.fused_segment(*args))


class _CCProvider(KernelProvider):
    """The compiled C kernel, loaded per real-dtype via ctypes."""

    def __init__(self, compiler: str):
        super().__init__("cc")
        self._compiler = compiler
        self._libs = {}

    def _function(self, float32: bool):
        fn = self._libs.get(float32)
        if fn is None:
            lib = ctypes.CDLL(str(_compiled_library(self._compiler, float32)))
            fn = lib.fused_segment
            fn.restype = ctypes.c_int64
            self._libs[float32] = fn
        return fn

    def fused_segment(self, *args):
        import numpy as np

        float32 = bool(args[7].dtype == np.float32)  # hardware column
        fn = self._function(float32)
        cargs = []
        for kind, value in zip(_ARG_KINDS, args):
            if kind == "i64":
                cargs.append(ctypes.c_int64(int(value)))
            elif kind == "f64":
                cargs.append(ctypes.c_double(float(value)))
            else:
                if not value.flags["C_CONTIGUOUS"]:  # pragma: no cover
                    raise ValueError("kernel arrays must be C-contiguous")
                cargs.append(ctypes.c_void_p(value.ctypes.data))
        return int(fn(*cargs))


def _source_path() -> Path:
    return Path(__file__).with_name("_fused_loop.c")


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-jitsim"


def _find_compiler() -> Optional[str]:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _compiled_library(compiler: str, float32: bool) -> Path:
    """Compile (or reuse the cached) shared library for one real dtype.

    The cache key hashes the kernel source, the ABI version, the compiler
    name and the dtype, so editing the kernel or switching toolchains never
    loads a stale library.  Compilation is atomic (build to a temp file,
    ``os.replace`` into place) so concurrent sweep workers race benignly.
    """
    source = _source_path()
    payload = source.read_bytes()
    # -O3 without any of the value-changing flags: no -ffast-math, no
    # -march=native, contraction off -- plain IEEE-754 ops in source order,
    # so the library stays bit-identical to the Python/numba kernel.
    flags = ["-O3", "-fPIC", "-shared", "-ffp-contract=off"]
    if float32:
        flags.append("-DJIT_REAL=float")
    tag = hashlib.sha256(
        b"|".join(
            [
                payload,
                str(_KERNEL_ABI).encode(),
                compiler.encode(),
                " ".join(flags).encode(),
            ]
        )
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"fused_loop_{'f32' if float32 else 'f64'}_{tag}.so"
    if lib_path.exists():
        return lib_path
    cache.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    cmd = [compiler] + flags + ["-o", tmp, str(source)]
    try:
        subprocess.run(
            cmd,
            check=True,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        os.replace(tmp, lib_path)
    except (OSError, subprocess.CalledProcessError) as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise ProviderUnavailableError(
            f"compiling the jit kernel with {compiler!r} failed: {exc}"
        ) from exc
    return lib_path


def _numpy_available() -> bool:
    import importlib.util

    return importlib.util.find_spec("numpy") is not None


def _numba_available() -> bool:
    from . import kernel

    return kernel.NUMBA_AVAILABLE


def _cc_usable() -> bool:
    """Whether the C provider can actually produce a library (cached)."""
    compiler = _find_compiler()
    if compiler is None:
        return False
    try:
        _compiled_library(compiler, False)
    except ProviderUnavailableError:
        return False
    return True


_RESOLVED: Optional[tuple] = None


def reset_provider_cache() -> None:
    """Forget the resolved provider (tests flip env vars / monkeypatches)."""
    global _RESOLVED
    _RESOLVED = None


def _resolve() -> Optional[KernelProvider]:
    if not _numpy_available():
        return None
    forced = os.environ.get(PROVIDER_ENV)
    if forced:
        if forced == "numba":
            if not _numba_available():
                raise ProviderUnavailableError(
                    "REPRO_JIT_PROVIDER=numba but numba is not importable"
                )
            return _PythonProvider("numba")
        if forced == "cc":
            compiler = _find_compiler()
            if compiler is None or not _cc_usable():
                raise ProviderUnavailableError(
                    "REPRO_JIT_PROVIDER=cc but no working C compiler was found"
                )
            return _CCProvider(compiler)
        if forced == "python":
            return _PythonProvider("python")
        raise ProviderUnavailableError(
            f"unknown REPRO_JIT_PROVIDER {forced!r} (use numba, cc or python)"
        )
    if _numba_available():
        return _PythonProvider("numba")
    if _cc_usable():
        return _CCProvider(_find_compiler())
    return None


def get_provider() -> Optional[KernelProvider]:
    """The resolved kernel provider for this process, or ``None``.

    Resolution (numba import probe, compile self-check) runs once; tests
    that monkeypatch availability call :func:`reset_provider_cache`.
    Raises :class:`ProviderUnavailableError` when ``REPRO_JIT_PROVIDER``
    names a provider that cannot run.
    """
    global _RESOLVED
    if _RESOLVED is None:
        _RESOLVED = (_resolve(),)
    return _RESOLVED[0]


def provider_available() -> bool:
    try:
        return get_provider() is not None
    except ProviderUnavailableError:
        return False


def available_provider_names() -> list:
    """All providers that could run here (diagnostics, ``repro-experiments list``)."""
    names = []
    if _numpy_available():
        if _numba_available():
            names.append("numba")
        if _cc_usable():
            names.append("cc")
        names.append("python")
    return names
