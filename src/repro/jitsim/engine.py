"""The jit engine: vecsim semantics, one compiled time loop per segment.

:class:`JitEngine` / :class:`JitContext` subclass the vec backend and keep
its entire event / insertion / transport machinery.  What changes is the
driver: instead of one Python round-trip per step, :meth:`JitContext
.run_until` *prescans* the upcoming steps, proves a maximal prefix is
"regular" -- no graph events, no scheduler callbacks, no in-flight
insert-edge messages, no active insertion schedules, drift rates constant
over the window, delays static or uniform-random -- and executes that whole
prefix in one call to the fused kernel (numba, compiled C, or interpreted
Python; see :mod:`repro.jitsim.providers`).  Steps that are not regular run
through the inherited vec ``_step``, so every scenario the vec backend
supports runs here with the exact same results; fully regular runs (the
whole AOPT+oracle benchmark family) never leave the kernel.

Bit-identity is preserved because inside a regular segment the per-step
phases reduce exactly to the scalar loops the kernel implements (same float
ops in the same order, same Mersenne-Twister draw order via in-kernel
MT19937 over transplanted state, same delivery-step predicate), and the
trace samples / streaming-observer feeds are replayed after the segment in
the exact (step, engine) order the per-step loop would have produced --
sound because observers cannot request stops in fused runs (engines with
armed watchdogs fall back to per-step execution).

``float32=True`` opts one engine/context into narrowed state columns inside
the kernel (times, delays and rng draws stay double).  This changes
rounding by design -- it exists to measure the bandwidth headroom -- so the
jit *backend* never enables it; the differential suite stays exact.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.interfaces import AlgorithmFactory
from ..network.dynamic_graph import DynamicGraph
from ..sim.engine import EngineError
from ..sim.runner import SimulationConfig
from ..sim.trace import Trace
from ..vecsim.engine import (
    LazyTraceSample,
    VecContext,
    VecEngine,
    _GenericDelayPlan,
    _GenericRatePlan,
    _RandomWalkRatePlan,
    _TwoPhaseRatePlan,
    _UniformDelayPlan,
)
from . import providers

__all__ = ["JitEngine", "JitContext", "build_batch"]

#: Segments shorter than this run through the inherited per-step path --
#: below it the segment-prep overhead outweighs the fused loop.
_MIN_FUSED_STEPS = 4

_INF = float("inf")


class JitEngine(VecEngine):
    """Drop-in vec engine whose context fuses regular steps into one kernel call.

    Same constructor contract and ``UnsupportedScenarioError`` behaviour as
    :class:`~repro.vecsim.engine.VecEngine`; ``float32`` opts into the
    approximate narrowed-dtype kernel (never used by the registered
    backend).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        algorithm_factory: AlgorithmFactory,
        config: SimulationConfig,
        *,
        _defer_context: bool = False,
        float32: bool = False,
        provider: Optional[providers.KernelProvider] = None,
    ):
        super().__init__(graph, algorithm_factory, config, _defer_context=True)
        if not _defer_context:
            JitContext([self], float32=float32, provider=provider)


class JitContext(VecContext):
    """Lockstep batch driver executing regular step prefixes in one kernel call."""

    def __init__(
        self,
        engines: Sequence[JitEngine],
        *,
        float32: bool = False,
        provider: Optional[providers.KernelProvider] = None,
    ):
        super().__init__(engines)
        self._provider = provider if provider is not None else providers.get_provider()
        self._float32 = bool(float32)
        self._prep_key = None
        self._prep = None
        #: Diagnostics: how many steps ran fused vs. through the vec path.
        self.fused_steps = 0
        self.stepped_steps = 0

    # -- driver ---------------------------------------------------------
    def run_until(self, end_time: float) -> List[Trace]:
        if end_time < self.time - 1e-12:
            raise EngineError("cannot run backwards in time")
        if self._fusion_blocker() is not None:
            return super().run_until(end_time)
        engines = self.engines
        while self.time < end_time - 1e-9:
            plan = self._plan_segment(end_time)
            if plan is None:
                self._step()
                self.stepped_steps += 1
                continue
            self._run_segment(*plan)
        for engine in engines:
            engine.time = self.time
            engine._record_sample(force=True)
        return [engine.trace for engine in engines]

    # -- fusibility -----------------------------------------------------
    def _fusion_blocker(self) -> Optional[str]:
        """A reason fusion is off for this whole run, or ``None``.

        Anything dynamic (events, insertions, in-flight messages) is handled
        per segment by the prescan instead; blocked runs still execute --
        through the inherited, bit-identical vec path.
        """
        if self._provider is None:
            return "no kernel provider"
        if self._strategy == 1:
            return "uniform estimate strategy draws in set order"
        if self.engines and self.engines[0]._bc_mode:
            # Broadcast estimate mode keeps per-step message delivery with
            # per-(receiver, sender) stored state; the fused segment kernels
            # assume message-free stretches.  The inherited vec per-step
            # path runs it bit-identically.
            return "broadcast estimate mode stores per-pair message state"
        rng_ids = set()
        for engine in self.engines:
            if engine.stopped_early:
                return "engine already stopped"
            if engine._heap_transport:
                return "heap transport (drop_messages_on_edge_loss)"
            if type(engine._rate_plan) is _GenericRatePlan:
                return "drift has no closed-form rate plan"
            plan = engine._delay_plan
            if isinstance(plan, _UniformDelayPlan):
                rng = plan._model._rng
                if id(rng) in rng_ids:
                    return "delay rng shared between engines"
                rng_ids.add(id(rng))
                state = rng.getstate()
                if state[0] != 3 or len(state[1]) != 625:
                    return "incompatible rng state layout"
            elif not plan.static:
                return "delay model needs per-message Python calls"
            metrics = engine._metrics
            if metrics is not None and any(
                getattr(observer, "_stop_on_fire", False)
                for observer in metrics.observers
            ):
                return "armed watchdog may stop the run mid-segment"
        return None

    def _plan_segment(self, end_time: float):
        """Longest regular step prefix from ``self.time``; ``None`` if too short.

        Returns ``(steps, snaps, next_samples)`` where ``snaps`` lists the
        ``(step, engine_index)`` sample-record events in execution order and
        ``next_samples`` the per-engine ``_next_sample_time`` after the
        segment.  The simulated loop replicates the exact conditions of the
        per-step path: sample due iff ``not (t + 1e-12 < next_sample)``,
        events due iff ``time <= t + 1e-12``, drift phase constancy via the
        integer epoch key.
        """
        engines = self.engines
        for engine in engines:
            if engine._inflight or engine._active_schedules:
                return None
        barrier = _INF
        for engine in engines:
            next_event = engine._next_event_time
            if next_event is not None and next_event < barrier:
                barrier = next_event
            scheduled = engine.scheduler.peek_time()
            if scheduled is not None and scheduled < barrier:
                barrier = scheduled
        t0 = self.time
        phased: List[Tuple[float, int]] = []
        for engine in engines:
            plan = engine._rate_plan
            if type(plan) is _TwoPhaseRatePlan:
                if plan._period is not None:
                    phased.append((plan._period, int(t0 // plan._period)))
            elif type(plan) is _RandomWalkRatePlan:
                period = plan._drift.period
                phased.append((period, int(t0 // period)))
        next_samples = [engine._next_sample_time for engine in engines]
        intervals = [engine.trace.sample_interval for engine in engines]
        n_engines = len(engines)
        snaps: List[Tuple[int, int]] = []
        steps = 0
        t = t0
        dt = self.dt
        while t < end_time - 1e-9:
            if barrier <= t + 1e-12:
                break
            regular = True
            for period, key in phased:
                if int(t // period) != key:
                    regular = False
                    break
            if not regular:
                break
            for ei in range(n_engines):
                if not (t + 1e-12 < next_samples[ei]):
                    snaps.append((steps, ei))
                    next_samples[ei] = t + intervals[ei]
            steps += 1
            t = t + dt
        if steps < _MIN_FUSED_STEPS:
            return None
        return steps, snaps, next_samples

    # -- static prep (cached across segments) ---------------------------
    def _segment_prep(self):
        """CSR / fan-out / per-engine parameter arrays for the kernel.

        Rebuilt only when the combined CSR or any engine's broadcast fan-out
        snapshot is replaced (both are invalidated on structural change);
        the combined level column is shared by reference, so in-place level
        promotions flow through without a rebuild.
        """
        engines = self.engines
        for engine in engines:
            if engine._bc_flat is None:
                engine._build_bc_flat()
        key = (self._combined,) + tuple(engine._bc_flat for engine in engines)
        if self._prep is not None and all(
            a is b for a, b in zip(self._prep_key, key)
        ):
            return self._prep
        real = self._provider.real_dtype(self._float32)
        combined = self._combined
        n_nodes = self.node_count
        n_engines = len(engines)
        degrees = np.concatenate(
            [
                np.diff(np.asarray(engine._csr.indptr, dtype=np.int64))
                for engine in engines
            ]
        )
        indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        engine_sizes = [engine.n for engine in engines]
        engine_start = np.zeros(n_engines + 1, dtype=np.int64)
        np.cumsum(np.asarray(engine_sizes, dtype=np.int64), out=engine_start[1:])
        engine_of = np.repeat(np.arange(n_engines, dtype=np.int64), engine_sizes)
        # Broadcast fan-out in global-CSR form.  Per-engine owners are local
        # positions sorted ascending, so concatenating engines in offset
        # order keeps the flat arrays in global sender order.
        owner_parts, recv_parts, bound_parts, static_parts = [], [], [], []
        for engine in engines:
            owner, receivers, bounds, static, _pairs = engine._bc_flat
            owner_parts.append(owner + engine._offset)
            recv_parts.append(receivers)
            bound_parts.append(bounds)
            static_parts.append(
                static if static is not None else np.zeros(len(bounds))
            )
        sb_owner = np.concatenate(owner_parts) if owner_parts else np.empty(0, np.int64)
        counts = np.bincount(sb_owner.astype(np.int64), minlength=n_nodes)
        sb_indptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=sb_indptr[1:])
        dp_kind = np.zeros(n_engines, dtype=np.int64)
        dp_low = np.zeros(n_engines, dtype=np.float64)
        dp_span = np.zeros(n_engines, dtype=np.float64)
        for ei, engine in enumerate(engines):
            plan = engine._delay_plan
            if isinstance(plan, _UniformDelayPlan):
                dp_kind[ei] = 1
                dp_low[ei] = plan._model.low_fraction
                dp_span[ei] = plan._model.high_fraction - plan._model.low_fraction
        max_degree = int(degrees.max()) if len(degrees) else 0
        prep = {
            "real": real,
            "engine_start": engine_start,
            "engine_of": engine_of,
            "indptr": indptr,
            "nbr": combined.neighbor_index,
            "eps": combined.epsilon.astype(real, copy=False),
            "level": combined.level,
            "table_id": combined.table_id,
            "thresholds": np.ascontiguousarray(
                combined.thresholds, dtype=real
            ).reshape(-1),
            "n_levels": combined.max_level,
            "sb_indptr": sb_indptr,
            "sb_recv": np.concatenate(recv_parts)
            if recv_parts
            else np.empty(0, np.int64),
            "sb_bound": np.concatenate(bound_parts)
            if bound_parts
            else np.empty(0, np.float64),
            "sb_static": np.concatenate(static_parts)
            if static_parts
            else np.empty(0, np.float64),
            "sb_counts": np.asarray(
                [len(part) for part in owner_parts], dtype=np.int64
            ),
            "dp_kind": dp_kind,
            "dp_low": dp_low,
            "dp_span": dp_span,
            "strategy": np.full(n_engines, self._strategy, dtype=np.int64),
            "bcast_interval": np.asarray(
                [engine.aopt_config.broadcast_interval for engine in engines],
                dtype=real,
            ),
            "iota": self.iota.astype(real, copy=False),
            "fast_mult": self.fast_multiplier.astype(real, copy=False),
            "max_factor": self.max_factor.astype(real, copy=False),
            "ahead_scratch": np.empty(max_degree, dtype=real),
            "level_scratch": np.empty(max_degree, dtype=np.int64),
            "tid_scratch": np.empty(max_degree, dtype=np.int64),
        }
        self._prep_key = key
        self._prep = prep
        return prep

    # -- segment execution ----------------------------------------------
    def _run_segment(self, steps: int, snaps, next_samples) -> None:
        engines = self.engines
        n_engines = len(engines)
        t0 = self.time
        dt = self.dt
        # Structure refresh normally happens inside each step; no structural
        # change can occur mid-segment, so once up front is equivalent.
        self._refresh_structure()
        self._refresh_levels()
        prep = self._segment_prep()
        real = prep["real"]
        float32 = self._float32
        # Exact per-step time grid: the same repeated float addition the
        # per-step loop performs.
        t_steps = np.empty(steps + 1, dtype=np.float64)
        t = t0
        for j in range(steps + 1):
            t_steps[j] = t
            t = t + dt
        # Segment-constant drift rates (the prescan pinned the phase).
        rates = self._rates
        for engine in engines:
            engine._rate_plan.fill(
                rates[engine._offset : engine._offset + engine.n], t0
            )
        # Mersenne-Twister state transplant for uniform-delay engines.
        mt_state = np.zeros((max(n_engines, 1), 624), dtype=np.int64)
        mt_pos = np.full(max(n_engines, 1), 624, dtype=np.int64)
        rngs: List = [None] * n_engines
        gauss: List = [None] * n_engines
        for ei, engine in enumerate(engines):
            plan = engine._delay_plan
            if isinstance(plan, _UniformDelayPlan):
                plan.sync_python_rng()
                rng = plan._model._rng
                _version, keys, gauss_next = rng.getstate()
                mt_state[ei, :] = keys[:624]
                mt_pos[ei] = keys[624]
                rngs[ei] = rng
                gauss[ei] = gauss_next
        # Messages still in flight from before the segment.
        pend_parts = [
            (run[0][run[3] :], run[1][run[3] :], run[2][run[3] :])
            for run in self._bc_runs
            if run[3] < len(run[0])
        ]
        if pend_parts:
            pend_time = np.concatenate([part[0] for part in pend_parts])
            pend_recv = np.concatenate([part[1] for part in pend_parts])
            pend_val = np.concatenate([part[2] for part in pend_parts]).astype(
                real, copy=False
            )
        else:
            pend_time = np.empty(0, dtype=np.float64)
            pend_recv = np.empty(0, dtype=np.int64)
            pend_val = np.empty(0, dtype=real)
        n_pend = len(pend_time)
        # Message capacity: per engine, a sender can fire at most once per
        # step and otherwise needs its hardware clock to gain one broadcast
        # interval per send.
        cap_total = n_pend + 16
        sb_counts = prep["sb_counts"]
        for ei, engine in enumerate(engines):
            rate_slice = rates[engine._offset : engine._offset + engine.n]
            max_rate = float(rate_slice.max()) if engine.n else 0.0
            gain = steps * dt * max(max_rate, 0.0)
            interval = engine.aopt_config.broadcast_interval
            if interval > 0.0:
                sends = min(steps, int(gain / interval) + 2)
            else:
                sends = steps
            cap_total += int(sb_counts[ei]) * sends
        bh_head = np.empty(steps + 1, dtype=np.int64)
        bh_next = np.empty(cap_total, dtype=np.int64)
        b_recv = np.empty(cap_total, dtype=np.int64)
        b_val = np.empty(cap_total, dtype=real)
        b_time = np.empty(cap_total, dtype=np.float64)
        left_recv = np.empty(cap_total, dtype=np.int64)
        left_val = np.empty(cap_total, dtype=real)
        left_time = np.empty(cap_total, dtype=np.float64)
        out_counts = np.zeros(2, dtype=np.int64)
        sent = np.zeros(n_engines, dtype=np.int64)
        delivered = np.zeros(n_engines, dtype=np.int64)
        # Snapshot buffers: one engine-sized slice per (step, engine) sample.
        n_snap = len(snaps)
        snap_step = np.empty(n_snap, dtype=np.int64)
        snap_engine = np.empty(n_snap, dtype=np.int64)
        snap_offset = np.empty(n_snap, dtype=np.int64)
        offset = 0
        for si, (step_j, ei) in enumerate(snaps):
            snap_step[si] = step_j
            snap_engine[si] = ei
            snap_offset[si] = offset
            offset += engines[ei].n
        snap_logical = np.empty(offset, dtype=real)
        snap_hardware = np.empty(offset, dtype=real)
        snap_multiplier = np.empty(offset, dtype=real)
        snap_max_estimate = np.empty(offset, dtype=real)
        snap_mode = np.empty(offset, dtype=np.int64)
        if float32:
            hardware = self.hardware.astype(real)
            logical = self.logical.astype(real)
            last_hardware = self.last_hardware.astype(real)
            max_estimate = self.max_estimate.astype(real)
            next_broadcast = self.next_broadcast.astype(real)
            multiplier = self.multiplier.astype(real)
            rates_real = rates.astype(real)
        else:
            hardware = self.hardware
            logical = self.logical
            last_hardware = self.last_hardware
            max_estimate = self.max_estimate
            next_broadcast = self.next_broadcast
            multiplier = self.multiplier
            rates_real = rates
        status = self._provider.fused_segment(
            self.node_count,
            n_engines,
            steps,
            dt,
            t_steps,
            prep["engine_start"],
            prep["engine_of"],
            hardware,
            logical,
            last_hardware,
            max_estimate,
            next_broadcast,
            multiplier,
            self.mode,
            prep["iota"],
            prep["fast_mult"],
            prep["max_factor"],
            rates_real,
            prep["bcast_interval"],
            prep["strategy"],
            prep["indptr"],
            prep["nbr"],
            prep["eps"],
            prep["level"],
            prep["table_id"],
            prep["thresholds"],
            prep["n_levels"],
            prep["sb_indptr"],
            prep["sb_recv"],
            prep["sb_bound"],
            prep["sb_static"],
            prep["dp_kind"],
            prep["dp_low"],
            prep["dp_span"],
            mt_state,
            mt_pos,
            n_pend,
            pend_recv,
            pend_val,
            pend_time,
            cap_total,
            bh_head,
            bh_next,
            b_recv,
            b_val,
            b_time,
            sent,
            delivered,
            n_snap,
            snap_step,
            snap_engine,
            snap_offset,
            snap_logical,
            snap_hardware,
            snap_multiplier,
            snap_max_estimate,
            snap_mode,
            left_recv,
            left_val,
            left_time,
            out_counts,
            prep["ahead_scratch"],
            prep["level_scratch"],
            prep["tid_scratch"],
        )
        if status != 0:
            reason = (
                f"message buffer overflow (capacity {cap_total})"
                if status == 1
                else "scratch allocation failed"
            )
            raise RuntimeError(
                f"jit kernel failed on a {steps}-step segment: {reason}"
            )
        if float32:
            self.hardware[:] = hardware
            self.logical[:] = logical
            self.last_hardware[:] = last_hardware
            self.max_estimate[:] = max_estimate
            self.next_broadcast[:] = next_broadcast
            self.multiplier[:] = multiplier
        # Advance time exactly as the per-step loop would have.
        self.time = float(t_steps[steps])
        for engine in engines:
            engine.time = self.time
        # Hand the Mersenne-Twister streams back to the Python rngs.
        for ei in range(n_engines):
            rng = rngs[ei]
            if rng is not None:
                rng.setstate(
                    (
                        3,
                        tuple(int(word) for word in mt_state[ei])
                        + (int(mt_pos[ei]),),
                        gauss[ei],
                    )
                )
        # Counters.
        for ei, engine in enumerate(engines):
            engine.sent_count += int(sent[ei])
            engine.delivered_count += int(delivered[ei])
        # Leftover messages become one sorted pending run for the vec
        # transport (or the next segment's prescan).
        nleft = int(out_counts[0])
        if nleft:
            times = left_time[:nleft].copy()
            order = np.argsort(times)
            self._bc_runs = [
                [
                    times[order],
                    left_recv[:nleft][order].copy(),
                    left_val[:nleft][order].astype(np.float64),
                    0,
                ]
            ]
        else:
            self._bc_runs = []
        # Replay the recorded samples in the exact per-step order.
        for si, (step_j, ei) in enumerate(snaps):
            engine = engines[ei]
            sample_time = float(t_steps[step_j])
            start = int(snap_offset[si])
            end = start + engine.n
            cols = engine._cols
            if engine._record_trace:
                engine.trace.record(
                    LazyTraceSample(
                        sample_time,
                        cols.ids,
                        cols.index,
                        snap_logical[start:end],
                        snap_hardware[start:end],
                        snap_multiplier[start:end],
                        snap_mode[start:end],
                        snap_max_estimate[start:end],
                    )
                )
            if engine._metrics is not None:
                engine._metrics.observe_arrays(
                    sample_time,
                    cols.ids,
                    cols.index,
                    snap_logical[start:end],
                    snap_max_estimate[start:end],
                    snap_mode[start:end],
                )
        for ei, engine in enumerate(engines):
            engine._next_sample_time = next_samples[ei]
        self.fused_steps += steps


def build_batch(
    runs: Sequence[Tuple[DynamicGraph, AlgorithmFactory, SimulationConfig]]
) -> JitContext:
    """Build a lockstep batch of jit engines over independent runs.

    Same contract as :func:`repro.vecsim.engine.build_batch`: every run is
    ``(graph, algorithm_factory, config)``, all must share ``dt`` and the
    estimate strategy, and the whole batch advances through single fused
    kernel invocations whenever every run's next steps are regular.
    """
    engines = [
        JitEngine(graph, factory, config, _defer_context=True)
        for graph, factory, config in runs
    ]
    return JitContext(engines)
