/* C port of repro/jitsim/kernel.py -- the fused time-loop kernel.
 *
 * Line-for-line mirror of `fused_segment` (see kernel.py for the phase
 * documentation and the bit-identity contract).  Compiled on demand by
 * repro.jitsim.providers with
 *
 *     cc -O2 -fPIC -shared -ffp-contract=off
 *
 * -ffp-contract=off (and the absence of any -ffast-math / -march flag)
 * guarantees plain IEEE-754 double ops in source order, so the compiled
 * loop produces bit-identical floats to the Python/numba kernel and
 * therefore to the reference engine.
 *
 * JIT_REAL selects the state dtype: double (default, exact) or float (the
 * experimental opt-in float32 mode; times, delays and rng draws stay
 * double).  Providers compile one shared object per dtype.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#ifndef JIT_REAL
#define JIT_REAL double
#endif
typedef JIT_REAL real;

/* One tempered MT19937 output (CPython genrand_uint32).  State words travel
 * as int64 (all values < 2^32), position 624 means "twist first" -- the
 * random.Random.getstate() convention. */
static uint32_t mt_next32(int64_t *mt, int64_t *pos) {
    int64_t p = *pos;
    if (p >= 624) {
        for (int i = 0; i < 624; i++) {
            uint32_t y = ((uint32_t)mt[i] & 0x80000000u) |
                         ((uint32_t)mt[(i + 1) % 624] & 0x7FFFFFFFu);
            uint32_t v = (uint32_t)mt[(i + 397) % 624] ^ (y >> 1);
            if (y & 1u)
                v ^= 0x9908B0DFu;
            mt[i] = (int64_t)v;
        }
        p = 0;
    }
    uint32_t y = (uint32_t)mt[p];
    *pos = p + 1;
    y ^= y >> 11;
    y ^= (y << 7) & 0x9D2C5680u;
    y ^= (y << 15) & 0xEFC60000u;
    y ^= y >> 18;
    return y;
}

/* CPython's random.random(): a 53-bit double from two outputs. */
static double mt_res53(int64_t *mt, int64_t *pos) {
    uint32_t a = mt_next32(mt, pos) >> 5;
    uint32_t b = mt_next32(mt, pos) >> 6;
    return ((double)a * 67108864.0 + (double)b) * (1.0 / 9007199254740992.0);
}

/* First step j in [lo, steps) with dtime <= t_steps[j] + 1e-12, else steps. */
static int64_t delivery_step(const double *t_steps, int64_t lo, int64_t steps,
                             double dtime) {
    if (lo >= steps)
        return steps;
    int64_t g = lo + (int64_t)((dtime - t_steps[lo]) / (t_steps[1] - t_steps[0]));
    if (g < lo)
        g = lo;
    else if (g > steps)
        g = steps;
    while (g > lo && dtime <= t_steps[g - 1] + 1e-12)
        g--;
    while (g < steps && !(dtime <= t_steps[g] + 1e-12))
        g++;
    return g;
}

/* Mode evaluation for a row whose edges share one table and one level: the
 * existential/universal per-edge conditions collapse onto the row's ahead
 * extrema (the same homogeneous collapse vecsim.kernels uses).  Identical
 * comparisons on identical floats, without the edges x levels rescan. */
static int64_t evaluate_mode_uniform(real lg, real m, real iota_v, real amin,
                                     real amax, int64_t lvl, int64_t tid,
                                     const real *thr, int64_t n_levels) {
    int64_t base = tid * 4 * n_levels;
    for (int64_t idx = 0; idx < lvl; idx++) {
        if (-amin < thr[base + 2 * n_levels + idx])
            break;
        if (amax <= thr[base + 3 * n_levels + idx])
            return 0;
    }
    for (int64_t idx = 0; idx < lvl; idx++) {
        if (amax < thr[base + idx])
            break;
        if (-amin <= thr[base + n_levels + idx])
            return 1;
    }
    real lag = m - lg;
    if (lag <= 1e-9)
        return 0;
    if (lag >= iota_v)
        return 1;
    return 2;
}

/* repro.core.aopt_step.evaluate_mode_flat over a flat (T, 4, L) threshold
 * array; rows are (fast-ahead, fast-behind, slow-behind, slow-ahead). */
static int64_t evaluate_mode(real lg, real m, real iota_v, int64_t count,
                             const real *aheads, const int64_t *levels,
                             const int64_t *tids, const real *thr,
                             int64_t n_levels) {
    if (count > 0) {
        int64_t lmax = 0;
        for (int64_t k = 0; k < count; k++)
            if (levels[k] > lmax)
                lmax = levels[k];
        /* Slow mode trigger (Definition 4.6), smallest level first. */
        for (int64_t s = 1; s <= lmax; s++) {
            int64_t idx = s - 1;
            int someone_behind = 0;
            int nobody_far_ahead = 1;
            for (int64_t k = 0; k < count; k++) {
                if (levels[k] < s)
                    continue;
                real ahead = aheads[k];
                int64_t base = tids[k] * 4 * n_levels;
                if (-ahead >= thr[base + 2 * n_levels + idx])
                    someone_behind = 1;
                if (ahead > thr[base + 3 * n_levels + idx])
                    nobody_far_ahead = 0;
            }
            if (!someone_behind)
                break;
            if (nobody_far_ahead)
                return 0;
        }
        /* Fast mode trigger (Definition 4.5). */
        for (int64_t s = 1; s <= lmax; s++) {
            int64_t idx = s - 1;
            int someone_ahead = 0;
            int nobody_far_behind = 1;
            for (int64_t k = 0; k < count; k++) {
                if (levels[k] < s)
                    continue;
                real ahead = aheads[k];
                int64_t base = tids[k] * 4 * n_levels;
                if (ahead >= thr[base + idx])
                    someone_ahead = 1;
                if (-ahead > thr[base + n_levels + idx])
                    nobody_far_behind = 0;
            }
            if (!someone_ahead)
                break;
            if (nobody_far_behind)
                return 1;
        }
    }
    /* Max estimate triggers (Definition 4.7). */
    {
        real lag = m - lg;
        if (lag <= 1e-9)
            return 0;
        if (lag >= iota_v)
            return 1;
    }
    return 2;
}

int64_t fused_segment(
    int64_t n_nodes, int64_t n_engines, int64_t steps, double dt,
    const double *t_steps, const int64_t *engine_start,
    const int64_t *engine_of, real *hardware, real *logical,
    real *last_hardware, real *max_estimate, real *next_broadcast,
    real *multiplier, int64_t *mode, const real *iota, const real *fast_mult,
    const real *max_factor, const real *rates, const real *bcast_interval,
    const int64_t *strategy, const int64_t *indptr, const int64_t *nbr,
    const real *eps, const int64_t *level, const int64_t *table_id,
    const real *thresholds, int64_t n_levels, const int64_t *sb_indptr,
    const int64_t *sb_recv, const double *sb_bound, const double *sb_static,
    const int64_t *dp_kind, const double *dp_low, const double *dp_span,
    int64_t *mt_state, int64_t *mt_pos, int64_t n_pend,
    const int64_t *pend_recv, const real *pend_val, const double *pend_time,
    int64_t cap_total, int64_t *bh_head, int64_t *bh_next, int64_t *b_recv,
    real *b_val, double *b_time, int64_t *sent, int64_t *delivered,
    int64_t n_snap, const int64_t *snap_step, const int64_t *snap_engine,
    const int64_t *snap_offset, real *snap_logical, real *snap_hardware,
    real *snap_multiplier, real *snap_max_estimate, int64_t *snap_mode,
    int64_t *left_recv, real *left_val, double *left_time,
    int64_t *out_counts, real *ahead_scratch, int64_t *level_scratch,
    int64_t *tid_scratch) {
    /* Hoist the per-edge constants out of the step loop: levels and table
     * membership cannot change mid-segment, so filter each row down to its
     * discovered (level >= 1) edges once and resolve per-row homogeneity
     * (single table + single level) here instead of per node per step. */
    int64_t status = 0;
    int64_t n_edges = indptr[n_nodes];
    int64_t *f_indptr = (int64_t *)malloc((size_t)(n_nodes + 1) * sizeof(int64_t));
    int64_t *f_nbr = (int64_t *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(int64_t));
    real *f_eps = (real *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(real));
    int64_t *f_lvl = (int64_t *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(int64_t));
    int64_t *f_tid = (int64_t *)malloc((size_t)(n_edges > 0 ? n_edges : 1) * sizeof(int64_t));
    int64_t *row_uniform = (int64_t *)malloc((size_t)(n_nodes > 0 ? n_nodes : 1) * sizeof(int64_t));
    int64_t *row_tid = (int64_t *)malloc((size_t)(n_nodes > 0 ? n_nodes : 1) * sizeof(int64_t));
    int64_t *row_lvl = (int64_t *)malloc((size_t)(n_nodes > 0 ? n_nodes : 1) * sizeof(int64_t));
    if (!f_indptr || !f_nbr || !f_eps || !f_lvl || !f_tid || !row_uniform ||
        !row_tid || !row_lvl) {
        status = 2;
        goto done;
    }
    {
        int64_t fpos = 0;
        for (int64_t i = 0; i < n_nodes; i++) {
            f_indptr[i] = fpos;
            int64_t utid = 0;
            int64_t ulvl = 0;
            int64_t uni = 1;
            for (int64_t k = indptr[i]; k < indptr[i + 1]; k++) {
                int64_t lv = level[k];
                if (lv < 1)
                    continue;
                if (fpos == f_indptr[i]) {
                    utid = table_id[k];
                    ulvl = lv;
                } else if (table_id[k] != utid || lv != ulvl) {
                    uni = 0;
                }
                f_nbr[fpos] = nbr[k];
                f_eps[fpos] = eps[k];
                f_lvl[fpos] = lv;
                f_tid[fpos] = table_id[k];
                fpos++;
            }
            row_uniform[i] = uni;
            row_tid[i] = utid;
            row_lvl[i] = ulvl;
        }
        f_indptr[n_nodes] = fpos;
    }
    for (int64_t j = 0; j < steps + 1; j++)
        bh_head[j] = -1;
    int64_t used = 0;
    /* Bucket the messages already in flight at segment start. */
    for (int64_t p = 0; p < n_pend; p++) {
        double dtime = pend_time[p];
        int64_t jd = delivery_step(t_steps, 0, steps, dtime);
        if (used >= cap_total) {
            status = 1;
            goto done;
        }
        b_recv[used] = pend_recv[p];
        b_val[used] = pend_val[p];
        b_time[used] = dtime;
        bh_next[used] = bh_head[jd];
        bh_head[jd] = used;
        used++;
    }
    int64_t sp = 0;
    for (int64_t j = 0; j < steps; j++) {
        double t = t_steps[j];
        /* -- broadcast delivery (VecContext._deliver_broadcasts) ------- */
        for (int64_t msg = bh_head[j]; msg != -1; msg = bh_next[msg]) {
            int64_t r = b_recv[msg];
            real v = b_val[msg];
            if (v > max_estimate[r])
                max_estimate[r] = v;
            delivered[engine_of[r]]++;
        }
        /* -- per-node control phases, fused ----------------------------
         * Max-estimate advance, broadcast send and trigger evaluation all
         * touch disjoint per-node state (evaluation reads neighbours'
         * logical clocks, which only the clock phase writes), so one pass
         * per node preserves the exact engine-by-engine, position-
         * ascending order of every write and rng draw while walking the
         * state columns once per step instead of three times. */
        for (int64_t e = 0; e < n_engines; e++) {
            real interval = bcast_interval[e];
            int uniform_delay = dp_kind[e] == 1;
            double low = dp_low[e];
            double span = dp_span[e];
            int64_t *mt = mt_state + e * 624;
            int64_t strat = strategy[e];
            for (int64_t i = engine_start[e]; i < engine_start[e + 1]; i++) {
                /* max estimate maintenance (MaxEstimateTracker.advance) */
                real hw = hardware[i];
                real delta = hw - last_hardware[i];
                if (delta < 0.0)
                    delta = 0.0;
                last_hardware[i] = hw;
                real m = max_estimate[i] + delta * max_factor[i];
                real lg = logical[i];
                if (lg > m)
                    m = lg;
                max_estimate[i] = m;
                /* broadcast send (per-engine rng streams) */
                if (hw + 1e-12 >= next_broadcast[i]) {
                    next_broadcast[i] = hw + interval;
                    int64_t k0 = sb_indptr[i];
                    int64_t k1 = sb_indptr[i + 1];
                    for (int64_t k = k0; k < k1; k++) {
                        double d;
                        if (uniform_delay) {
                            double raw = mt_res53(mt, &mt_pos[e]);
                            double bound = sb_bound[k];
                            d = (low + span * raw) * bound;
                            if (d > bound)
                                d = bound;
                        } else {
                            d = sb_static[k];
                        }
                        double dtime = t + d;
                        int64_t jd = delivery_step(t_steps, j + 1, steps, dtime);
                        if (used >= cap_total) {
                            status = 1;
                            goto done;
                        }
                        b_recv[used] = sb_recv[k];
                        b_val[used] = m;
                        b_time[used] = dtime;
                        bh_next[used] = bh_head[jd];
                        bh_head[jd] = used;
                        used++;
                    }
                    sent[e] += k1 - k0;
                }
                /* oracle estimates + trigger evaluation */
                int64_t k0 = f_indptr[i];
                int64_t k1 = f_indptr[i + 1];
                int64_t mc;
                if (row_uniform[i]) {
                    real amin = (real)INFINITY;
                    real amax = (real)-INFINITY;
                    for (int64_t k = k0; k < k1; k++) {
                        real tv = logical[f_nbr[k]];
                        real est;
                        if (strat == 0) { /* zero error */
                            est = tv;
                        } else if (strat == 4) { /* toward_observer */
                            real epsv = f_eps[k];
                            if (epsv == 0.0) {
                                est = tv;
                            } else {
                                real diff = lg - tv;
                                real err;
                                if (diff > 0.0)
                                    err = diff < epsv ? diff : epsv;
                                else
                                    err = diff > -epsv ? diff : -epsv;
                                est = tv + err;
                                if (est < 0.0)
                                    est = 0.0;
                            }
                        } else if (strat == 2) { /* underestimate */
                            real epsv = f_eps[k];
                            est = epsv == 0.0 ? tv : tv - epsv;
                            if (est < 0.0)
                                est = 0.0;
                        } else { /* 3: overestimate */
                            est = tv + f_eps[k];
                        }
                        real a = est - lg;
                        if (a < amin)
                            amin = a;
                        if (a > amax)
                            amax = a;
                    }
                    mc = evaluate_mode_uniform(lg, m, iota[i],
                                               amin, amax, row_lvl[i],
                                               row_tid[i], thresholds,
                                               n_levels);
                } else {
                    int64_t count = 0;
                    for (int64_t k = k0; k < k1; k++) {
                        real tv = logical[f_nbr[k]];
                        real est;
                        if (strat == 0) { /* zero error */
                            est = tv;
                        } else if (strat == 4) { /* toward_observer */
                            real epsv = f_eps[k];
                            if (epsv == 0.0) {
                                est = tv;
                            } else {
                                real diff = lg - tv;
                                real err;
                                if (diff > 0.0)
                                    err = diff < epsv ? diff : epsv;
                                else
                                    err = diff > -epsv ? diff : -epsv;
                                est = tv + err;
                                if (est < 0.0)
                                    est = 0.0;
                            }
                        } else if (strat == 2) { /* underestimate */
                            real epsv = f_eps[k];
                            est = epsv == 0.0 ? tv : tv - epsv;
                            if (est < 0.0)
                                est = 0.0;
                        } else { /* 3: overestimate */
                            est = tv + f_eps[k];
                        }
                        ahead_scratch[count] = est - lg;
                        level_scratch[count] = f_lvl[k];
                        tid_scratch[count] = f_tid[k];
                        count++;
                    }
                    mc = evaluate_mode(lg, m, iota[i], count,
                                       ahead_scratch, level_scratch,
                                       tid_scratch, thresholds, n_levels);
                }
                if (mc == 0) {
                    multiplier[i] = 1.0;
                    mode[i] = 0;
                } else if (mc == 1) {
                    multiplier[i] = fast_mult[i];
                    mode[i] = 1;
                }
                /* mc == 2 ("free"): keep the current mode and multiplier. */
            }
        }
        /* -- trace snapshots ------------------------------------------- */
        while (sp < n_snap && snap_step[sp] == j) {
            int64_t e = snap_engine[sp];
            int64_t off = snap_offset[sp];
            int64_t s0 = engine_start[e];
            for (int64_t i = s0; i < engine_start[e + 1]; i++) {
                int64_t d = off + (i - s0);
                snap_logical[d] = logical[i];
                snap_hardware[d] = hardware[i];
                snap_multiplier[d] = multiplier[i];
                snap_max_estimate[d] = max_estimate[i];
                snap_mode[d] = mode[i];
            }
            sp++;
        }
        /* -- clock advancement ----------------------------------------- */
        for (int64_t i = 0; i < n_nodes; i++) {
            hardware[i] += rates[i] * dt;
            logical[i] += (rates[i] * multiplier[i]) * dt;
        }
    }
    /* Compact the messages that outlive the segment. */
    {
        int64_t nleft = 0;
        for (int64_t msg = bh_head[steps]; msg != -1; msg = bh_next[msg]) {
            left_recv[nleft] = b_recv[msg];
            left_val[nleft] = b_val[msg];
            left_time[nleft] = b_time[msg];
            nleft++;
        }
        out_counts[0] = nleft;
        out_counts[1] = used;
    }
done:
    free(f_indptr);
    free(f_nbr);
    free(f_eps);
    free(f_lvl);
    free(f_tid);
    free(row_uniform);
    free(row_tid);
    free(row_lvl);
    return status;
}
