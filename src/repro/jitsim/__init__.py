"""repro.jitsim -- the compiled fused-time-loop backend ("jit").

A fourth :class:`~repro.fastsim.backend.EngineBackend` that keeps vecsim's
semantics (and bit-identical results) while replacing the per-step Python
round-trips with one compiled kernel invocation per regular step segment.
See :mod:`repro.jitsim.engine` for the driver, :mod:`repro.jitsim.kernel`
for the (numba-njittable) fused loop, ``_fused_loop.c`` for its line-for-line
C port, and :mod:`repro.jitsim.providers` for how an executable kernel form
(numba / on-demand-compiled C / interpreted) is resolved.
"""

from .engine import JitContext, JitEngine, build_batch
from .providers import (
    ProviderUnavailableError,
    available_provider_names,
    get_provider,
    provider_available,
    reset_provider_cache,
)

__all__ = [
    "JitContext",
    "JitEngine",
    "ProviderUnavailableError",
    "available_provider_names",
    "build_batch",
    "get_provider",
    "provider_available",
    "reset_provider_cache",
]
