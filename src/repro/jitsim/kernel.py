"""The fused time-loop kernel of the jit backend.

One call to :func:`fused_segment` executes *k* regular simulation steps for a
whole batch of runs without returning to Python: broadcast delivery,
max-estimate maintenance, broadcast sending (with in-kernel Mersenne-Twister
delay draws), trigger/mode evaluation, trace snapshots and clock advancement
-- each phase elementwise-identical to the vec backend's per-step kernels
(which are themselves bit-identical to the fast and reference engines).

The function bodies are deliberately dispatch-free: plain scalar loops over
flat ``int64`` / float arrays, no Python objects, no allocation, no calls
into the standard library.  That makes them

* directly ``numba.njit``-able (the decorators below are no-ops when numba
  is not installed, so the same code doubles as the interpreted fallback
  provider), and
* a line-for-line template for the C port in ``_fused_loop.c`` (compiled on
  demand by :mod:`repro.jitsim.providers` when numba is unavailable).

Bit-identity notes
------------------

* The in-kernel MT19937 implements exactly CPython's ``random.random()``
  (``genrand_res53``: two tempered 32-bit outputs combined as
  ``(a*2^26 + b) / 2^53``) over state transplanted from
  ``random.Random.getstate()``; the state words travel as ``int64`` (all
  values < 2^32) so the same arithmetic works in Python, numba and C.
* Uniform delays use the exact float expression of
  ``Random.uniform(a, b) * bound`` followed by ``min(delay, bound)`` -- the
  same ops as ``UniformRandomDelay.delay`` and vecsim's batched
  ``np.minimum(fractions * bounds, bounds)``.
* Message delivery buckets each send into the first step ``j`` whose time
  satisfies ``delivery_time <= t_steps[j] + 1e-12`` -- the predicate of
  ``VecContext._deliver_broadcasts`` -- via binary search over the
  precomputed step-time grid.  Within-step order is irrelevant (max-updates
  commute), exactly as in the vec transport.
* ``_evaluate_mode`` is :func:`repro.core.aopt_step.evaluate_mode_flat`
  verbatim over a flattened ``(T, 4, L)`` threshold array.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised via the numba-equipped CI leg
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - default in numba-less environments
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(func):
            return func

        return decorate


@njit(cache=False)
def _mt_next32(mt_state, mt_pos, e):
    """One tempered MT19937 output for engine ``e`` (CPython genrand_uint32).

    ``mt_state`` is ``(R, 624)`` int64 (values < 2^32), ``mt_pos`` the per-
    engine cursor; position 624 means "twist before the next output", the
    exact convention of ``random.Random.getstate()``.
    """
    p = mt_pos[e]
    if p >= 624:
        for i in range(624):
            y = (mt_state[e, i] & 0x80000000) | (
                mt_state[e, (i + 1) % 624] & 0x7FFFFFFF
            )
            v = mt_state[e, (i + 397) % 624] ^ (y >> 1)
            if y & 1:
                v ^= 0x9908B0DF
            mt_state[e, i] = v
        p = 0
    y = mt_state[e, p]
    mt_pos[e] = p + 1
    y ^= y >> 11
    y ^= (y << 7) & 0x9D2C5680
    y ^= (y << 15) & 0xEFC60000
    y ^= y >> 18
    return y


@njit(cache=False)
def _mt_res53(mt_state, mt_pos, e):
    """CPython's ``random.random()``: a 53-bit double from two outputs."""
    a = _mt_next32(mt_state, mt_pos, e) >> 5
    b = _mt_next32(mt_state, mt_pos, e) >> 6
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)


@njit(cache=False)
def _delivery_step(t_steps, lo, steps, dtime):
    """First step ``j`` in ``[lo, steps)`` with ``dtime <= t_steps[j] + 1e-12``.

    Returns ``steps`` when the message outlives the segment (leftover).
    The predicate is monotone in ``j`` (strictly increasing step times), so
    any search strategy lands on the same step the per-step ``searchsorted``
    of ``VecContext._deliver_broadcasts`` would: the grid is uniform, so an
    arithmetic guess is within a step or two of the answer and a short walk
    settles it with the exact predicate (cheaper than a binary search's
    unpredictable branches at high message rates).
    """
    if lo >= steps:
        return steps
    g = lo + int((dtime - t_steps[lo]) / (t_steps[1] - t_steps[0]))
    if g < lo:
        g = lo
    elif g > steps:
        g = steps
    while g > lo and dtime <= t_steps[g - 1] + 1e-12:
        g -= 1
    while g < steps and not (dtime <= t_steps[g] + 1e-12):
        g += 1
    return g


@njit(cache=False)
def _evaluate_mode_uniform(lg, m, iota_v, amin, amax, lvl, tid, thr, n_levels):
    """Mode evaluation for a row whose edges share one table and one level.

    When every edge participates at every level ``s <= lvl`` with the same
    thresholds, the per-edge existential/universal conditions collapse onto
    the row's ahead extrema -- ``someone_behind`` iff ``-amin`` crosses the
    slow-behind threshold, ``nobody_far_ahead`` iff ``amax`` stays under the
    slow-ahead one (and mirrored for fast).  Exactly the per-node-extrema
    collapse :func:`repro.vecsim.kernels.evaluate_modes_vec` uses for
    homogeneous graphs; same comparisons on the same floats, so the result
    is identical to the general scan -- just without the edges x levels
    rescan.
    """
    base = tid * 4 * n_levels
    for idx in range(lvl):
        if -amin < thr[base + 2 * n_levels + idx]:
            break
        if amax <= thr[base + 3 * n_levels + idx]:
            return 0
    for idx in range(lvl):
        if amax < thr[base + idx]:
            break
        if -amin <= thr[base + n_levels + idx]:
            return 1
    lag = m - lg
    if lag <= 1e-9:
        return 0
    if lag >= iota_v:
        return 1
    return 2


@njit(cache=False)
def _evaluate_mode(lg, m, iota_v, count, aheads, levels, tids, thr, n_levels):
    """``repro.core.aopt_step.evaluate_mode_flat`` over a flat threshold array.

    ``thr`` is the combined ``(T, 4, L)`` table flattened C-order; rows are
    (fast-ahead, fast-behind, slow-behind, slow-ahead) as in
    ``vecsim.kernels.THR_*``.  Tolerance fixed at the shared 1e-9.
    """
    if count > 0:
        lmax = 0
        for k in range(count):
            if levels[k] > lmax:
                lmax = levels[k]
        # Slow mode trigger (Definition 4.6), smallest level first.
        for s in range(1, lmax + 1):
            idx = s - 1
            someone_behind = False
            nobody_far_ahead = True
            for k in range(count):
                if levels[k] < s:
                    continue
                ahead = aheads[k]
                base = tids[k] * 4 * n_levels
                if -ahead >= thr[base + 2 * n_levels + idx]:
                    someone_behind = True
                if ahead > thr[base + 3 * n_levels + idx]:
                    nobody_far_ahead = False
            if not someone_behind:
                break
            if nobody_far_ahead:
                return 0
        # Fast mode trigger (Definition 4.5).
        for s in range(1, lmax + 1):
            idx = s - 1
            someone_ahead = False
            nobody_far_behind = True
            for k in range(count):
                if levels[k] < s:
                    continue
                ahead = aheads[k]
                base = tids[k] * 4 * n_levels
                if ahead >= thr[base + idx]:
                    someone_ahead = True
                if -ahead > thr[base + n_levels + idx]:
                    nobody_far_behind = False
            if not someone_ahead:
                break
            if nobody_far_behind:
                return 1
    # Max estimate triggers (Definition 4.7).
    lag = m - lg
    if lag <= 1e-9:
        return 0
    if lag >= iota_v:
        return 1
    return 2


@njit(cache=False)
def fused_segment(
    n_nodes,
    n_engines,
    steps,
    dt,
    t_steps,
    engine_start,
    engine_of,
    hardware,
    logical,
    last_hardware,
    max_estimate,
    next_broadcast,
    multiplier,
    mode,
    iota,
    fast_mult,
    max_factor,
    rates,
    bcast_interval,
    strategy,
    indptr,
    nbr,
    eps,
    level,
    table_id,
    thresholds,
    n_levels,
    sb_indptr,
    sb_recv,
    sb_bound,
    sb_static,
    dp_kind,
    dp_low,
    dp_span,
    mt_state,
    mt_pos,
    n_pend,
    pend_recv,
    pend_val,
    pend_time,
    cap_total,
    bh_head,
    bh_next,
    b_recv,
    b_val,
    b_time,
    sent,
    delivered,
    n_snap,
    snap_step,
    snap_engine,
    snap_offset,
    snap_logical,
    snap_hardware,
    snap_multiplier,
    snap_max_estimate,
    snap_mode,
    left_recv,
    left_val,
    left_time,
    out_counts,
    ahead_scratch,
    level_scratch,
    tid_scratch,
):
    """Run ``steps`` regular lockstep steps entirely inside the kernel.

    Returns 0 on success, 1 on message-buffer overflow (a sizing bug in the
    caller, never a data-dependent condition -- capacity is computed from an
    upper bound on possible sends).

    Phase order per step ``j`` at time ``t = t_steps[j]`` mirrors
    ``VecContext._step`` with every irregular phase (graph events, heap
    messages, scheduler callbacks, insertions, structure refresh) proven
    absent for the segment by the caller's prescan:

    1. deliver bucket ``j`` (max-update + per-engine delivered counts);
    2. max-estimate advance for all nodes;
    3. per engine, per due sender in position order: reset next-broadcast,
       then draw a delay per receiver in fan-out order and bucket the send;
    4. per node: oracle estimates + flat trigger/mode evaluation;
    5. snapshot due (step, engine) sample slices;
    6. advance hardware/logical clocks with segment-constant rates.
    """
    # Hoist the per-edge constants out of the step loop: levels and table
    # membership cannot change mid-segment, so filter each row down to its
    # discovered (level >= 1) edges once and resolve per-row homogeneity
    # (single table + single level) here instead of per node per step.
    n_edges = indptr[n_nodes]
    f_indptr = np.empty(n_nodes + 1, dtype=np.int64)
    f_nbr = np.empty(n_edges, dtype=np.int64)
    f_eps = np.empty(n_edges, dtype=eps.dtype)
    f_lvl = np.empty(n_edges, dtype=np.int64)
    f_tid = np.empty(n_edges, dtype=np.int64)
    row_uniform = np.empty(n_nodes, dtype=np.int64)
    row_tid = np.empty(n_nodes, dtype=np.int64)
    row_lvl = np.empty(n_nodes, dtype=np.int64)
    fpos = 0
    for i in range(n_nodes):
        f_indptr[i] = fpos
        utid = np.int64(0)
        ulvl = np.int64(0)
        uni = np.int64(1)
        for k in range(indptr[i], indptr[i + 1]):
            lv = level[k]
            if lv < 1:
                continue
            if fpos == f_indptr[i]:
                utid = table_id[k]
                ulvl = lv
            elif table_id[k] != utid or lv != ulvl:
                uni = np.int64(0)
            f_nbr[fpos] = nbr[k]
            f_eps[fpos] = eps[k]
            f_lvl[fpos] = lv
            f_tid[fpos] = table_id[k]
            fpos += 1
        row_uniform[i] = uni
        row_tid[i] = utid
        row_lvl[i] = ulvl
    f_indptr[n_nodes] = fpos
    for j in range(steps + 1):
        bh_head[j] = -1
    used = 0
    # Bucket the messages already in flight at segment start.
    for p in range(n_pend):
        dtime = pend_time[p]
        jd = _delivery_step(t_steps, 0, steps, dtime)
        if used >= cap_total:
            return 1
        b_recv[used] = pend_recv[p]
        b_val[used] = pend_val[p]
        b_time[used] = dtime
        bh_next[used] = bh_head[jd]
        bh_head[jd] = used
        used += 1
    sp = 0
    for j in range(steps):
        t = t_steps[j]
        # -- broadcast delivery (VecContext._deliver_broadcasts) ---------
        msg = bh_head[j]
        while msg != -1:
            r = b_recv[msg]
            v = b_val[msg]
            if v > max_estimate[r]:
                max_estimate[r] = v
            delivered[engine_of[r]] += 1
            msg = bh_next[msg]
        # -- per-node control phases, fused ------------------------------
        # Max-estimate advance, broadcast send and trigger evaluation all
        # touch disjoint per-node state (evaluation reads neighbours'
        # ``logical``, which only the clock phase writes), so one pass per
        # node preserves the exact engine-by-engine, position-ascending
        # order of every write and rng draw while walking the state columns
        # once per step instead of three times.
        for e in range(n_engines):
            interval = bcast_interval[e]
            uniform_delay = dp_kind[e] == 1
            low = dp_low[e]
            span = dp_span[e]
            strat = strategy[e]
            for i in range(engine_start[e], engine_start[e + 1]):
                # max estimate maintenance (MaxEstimateTracker.advance)
                hw = hardware[i]
                delta = hw - last_hardware[i]
                if delta < 0.0:
                    delta = 0.0
                last_hardware[i] = hw
                m = max_estimate[i] + delta * max_factor[i]
                lg = logical[i]
                if lg > m:
                    m = lg
                max_estimate[i] = m
                # broadcast send (per-engine rng streams)
                if hw + 1e-12 >= next_broadcast[i]:
                    next_broadcast[i] = hw + interval
                    k0 = sb_indptr[i]
                    k1 = sb_indptr[i + 1]
                    for k in range(k0, k1):
                        if uniform_delay:
                            raw = _mt_res53(mt_state, mt_pos, e)
                            bound = sb_bound[k]
                            d = (low + span * raw) * bound
                            if d > bound:
                                d = bound
                        else:
                            d = sb_static[k]
                        dtime = t + d
                        jd = _delivery_step(t_steps, j + 1, steps, dtime)
                        if used >= cap_total:
                            return 1
                        b_recv[used] = sb_recv[k]
                        b_val[used] = m
                        b_time[used] = dtime
                        bh_next[used] = bh_head[jd]
                        bh_head[jd] = used
                        used += 1
                    sent[e] += k1 - k0
                # oracle estimates + trigger evaluation
                k0 = f_indptr[i]
                k1 = f_indptr[i + 1]
                if row_uniform[i] == 1:
                    amin = np.inf
                    amax = -np.inf
                    for k in range(k0, k1):
                        tv = logical[f_nbr[k]]
                        if strat == 0:  # zero error
                            est = tv
                        elif strat == 4:  # toward_observer
                            epsv = f_eps[k]
                            if epsv == 0.0:
                                est = tv
                            else:
                                diff = lg - tv
                                if diff > 0.0:
                                    err = diff if diff < epsv else epsv
                                else:
                                    err = diff if diff > -epsv else -epsv
                                est = tv + err
                                if est < 0.0:
                                    est = 0.0
                        elif strat == 2:  # underestimate
                            epsv = f_eps[k]
                            est = tv if epsv == 0.0 else tv - epsv
                            if est < 0.0:
                                est = 0.0
                        else:  # 3: overestimate
                            est = tv + f_eps[k]
                        a = est - lg
                        if a < amin:
                            amin = a
                        if a > amax:
                            amax = a
                    mc = _evaluate_mode_uniform(
                        lg,
                        m,
                        iota[i],
                        amin,
                        amax,
                        row_lvl[i],
                        row_tid[i],
                        thresholds,
                        n_levels,
                    )
                else:
                    count = 0
                    for k in range(k0, k1):
                        tv = logical[f_nbr[k]]
                        if strat == 0:  # zero error
                            est = tv
                        elif strat == 4:  # toward_observer
                            epsv = f_eps[k]
                            if epsv == 0.0:
                                est = tv
                            else:
                                diff = lg - tv
                                if diff > 0.0:
                                    err = diff if diff < epsv else epsv
                                else:
                                    err = diff if diff > -epsv else -epsv
                                est = tv + err
                                if est < 0.0:
                                    est = 0.0
                        elif strat == 2:  # underestimate
                            epsv = f_eps[k]
                            est = tv if epsv == 0.0 else tv - epsv
                            if est < 0.0:
                                est = 0.0
                        else:  # 3: overestimate
                            est = tv + f_eps[k]
                        ahead_scratch[count] = est - lg
                        level_scratch[count] = f_lvl[k]
                        tid_scratch[count] = f_tid[k]
                        count += 1
                    mc = _evaluate_mode(
                        lg,
                        m,
                        iota[i],
                        count,
                        ahead_scratch,
                        level_scratch,
                        tid_scratch,
                        thresholds,
                        n_levels,
                    )
                if mc == 0:
                    multiplier[i] = 1.0
                    mode[i] = 0
                elif mc == 1:
                    multiplier[i] = fast_mult[i]
                    mode[i] = 1
                # mc == 2 ("free"): keep the current mode and multiplier.
        # -- trace snapshots ---------------------------------------------
        while sp < n_snap and snap_step[sp] == j:
            e = snap_engine[sp]
            off = snap_offset[sp]
            s0 = engine_start[e]
            for i in range(s0, engine_start[e + 1]):
                d = off + (i - s0)
                snap_logical[d] = logical[i]
                snap_hardware[d] = hardware[i]
                snap_multiplier[d] = multiplier[i]
                snap_max_estimate[d] = max_estimate[i]
                snap_mode[d] = mode[i]
            sp += 1
        # -- clock advancement -------------------------------------------
        for i in range(n_nodes):
            hardware[i] += rates[i] * dt
            logical[i] += (rates[i] * multiplier[i]) * dt
    # Compact the messages that outlive the segment (delivered later by the
    # vec transport or the next fused segment).
    nleft = 0
    msg = bh_head[steps]
    while msg != -1:
        left_recv[nleft] = b_recv[msg]
        left_val[nleft] = b_val[msg]
        left_time[nleft] = b_time[msg]
        nleft += 1
        msg = bh_next[msg]
    out_counts[0] = nleft
    out_counts[1] = used
    return 0
