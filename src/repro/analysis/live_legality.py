"""Legality checking against the *live* level sets of a running system.

:mod:`repro.analysis.legality` checks the legality condition
(Definition 5.13) for caller-supplied level edge sets.  During a simulation
the level sets ``E_s(t)`` are defined by the algorithm instances themselves
(Definition 5.8: the edge ``{u, v}`` belongs to ``E_s`` when each endpoint has
the other in its level-``s`` neighbor set).  This module extracts those sets
from a running :class:`~repro.sim.engine.Engine` whose nodes execute AOPT and
evaluates legality exactly as the analysis of Section 5 does, which is how
the test-suite checks that edge insertion never lets a level violate its
gradient sequence entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.algorithm import AOPT
from ..core.parameters import Parameters
from ..network.edge import NodeId
from ..sim.engine import Engine
from . import legality


class LiveLegalityError(TypeError):
    """Raised when the engine's algorithms do not expose level sets."""


def level_edge_sets(
    engine: Engine, max_level: int, params: Parameters
) -> Dict[int, List[legality.WeightedEdge]]:
    """The level edge sets ``E_s`` (Definition 5.8) of a running engine.

    An undirected edge ``{u, v}`` belongs to ``E_s`` when it currently exists
    in the estimate graph and both endpoints keep the other in their
    level-``s`` neighbor set.  Edge weights are the algorithm weights
    ``kappa_e`` derived from the edge parameters.
    """
    algorithms: Dict[NodeId, AOPT] = {}
    for node in engine.nodes:
        algorithm = engine.algorithm(node)
        if not isinstance(algorithm, AOPT):
            raise LiveLegalityError(
                f"node {node} runs {type(algorithm).__name__}, not AOPT; "
                "level sets are only defined for the gradient algorithm"
            )
        algorithms[node] = algorithm
    sets: Dict[int, List[legality.WeightedEdge]] = {s: [] for s in range(1, max_level + 1)}
    for key in engine.graph.edges():
        u, v = key.a, key.b
        level_u = algorithms[u].neighbor_level(v)
        level_v = algorithms[v].neighbor_level(u)
        if level_u is None or level_v is None:
            continue
        shared_level = min(level_u, level_v, max_level)
        if shared_level < 1:
            continue
        edge = engine.graph.edge_params(u, v)
        kappa = params.kappa_for(edge.epsilon, edge.tau)
        for level in range(1, shared_level + 1):
            sets[level].append((u, v, kappa))
    return sets


@dataclass(frozen=True)
class LiveLegalityReport:
    """Outcome of a live legality check."""

    time: float
    levels_checked: int
    violations: List[legality.LegalityViolation]

    @property
    def is_legal(self) -> bool:
        return not self.violations

    @property
    def worst_excess(self) -> float:
        if not self.violations:
            return 0.0
        return max(violation.excess for violation in self.violations)


def check_engine(
    engine: Engine,
    global_skew_bound: float,
    params: Parameters,
    *,
    max_level: Optional[int] = None,
) -> LiveLegalityReport:
    """Evaluate Definition 5.13 on the engine's current state.

    ``max_level`` defaults to the level count implied by the bound and the
    smallest edge weight currently in the graph.
    """
    if max_level is None:
        kappas = [
            params.kappa_for(edge.epsilon, edge.tau)
            for edge in engine.graph.known_edge_params().values()
        ]
        kappa_min = min(kappas) if kappas else params.kappa_for(1.0, 0.5)
        max_level = params.levels_for(global_skew_bound, kappa_min)
    sets = level_edge_sets(engine, max_level, params)
    sequence = params.gradient_sequence(global_skew_bound, max_level)
    violations = legality.legality_violations(
        engine.logical_snapshot(), sets, sequence
    )
    return LiveLegalityReport(
        time=engine.time, levels_checked=max_level, violations=violations
    )
