"""Legality with respect to a gradient sequence (Definitions 5.7--5.13).

A gradient sequence ``C = (C_1, C_2, ...)`` is non-increasing; the system is
``(C, s)``-legal at node ``u`` when

    Psi^s_u = max over level-s paths p = (u, ..., v) of
              ( L_v - L_u - (s + 1/2) * kappa_p )  <  C_s / 2.

Maximizing over paths is equivalent to maximizing, over all nodes ``v``
reachable in the level-``s`` edge set, the expression
``L_v - L_u - (s + 1/2) * dist_s(u, v)`` where ``dist_s`` is the shortest
``kappa``-weighted distance in that edge set (a longer path only decreases the
expression).  That makes legality efficiently checkable with Dijkstra, which
is what this module does.

Lemma 5.14 then turns legality into the pairwise skew bound
``|L_u - L_v| < (s + 1/2) * kappa_p + C_s / 2`` used by the gradient analyses.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.parameters import Parameters
from ..network.edge import NodeId

WeightedEdge = Tuple[NodeId, NodeId, float]


def gradient_sequence(
    global_skew_bound: float, params: Parameters, levels: int
) -> List[float]:
    """``C_s = 2 * G / sigma**max(s - 2, 0)`` for ``s = 1 .. levels``.

    The returned list is 1-indexed conceptually; index 0 repeats ``C_1`` so
    ``sequence[s]`` is ``C_s``.
    """
    return params.gradient_sequence(global_skew_bound, levels)[: levels + 1]


def _adjacency(edges: Iterable[WeightedEdge]) -> Dict[NodeId, List[Tuple[NodeId, float]]]:
    adjacency: Dict[NodeId, List[Tuple[NodeId, float]]] = {}
    for u, v, kappa in edges:
        if kappa <= 0.0:
            raise ValueError("edge weights kappa must be positive")
        adjacency.setdefault(u, []).append((v, kappa))
        adjacency.setdefault(v, []).append((u, kappa))
    return adjacency


def _distances_from(
    source: NodeId, adjacency: Mapping[NodeId, List[Tuple[NodeId, float]]]
) -> Dict[NodeId, float]:
    dist = {source: 0.0}
    heap: List[Tuple[float, NodeId]] = [(0.0, source)]
    done: Dict[NodeId, bool] = {}
    while heap:
        d, node = heapq.heappop(heap)
        if done.get(node):
            continue
        done[node] = True
        for other, weight in adjacency.get(node, ()):  # pragma: no branch
            nd = d + weight
            if nd < dist.get(other, math.inf):
                dist[other] = nd
                heapq.heappush(heap, (nd, other))
    return dist


def psi(
    node: NodeId,
    level: int,
    logical: Mapping[NodeId, float],
    level_edges: Iterable[WeightedEdge],
) -> float:
    """``Psi^s_u`` of Definition 5.12 (0 when the node has no level-s paths)."""
    if level < 1:
        raise ValueError("levels start at 1")
    adjacency = _adjacency(level_edges)
    distances = _distances_from(node, adjacency)
    best = 0.0
    for other, distance in distances.items():
        if other == node:
            continue
        value = logical[other] - logical[node] - (level + 0.5) * distance
        best = max(best, value)
    return best


def xi(
    node: NodeId,
    level: int,
    logical: Mapping[NodeId, float],
    level_edges: Iterable[WeightedEdge],
) -> float:
    """``Xi^s_u`` of Definition 5.11 (0 when the node has no level-s paths)."""
    if level < 1:
        raise ValueError("levels start at 1")
    adjacency = _adjacency(level_edges)
    distances = _distances_from(node, adjacency)
    best = 0.0
    for other, distance in distances.items():
        if other == node:
            continue
        value = logical[node] - logical[other] - level * distance
        best = max(best, value)
    return best


@dataclass(frozen=True)
class LegalityViolation:
    """A node and level at which the legality condition fails."""

    node: NodeId
    level: int
    psi: float
    limit: float

    @property
    def excess(self) -> float:
        return self.psi - self.limit


def legality_violations(
    logical: Mapping[NodeId, float],
    level_edges: Mapping[int, Sequence[WeightedEdge]],
    sequence: Sequence[float],
) -> List[LegalityViolation]:
    """Check ``Psi^s_u < C_s / 2`` for every node and level.

    ``level_edges[s]`` lists the weighted edges of the level-``s`` edge set
    ``E_s``; ``sequence[s]`` is ``C_s`` (index 0 unused).  For fully inserted
    static graphs every level shares the same edge set.
    """
    violations: List[LegalityViolation] = []
    for level, edges in sorted(level_edges.items()):
        if level < 1 or level >= len(sequence):
            continue
        limit = sequence[level] / 2.0
        for node in logical:
            value = psi(node, level, logical, edges)
            if value >= limit:
                violations.append(LegalityViolation(node, level, value, limit))
    return violations


def is_legal(
    logical: Mapping[NodeId, float],
    level_edges: Mapping[int, Sequence[WeightedEdge]],
    sequence: Sequence[float],
) -> bool:
    """True when no node violates legality on any level."""
    return not legality_violations(logical, level_edges, sequence)


def pairwise_bound_from_legality(
    distance: float, level: int, sequence: Sequence[float]
) -> float:
    """The skew bound of Lemma 5.14: ``(s + 1/2) * kappa_p + C_s / 2``."""
    if level < 1 or level >= len(sequence):
        raise ValueError("level outside the gradient sequence")
    if distance < 0.0:
        raise ValueError("distances are non-negative")
    return (level + 0.5) * distance + sequence[level] / 2.0
