"""Skew, gradient, legality and stabilization analyses over traces."""

from . import gradient, legality, live_legality, report, skew, stabilization

__all__ = ["gradient", "legality", "live_legality", "report", "skew", "stabilization"]
