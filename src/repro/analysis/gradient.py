"""Gradient skew profiles and bound checking.

The stable gradient property (Corollary 5.26 / Corollary 7.10) states that two
nodes connected by a fully inserted path of weight ``kappa_p`` have skew at
most ``(s(p) + 1) * kappa_p`` with
``s(p) = max(2 + ceil(log_sigma(4 G / kappa_p)), 1)`` -- i.e. the familiar
``O(d log(D / d))`` shape.  These helpers compare measured skews against that
bound, both per node pair and aggregated per distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.parameters import Parameters
from ..metrics import streaming
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from ..network import paths
from ..sim.trace import Trace, TraceSample


@dataclass(frozen=True)
class GradientViolation:
    """A node pair whose measured skew exceeds the gradient bound."""

    time: float
    u: NodeId
    v: NodeId
    distance: float
    skew: float
    bound: float

    @property
    def excess(self) -> float:
        return self.skew - self.bound


@dataclass(frozen=True)
class GradientPoint:
    """One point of a distance-vs-skew profile."""

    distance: float
    max_skew: float
    bound: float

    @property
    def ratio(self) -> float:
        return self.max_skew / self.bound if self.bound > 0.0 else math.inf


def gradient_bound(
    distance: float, global_skew_bound: float, params: Parameters
) -> float:
    """The gradient skew bound for a path of weight ``distance``."""
    return params.gradient_skew_bound(distance, global_skew_bound)


def check_sample(
    sample: TraceSample,
    distances: Dict[Tuple[NodeId, NodeId], float],
    global_skew_bound: float,
    params: Parameters,
    *,
    tolerance: float = 1e-9,
) -> List[GradientViolation]:
    """All gradient bound violations in one sample."""
    violations: List[GradientViolation] = []
    for (u, v), distance in distances.items():
        if u >= v or distance <= 0.0:
            continue
        skew = abs(sample.logical[u] - sample.logical[v])
        bound = gradient_bound(distance, global_skew_bound, params)
        if skew > bound + tolerance:
            violations.append(
                GradientViolation(sample.time, u, v, distance, skew, bound)
            )
    return violations


def check_trace(
    trace: Trace,
    graph: DynamicGraph,
    global_skew_bound: float,
    params: Parameters,
    *,
    weight=None,
    start: float = 0.0,
) -> List[GradientViolation]:
    """All gradient bound violations over a trace (from ``start`` onwards).

    ``weight`` defaults to the algorithm weight ``kappa_e`` derived from the
    edge parameters, which is the weight the bound is stated for.

    Implemented as a collecting replay of the streaming counter the
    ``gradient_bound_check`` observer runs during a simulation
    (:class:`repro.metrics.streaming.GradientCounter`): same pair order,
    same ``skew > bound + tolerance`` comparisons, bit-identical counts.
    """
    if weight is None:
        weight = paths.kappa_weight(graph, params)
    distances = paths.all_pairs_distances(graph, weight)
    pairs = [
        (u, v, d, gradient_bound(d, global_skew_bound, params))
        for (u, v), d in distances.items()
        if u < v and d > 0.0
    ]
    counter = streaming.GradientCounter(pairs, collect=True)
    for sample in trace:
        if sample.time >= start:
            logical = sample.logical
            counter.update_skews(
                sample.time, (abs(logical[u] - logical[v]) for u, v, _, _ in pairs)
            )
    return [
        GradientViolation(time, pairs[index][0], pairs[index][1], pairs[index][2], skew, pairs[index][3])
        for time, index, skew in counter.collected
    ]


def profile(
    trace: Trace,
    graph: DynamicGraph,
    global_skew_bound: float,
    params: Parameters,
    *,
    weight=None,
    start: float = 0.0,
) -> List[GradientPoint]:
    """Distance-vs-max-skew profile with the corresponding bounds.

    The result is sorted by distance and is the measured counterpart of the
    ``O(d log(D/d))`` curve of the paper.
    """
    if weight is None:
        weight = paths.kappa_weight(graph, params)
    distances = paths.all_pairs_distances(graph, weight)
    keys = [
        round(distance, 9)
        for (u, v), distance in distances.items()
        if u < v and distance > 0.0
    ]
    accumulator = streaming.DistanceGroupMax(keys, keep_zeros=True)
    for sample in trace:
        if sample.time < start:
            continue
        for (u, v), distance in distances.items():
            if u >= v or distance <= 0.0:
                continue
            skew = abs(sample.logical[u] - sample.logical[v])
            accumulator.update(round(distance, 9), skew)
    return [
        GradientPoint(
            distance=d,
            max_skew=s,
            bound=gradient_bound(d, global_skew_bound, params),
        )
        for d, s in accumulator.result().items()
    ]


def local_skew_prediction(
    kappa: float, global_skew_bound: float, params: Parameters
) -> float:
    """Predicted stable local skew for an edge of weight ``kappa``."""
    return params.local_skew_bound(kappa, global_skew_bound)


def logarithmic_shape_score(points: Iterable[GradientPoint]) -> Optional[float]:
    """Crude shape check: correlation of max skew with ``d * log(D/d)``.

    Returns the Pearson correlation between the measured per-distance skews
    and the ``d * (log(D/d) + 1)`` template, or ``None`` when there are fewer
    than three points.  A value close to 1 means the measured profile follows
    the predicted concave shape.
    """
    data = [(p.distance, p.max_skew) for p in points if p.distance > 0.0]
    if len(data) < 3:
        return None
    diameter = max(d for d, _ in data)
    template = [d * (math.log(diameter / d) + 1.0) for d, _ in data]
    measured = [s for _, s in data]
    return _pearson(template, measured)


def _pearson(xs: List[float], ys: List[float]) -> Optional[float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return None
    return cov / math.sqrt(var_x * var_y)
