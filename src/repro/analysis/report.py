"""Plain-text tables and series for benchmark output.

Since the paper has no numeric tables of its own, the benchmark harness
reports its measurements as aligned text tables (one per experiment), which
EXPERIMENTS.md then summarizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Render one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned text table."""

    title: str
    headers: Sequence[str]
    rows: List[List[Cell]] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but the table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Cell]:
        """Values of one column by header name."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise ValueError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        cells = [[format_cell(c, self.precision) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print("\n" + self.render() + "\n")


def format_series(
    title: str, points: Iterable[Sequence[Cell]], headers: Sequence[str], precision: int = 3
) -> str:
    """Render a series of points as a small table."""
    table = Table(title, headers, precision=precision)
    for point in points:
        table.add_row(*point)
    return table.render()


def ratio_summary(values: Sequence[float], references: Sequence[float]) -> Optional[float]:
    """Average ratio between measured values and reference values."""
    pairs = [
        (v, r) for v, r in zip(values, references) if r not in (0, 0.0) and r == r
    ]
    if not pairs:
        return None
    return sum(v / r for v, r in pairs) / len(pairs)
