"""Skew measurements over traces and snapshots.

The paper distinguishes the *global skew* (maximum pairwise difference of
logical clocks), the *local skew* (maximum difference across a single edge)
and the *gradient skew* (difference between nodes as a function of the weight
of the path connecting them).  These helpers extract all three from recorded
traces.

Since the introduction of :mod:`repro.metrics`, the trace-walking functions
here are thin replays of the same streaming reducers the observers run
during a simulation (:mod:`repro.metrics.streaming`): one pass, identical
float expressions, so a post-hoc analysis of a full trace and a streaming
observer of the same run report bit-identical numbers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..metrics import streaming
from ..network.dynamic_graph import DynamicGraph
from ..network.edge import NodeId
from ..network import paths
from ..sim.trace import Trace, TraceSample

Edge = Tuple[NodeId, NodeId]


def global_skew(sample: TraceSample) -> float:
    """Maximum pairwise logical clock difference in one sample."""
    return sample.global_skew()


def max_global_skew(trace: Trace, *, start: float = 0.0) -> float:
    """Largest global skew observed at or after ``start``."""
    tracker = streaming.PeakTracker(start=start)
    for sample in trace:
        if sample.time >= start:
            tracker.update(sample.time, sample.global_skew())
    return tracker.peak


def local_skew(sample: TraceSample, edges: Iterable[Edge]) -> float:
    """Largest skew across any of the given edges in one sample."""
    best = 0.0
    for u, v in edges:
        best = max(best, abs(sample.logical[u] - sample.logical[v]))
    return best


def max_local_skew(trace: Trace, edges: Iterable[Edge], *, start: float = 0.0) -> float:
    """Largest skew across any of the given edges over the whole trace."""
    edge_list = list(edges)
    tracker = streaming.PeakTracker(start=start)
    for sample in trace:
        if sample.time >= start:
            tracker.update(sample.time, local_skew(sample, edge_list))
    return tracker.peak


def max_skew_between(trace: Trace, u: NodeId, v: NodeId, *, start: float = 0.0) -> float:
    """Largest skew between two specific nodes over the trace."""
    tracker = streaming.PeakTracker(start=start)
    for sample in trace:
        if sample.time >= start:
            tracker.update(sample.time, sample.skew(u, v))
    return tracker.peak


def edges_of(graph: DynamicGraph) -> List[Edge]:
    """The undirected edges of the graph as (u, v) tuples."""
    return [(key.a, key.b) for key in graph.edges()]


def skew_by_distance(
    sample: TraceSample,
    distances: Dict[Tuple[NodeId, NodeId], float],
) -> Dict[float, float]:
    """Maximum skew per exact weighted distance in one sample.

    ``distances`` maps ordered node pairs to their weighted distance (as
    produced by :func:`repro.network.paths.all_pairs_distances`).
    """
    result: Dict[float, float] = {}
    for (u, v), d in distances.items():
        if u >= v or d <= 0.0:
            continue
        skew = abs(sample.logical[u] - sample.logical[v])
        key = round(d, 9)
        if skew > result.get(key, 0.0):
            result[key] = skew
    return result


def max_skew_by_distance(
    trace: Trace,
    graph: DynamicGraph,
    *,
    weight=None,
    start: float = 0.0,
) -> Dict[float, float]:
    """Maximum over time of the per-distance maximum skew."""
    distances = paths.all_pairs_distances(graph, weight)
    accumulator = streaming.DistanceGroupMax()
    for sample in trace:
        if sample.time < start:
            continue
        for distance, skew in skew_by_distance(sample, distances).items():
            accumulator.update(distance, skew)
    return accumulator.result()


def skew_growth_rate(
    trace: Trace, *, start: float, end: float
) -> Optional[float]:
    """Least-squares slope of the global skew between ``start`` and ``end``.

    Returns ``None`` when fewer than two samples fall in the window.  A
    negative slope means the skew is shrinking (used by the self-stabilization
    experiment E5 to check the decrease rate of Theorem 5.6(II)).
    """
    points = [
        (sample.time, sample.global_skew())
        for sample in trace.samples_between(start, end)
    ]
    if len(points) < 2:
        return None
    n = len(points)
    mean_t = sum(p[0] for p in points) / n
    mean_s = sum(p[1] for p in points) / n
    numerator = sum((t - mean_t) * (s - mean_s) for t, s in points)
    denominator = sum((t - mean_t) ** 2 for t, _ in points)
    if denominator == 0.0:
        return None
    return numerator / denominator


def steady_state_window(trace: Trace, fraction: float = 0.5) -> Tuple[float, float]:
    """Time window covering the last ``fraction`` of the trace."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    if trace.is_empty():
        raise ValueError("the trace is empty")
    start_time = trace.first().time
    end_time = trace.final().time
    return (streaming.steady_window_start(start_time, end_time, fraction), end_time)


def max_estimate_lag(sample: TraceSample) -> float:
    """Largest ``max_v L_v - M_u`` over all nodes ``u`` in one sample."""
    true_max = max(sample.logical.values())
    return max(true_max - estimate for estimate in sample.max_estimates.values())


def max_estimate_violations(sample: TraceSample, tolerance: float = 1e-6) -> int:
    """Number of nodes whose max estimate exceeds the true maximum clock."""
    true_max = max(sample.logical.values())
    return sum(
        1 for value in sample.max_estimates.values() if value > true_max + tolerance
    )
