"""Stabilization-time measurement (experiments E4, E5 and E7).

After a new edge appears, the algorithm needs some time before the gradient
bound holds on it (Theorem 5.25 shows ``O(G/mu)`` suffices, Theorem 8.1 shows
``Omega(D)`` is necessary).  :func:`stabilization_time` finds the first time
after the insertion at which the skew over the edge drops below a bound *and
stays there* for the remainder of the trace (or a dwell window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..metrics import streaming
from ..network.edge import NodeId
from ..sim.trace import Trace


@dataclass(frozen=True)
class StabilizationResult:
    """Outcome of a stabilization measurement."""

    stabilized: bool
    stabilization_time: Optional[float]
    elapsed_since_event: Optional[float]
    max_skew_after_event: float
    final_skew: float


def stabilization_time(
    trace: Trace,
    u: NodeId,
    v: NodeId,
    *,
    bound: float,
    event_time: float,
    dwell: Optional[float] = None,
) -> StabilizationResult:
    """First time after ``event_time`` at which ``|L_u - L_v| <= bound`` holds
    and keeps holding.

    ``dwell`` requires the bound to hold for at least that much time (by
    default it must hold until the end of the trace).

    This is a one-pass replay of the streaming tracker the
    ``stabilization_window`` observer runs during a simulation
    (:class:`repro.metrics.streaming.StabilizationTracker`), so post-hoc and
    in-run measurements are bit-identical.
    """
    tracker = streaming.StabilizationTracker(bound, event_time, dwell)
    for sample in trace:
        tracker.update(sample.time, sample.skew(u, v))
    stabilized, at_time, elapsed, max_skew, final_skew = tracker.result()
    return StabilizationResult(stabilized, at_time, elapsed, max_skew, final_skew)


def global_skew_convergence_time(
    trace: Trace,
    *,
    bound: float,
    start: float = 0.0,
) -> Optional[float]:
    """First time at or after ``start`` when the global skew drops below
    ``bound`` and stays there; ``None`` when it never does."""
    detector = streaming.HoldDetector(bound, start=start)
    for sample in trace:
        detector.update(sample.time, sample.global_skew())
    return detector.candidate


def decrease_rate(
    trace: Trace, *, start: float, end: float
) -> Optional[float]:
    """Average decrease rate of the global skew over ``[start, end]``.

    Positive values mean the skew went down.  Used to verify the
    self-stabilization rate ``mu (1 - rho) - 2 rho`` of Theorem 5.6(II).
    """
    window = trace.samples_between(start, end)
    if len(window) < 2:
        return None
    first, last = window[0], window[-1]
    elapsed = last.time - first.time
    if elapsed <= 0.0:
        return None
    return (first.global_skew() - last.global_skew()) / elapsed
