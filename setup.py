"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only enables legacy
editable installs (`pip install -e .`) on systems where PEP 660 editable
wheels cannot be built offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Optimal Gradient Clock Synchronization in Dynamic "
        "Networks' (Kuhn, Lenzen, Locher, Oshman, PODC 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[],
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ]
    },
)
