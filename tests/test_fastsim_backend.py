"""Unit tests for the fastsim subsystem: backends, spec field, flat kernels."""

import random

import pytest

from repro.core.aopt_step import (
    MODE_FAST,
    MODE_FREE,
    MODE_NAMES,
    MODE_SLOW,
    edge_threshold_table,
    evaluate_mode_flat,
)
from repro.core.parameters import Parameters
from repro.core.triggers import NeighborView, evaluate_triggers
from repro.experiments import registry, scenario
from repro.experiments.registry import RegistryError
from repro.experiments.spec import ScenarioSpec, SpecError
from repro.fastsim import (
    BackendError,
    FastEngine,
    UnsupportedScenarioError,
    backend_names,
    get_backend,
    register_backend,
)
from repro.network import topology
from repro.network.edge import EdgeParams
from repro.sim.engine import EngineError
from repro.sim.runner import SimulationConfig


class TestBackendRegistry:
    def test_builtin_backends_are_registered(self):
        assert backend_names() == ["fast", "jit", "reference", "vec"]
        assert get_backend("fast").name == "fast"
        assert get_backend("jit").name == "jit"
        assert get_backend("reference").name == "reference"
        assert get_backend("vec").name == "vec"

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(BackendError, match="fast, jit, reference"):
            get_backend("warp")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(BackendError):
            register_backend(get_backend("fast"))


class TestSpecBackendField:
    def test_default_backend_is_reference(self):
        spec = scenario("quickstart_line", n=4)
        assert spec.backend == "reference"

    def test_backend_is_excluded_from_the_content_hash(self):
        spec = scenario("quickstart_line", n=4)
        fast = spec.with_backend("fast")
        assert fast.backend == "fast"
        assert fast.content_hash() == spec.content_hash()
        assert fast.base_seed() == spec.base_seed()
        assert fast != spec  # still distinct specs

    def test_backend_round_trips_through_dict(self):
        spec = scenario("quickstart_line", n=4, backend="fast")
        assert spec.backend == "fast"
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored.backend == "fast"
        assert restored == spec

    def test_scenario_builder_accepts_backend_override(self):
        spec = scenario("line_scaling", n=4, backend="fast")
        assert spec.backend == "fast"
        # The override must not leak into the builder arguments.
        assert "backend" not in spec.topology.args

    def test_empty_backend_is_rejected(self):
        with pytest.raises(SpecError):
            scenario("quickstart_line", n=4).with_backend("")

    def test_build_scenario_rejects_unknown_backend(self):
        spec = scenario("quickstart_line", n=4, backend="warp")
        with pytest.raises(RegistryError, match="unknown backend"):
            registry.build_scenario(spec)


def small_config(**overrides):
    defaults = dict(
        params=Parameters(rho=0.015, mu=0.1),
        dt=0.1,
        duration=5.0,
        estimate_strategy="toward_observer",
        delay_seed=7,
        estimate_seed=8,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestUnsupportedConfigurations:
    def graph(self):
        return topology.line(4, EdgeParams(epsilon=1.0, tau=0.5, delay=2.0))

    def aopt_factory(self, config=None, graph=None):
        from repro.sim.runner import default_aopt_config
        from repro.core.algorithm import aopt_factory

        graph = graph or self.graph()
        config = config or small_config()
        return aopt_factory(default_aopt_config(graph, config))

    def test_broadcast_estimates_are_supported(self):
        # Broadcast estimate mode runs on the fast path (the equivalence
        # suite asserts bit-identity; here we just assert it builds and runs).
        config = small_config(estimate_mode="broadcast", estimate_strategy="zero")
        engine = FastEngine(self.graph(), self.aopt_factory(config), config)
        trace = engine.run(config.duration)
        assert len(trace.samples) > 0
        assert engine.sent_count > 0

    def test_diameter_tracker_is_unsupported(self):
        config = small_config(track_diameter=True)
        with pytest.raises(UnsupportedScenarioError, match="diameter"):
            FastEngine(self.graph(), self.aopt_factory(), config)

    def test_non_aopt_algorithms_are_unsupported(self):
        from repro.baselines.max_algorithm import max_propagation_factory

        config = small_config()
        with pytest.raises(UnsupportedScenarioError, match="AOPT"):
            FastEngine(self.graph(), max_propagation_factory(config.params.rho), config)

    def test_executor_surfaces_unsupported_configs(self):
        spec = scenario(
            "line_scaling",
            n=4,
            algorithm="MaxPropagation",
            sim={"duration": 2.0},
            backend="fast",
        )
        from repro.experiments import execute_spec

        with pytest.raises(UnsupportedScenarioError):
            execute_spec(spec)


class TestFastEngineSurface:
    def build(self):
        graph = topology.line(4, EdgeParams(epsilon=1.0, tau=0.5, delay=2.0))
        from repro.sim.runner import default_aopt_config
        from repro.core.algorithm import aopt_factory

        config = small_config()
        return FastEngine(graph, aopt_factory(default_aopt_config(graph, config)), config)

    def test_snapshots_and_skew(self):
        engine = self.build()
        engine.run(5.0)
        logical = engine.logical_snapshot()
        assert sorted(logical) == [0, 1, 2, 3]
        assert engine.global_skew() == max(logical.values()) - min(logical.values())
        assert engine.logical_value(0) == logical[0]
        assert engine.hardware_value(0) == engine.hardware_snapshot()[0]
        assert engine.current_diameter() is None

    def test_algorithm_view_exposes_levels_and_mode(self):
        engine = self.build()
        engine.run(2.0)
        view = engine.algorithm(1)
        assert view.mode() in ("slow", "fast")
        assert view.max_estimate() >= 0.0
        assert view.levels.subset_chain_holds()
        assert view.neighbor_level(0) is not None

    def test_unknown_node_raises(self):
        engine = self.build()
        with pytest.raises(EngineError):
            engine.logical_value(99)

    def test_running_backwards_raises(self):
        engine = self.build()
        engine.run(1.0)
        with pytest.raises(EngineError):
            engine.run_until(0.5)
        with pytest.raises(EngineError):
            engine.run(-1.0)


class TestFlatKernelAgainstReferenceTriggers:
    """evaluate_mode_flat must reproduce evaluate_triggers bit for bit."""

    MODE_TO_CODE = {"slow": MODE_SLOW, "fast": MODE_FAST, "free": MODE_FREE}

    def random_case(self, rng, params, max_level):
        logical = rng.uniform(0.0, 50.0)
        max_estimate = logical + rng.uniform(0.0, 5.0)
        views = []
        tables = []
        for neighbor in range(rng.randint(0, 5)):
            epsilon = rng.choice([0.0, 0.3, 1.0])
            tau = rng.choice([0.0, 0.5])
            kappa = params.kappa_for(epsilon, tau)
            delta = params.delta_for(kappa, epsilon, tau)
            level = rng.randint(1, max_level)
            estimate = max(0.0, logical + rng.uniform(-4.0, 4.0) * kappa)
            views.append(
                NeighborView(
                    neighbor=neighbor,
                    estimate=estimate,
                    kappa=kappa,
                    epsilon=epsilon,
                    tau=tau,
                    delta=delta,
                    level=level,
                )
            )
            tables.append(edge_threshold_table(params, epsilon, tau, max_level))
        return logical, max_estimate, views, tables

    def test_randomized_cross_check(self):
        params = Parameters(rho=0.015, mu=0.1)
        max_level = 4
        rng = random.Random(1234)
        for _ in range(500):
            logical, max_estimate, views, tables = self.random_case(
                rng, params, max_level
            )
            reference = evaluate_triggers(
                logical, max_estimate, views, params, max_level
            )
            aheads = [view.estimate - logical for view in views]
            levels = [view.level for view in views]
            flat = evaluate_mode_flat(
                logical,
                max_estimate,
                params.iota,
                len(views),
                aheads,
                levels,
                tables,
            )
            assert MODE_NAMES[flat] == reference.mode, (
                f"mismatch: flat={MODE_NAMES[flat]} reference={reference.mode} "
                f"logical={logical} views={views}"
            )

    def test_empty_views_fall_through_to_max_estimate_triggers(self):
        params = Parameters(rho=0.015, mu=0.1)
        # L == M: slow.
        assert evaluate_mode_flat(5.0, 5.0, params.iota, 0, [], [], []) == MODE_SLOW
        # L <= M - iota: fast.
        assert (
            evaluate_mode_flat(5.0, 5.0 + params.iota, params.iota, 0, [], [], [])
            == MODE_FAST
        )
        # In between: free.
        assert (
            evaluate_mode_flat(5.0, 5.0 + params.iota / 2.0, params.iota, 0, [], [], [])
            == MODE_FREE
        )

    def test_threshold_tables_match_trigger_expressions(self):
        params = Parameters(rho=0.015, mu=0.1)
        epsilon, tau = 1.0, 0.5
        kappa = params.kappa_for(epsilon, tau)
        delta = params.delta_for(kappa, epsilon, tau)
        table = edge_threshold_table(params, epsilon, tau, 3)
        for level in (1, 2, 3):
            idx = level - 1
            assert table[0][idx] == level * kappa - epsilon
            assert table[1][idx] == level * kappa + 2.0 * params.mu * tau + epsilon
            assert table[2][idx] == (level + 0.5) * kappa - delta - epsilon
            assert table[3][idx] == (
                (level + 0.5) * kappa
                + delta
                + epsilon
                + params.mu * (1.0 + params.rho) * tau
            )
