"""Tests for repro.sim.trace."""

import pytest

from repro.sim.trace import Trace, TraceError, TraceSample


def sample(t, values, modes=None):
    nodes = list(values)
    return TraceSample(
        time=t,
        logical=dict(values),
        hardware=dict(values),
        multipliers={n: 1.0 for n in nodes},
        modes=modes or {n: "slow" for n in nodes},
        max_estimates={n: max(values.values()) for n in nodes},
    )


class TestTraceSample:
    def test_global_skew(self):
        s = sample(0.0, {0: 1.0, 1: 4.0, 2: 2.0})
        assert s.global_skew() == pytest.approx(3.0)

    def test_pairwise_skew(self):
        s = sample(0.0, {0: 1.0, 1: 4.0})
        assert s.skew(0, 1) == pytest.approx(3.0)
        assert s.skew(1, 0) == pytest.approx(3.0)


class TestTrace:
    def test_requires_positive_sample_interval(self):
        with pytest.raises(TraceError):
            Trace(0.0)

    def test_record_and_access(self):
        trace = Trace(1.0)
        trace.record(sample(0.0, {0: 0.0, 1: 0.0}))
        trace.record(sample(1.0, {0: 1.0, 1: 2.0}))
        assert len(trace) == 2
        assert trace.first().time == 0.0
        assert trace.final().time == 1.0
        assert trace.times == [0.0, 1.0]

    def test_out_of_order_rejected(self):
        trace = Trace(1.0)
        trace.record(sample(5.0, {0: 0.0}))
        with pytest.raises(TraceError):
            trace.record(sample(1.0, {0: 0.0}))

    def test_empty_trace_errors(self):
        trace = Trace(1.0)
        assert trace.is_empty()
        with pytest.raises(TraceError):
            trace.first()
        with pytest.raises(TraceError):
            trace.final()
        with pytest.raises(TraceError):
            trace.sample_at(0.0)

    def test_sample_at_picks_latest_before(self):
        trace = Trace(1.0)
        for t in [0.0, 1.0, 2.0]:
            trace.record(sample(t, {0: t}))
        assert trace.sample_at(1.5).time == 1.0
        assert trace.sample_at(-1.0).time == 0.0
        assert trace.sample_at(10.0).time == 2.0

    def test_samples_between(self):
        trace = Trace(1.0)
        for t in [0.0, 1.0, 2.0, 3.0]:
            trace.record(sample(t, {0: t}))
        window = trace.samples_between(1.0, 2.0)
        assert [s.time for s in window] == [1.0, 2.0]
        with pytest.raises(TraceError):
            trace.samples_between(2.0, 1.0)

    def test_series_helpers(self):
        trace = Trace(1.0)
        trace.record(sample(0.0, {0: 0.0, 1: 1.0}))
        trace.record(sample(1.0, {0: 1.0, 1: 3.0}))
        assert trace.logical_series(1) == [(0.0, 1.0), (1.0, 3.0)]
        assert trace.skew_series(0, 1) == [(0.0, 1.0), (1.0, 2.0)]
        assert trace.global_skew_series()[-1] == (1.0, 2.0)
        assert trace.max_global_skew() == pytest.approx(2.0)

    def test_max_global_skew_empty(self):
        assert Trace(1.0).max_global_skew() == 0.0

    def test_mode_counts(self):
        trace = Trace(1.0)
        trace.record(sample(0.0, {0: 0.0, 1: 0.0}, modes={0: "fast", 1: "slow"}))
        trace.record(sample(1.0, {0: 1.0, 1: 1.0}, modes={0: "fast", 1: "fast"}))
        assert trace.mode_counts() == {"fast": 3, "slow": 1}

    def test_iteration(self):
        trace = Trace(1.0)
        trace.record(sample(0.0, {0: 0.0}))
        assert [s.time for s in trace] == [0.0]
        assert len(trace.samples) == 1


class TestDuplicatePolicy:
    """Explicit ordering/duplicate semantics of Trace.record (PR 5)."""

    def test_default_policy_allows_duplicates(self):
        trace = Trace(1.0)
        trace.record(sample(1.0, {0: 0.0}))
        trace.record(sample(1.0, {0: 5.0}))
        assert len(trace) == 2
        assert trace.final().logical[0] == 5.0

    def test_within_tolerance_counts_as_duplicate(self):
        trace = Trace(1.0, on_duplicate="error")
        trace.record(sample(1.0, {0: 0.0}))
        with pytest.raises(TraceError, match="duplicate"):
            trace.record(sample(1.0 - 5e-13, {0: 0.0}))  # the old silent case

    def test_replace_policy_overwrites_last(self):
        trace = Trace(1.0, on_duplicate="replace")
        trace.record(sample(0.0, {0: 0.0}))
        trace.record(sample(1.0, {0: 1.0}))
        trace.record(sample(1.0, {0: 9.0}))
        assert len(trace) == 2
        assert trace.final().logical[0] == 9.0

    def test_error_policy_raises(self):
        trace = Trace(1.0, on_duplicate="error")
        trace.record(sample(1.0, {0: 0.0}))
        with pytest.raises(TraceError, match="duplicate"):
            trace.record(sample(1.0, {0: 0.0}))

    def test_too_early_still_rejected_under_every_policy(self):
        for policy in ("allow", "replace", "error"):
            trace = Trace(1.0, on_duplicate=policy)
            trace.record(sample(5.0, {0: 0.0}))
            with pytest.raises(TraceError, match="non-decreasing"):
                trace.record(sample(1.0, {0: 0.0}))

    def test_unknown_policy_rejected(self):
        with pytest.raises(TraceError, match="on_duplicate"):
            Trace(1.0, on_duplicate="maybe")

    def test_strictly_increasing_never_a_duplicate(self):
        trace = Trace(1.0, on_duplicate="error")
        trace.record(sample(0.0, {0: 0.0}))
        trace.record(sample(1e-9, {0: 0.0}))  # beyond tolerance: a new instant
        assert len(trace) == 2
