"""Differential suite: the jit backend must match the reference engine.

Mirror of ``test_vecsim_equivalence.py`` for the compiled fused-time-loop
backend: every named scenario, the staged-insertion handshake, randomized
fuzz specs and every delay model run on both backends with **exact**
payload equality, and the batched execution path must be bit-identical to
running each spec alone.

The whole module is skipped when no kernel provider can run here (no
numba and no C compiler); the jit backend would otherwise refuse to build.
"""

import random

import pytest

from conftest import (
    EQUIVALENCE_SCENARIO_OVERRIDES,
    FUZZ_DELAYS,
    FUZZ_STRATEGIES,
    make_delay_sweep_spec,
    make_fuzz_spec,
)
from repro.experiments import execute_spec, execute_specs_batched, registry, scenario
from repro.experiments.spec import ComponentSpec, ScenarioSpec

pytest.importorskip("numpy")

from repro.jitsim import provider_available  # noqa: E402

pytestmark = pytest.mark.skipif(
    not provider_available(),
    reason="no jit kernel provider (needs numba or a C compiler)",
)

#: Same shortened overrides as the fastsim/vecsim suites (tests/conftest.py).
NAMED_SCENARIO_OVERRIDES = EQUIVALENCE_SCENARIO_OVERRIDES


def assert_equivalent(spec):
    reference = execute_spec(spec.with_backend("reference"))
    jit = execute_spec(spec.with_backend("jit"))
    assert reference["trace"] == jit["trace"], (
        f"trace mismatch for {spec.label or spec.topology.name}"
    )
    assert reference["summary"] == jit["summary"]
    assert reference["meta"] == jit["meta"]
    return reference, jit


class TestNamedScenarioEquivalence:
    def test_every_named_scenario_is_covered(self):
        from conftest import builtin_scenario_names

        assert sorted(NAMED_SCENARIO_OVERRIDES) == builtin_scenario_names()

    @pytest.mark.parametrize("name", sorted(NAMED_SCENARIO_OVERRIDES))
    def test_backends_agree(self, name):
        spec = scenario(name, **NAMED_SCENARIO_OVERRIDES[name])
        reference, jit = assert_equivalent(spec)
        assert reference["summary"]["sample_count"] > 5
        assert reference["spec_hash"] == jit["spec_hash"]

    def test_the_kernel_actually_fuses_steps(self):
        """Guard against the suite passing through the vec fallback path."""
        from repro.jitsim import JitEngine

        spec = scenario("quickstart_line", n=8, sim={"duration": 20.0})
        materialised = registry.build_scenario(spec)
        engine = JitEngine(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        engine.run(materialised.config.duration)
        context = engine._ctx
        assert context.fused_steps > context.stepped_steps
        assert context.fused_steps > 0


class TestStagedInsertionEquivalence:
    """The full Listing 1/2 handshake on the compiled engine."""

    def insertion_spec(self, algorithm="aopt"):
        return ScenarioSpec(
            label=f"jitsim_insertion/{algorithm}",
            topology=ComponentSpec("line", {"n": 5}),
            dynamics=ComponentSpec(
                "end_to_end_insertion", {"insertion_time": 5.0}
            ),
            drift=ComponentSpec("two_group", {"swap_period": 20.0}),
            algorithm=ComponentSpec(
                algorithm,
                {"global_skew_bound": 10.0, "insertion_scale": 0.001},
            ),
            params={"rho": 0.015, "mu": 0.1},
            edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
            sim={
                "dt": 0.1,
                "duration": 45.0,
                "sample_interval": 1.0,
                "estimate_strategy": "toward_observer",
            },
        )

    def test_staged_insertion_matches_and_completes(self):
        from repro.core.neighbor_sets import FULLY_INSERTED
        from repro.jitsim import JitEngine

        spec = self.insertion_spec()
        assert_equivalent(spec)
        materialised = registry.build_scenario(spec)
        jit = JitEngine(
            materialised.graph,
            materialised.algorithm_factory,
            materialised.config,
        )
        jit.run(materialised.config.duration)
        assert jit.algorithm(0).levels.level_of(4) == FULLY_INSERTED
        assert jit.algorithm(4).levels.level_of(0) == FULLY_INSERTED
        assert jit.algorithm(0).levels.subset_chain_holds()

    def test_immediate_insertion_variant_matches(self):
        assert_equivalent(self.insertion_spec(algorithm="immediate_insertion"))


class TestFuzzEquivalence:
    """Randomized specs over topologies x drifts x delays x strategies.

    The generators live in tests/conftest.py and are shared with the
    fastsim/vecsim differential suites -- same seeds, same cases.
    """

    @pytest.mark.parametrize("case", range(6))
    def test_random_specs_agree(self, case):
        rng = random.Random(47110 + case)
        spec = make_fuzz_spec(rng, case, "jitsim_fuzz")
        assert_equivalent(spec)

    @pytest.mark.parametrize("delay", FUZZ_DELAYS)
    def test_every_delay_model_agrees(self, delay):
        """Deterministic sweep over all delay models (incl. the default)."""
        assert_equivalent(make_delay_sweep_spec(delay, "jitsim_delay"))

    @pytest.mark.parametrize("strategy", FUZZ_STRATEGIES)
    def test_every_estimate_strategy_agrees(self, strategy):
        """All oracle strategies -- incl. 'uniform', which blocks fusion and
        must still be bit-identical through the inherited vec path."""
        spec = ScenarioSpec(
            label=f"jitsim_strategy/{strategy}",
            topology=ComponentSpec("ring", {"n": 6}),
            drift=ComponentSpec("two_group", {"swap_period": 5.0}),
            algorithm=ComponentSpec("aopt", {"global_skew_bound": 25.0}),
            params={"rho": 0.015, "mu": 0.1},
            edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
            sim={
                "dt": 0.1,
                "duration": 10.0,
                "sample_interval": 1.0,
                "estimate_strategy": strategy,
            },
            initial_ramp_per_edge=1.0,
        )
        assert_equivalent(spec)


class TestBatchedEquivalence:
    """A heterogeneous lockstep batch must match per-run execution exactly."""

    def test_mixed_topology_batch_is_bit_identical(self):
        specs = [
            scenario(
                "end_to_end_insertion",
                n=5,
                insertion_time=5.0,
                sim={"duration": 30.0},
                backend="jit",
            ),
            scenario(
                "star_hub_failover",
                n=6,
                failover_time=8.0,
                duration=30.0,
                backend="jit",
            ),
            scenario("ring_sinusoidal_drift", n=7, duration=30.0, backend="jit"),
        ]
        singles = [execute_spec(spec) for spec in specs]
        batched = execute_specs_batched(specs)
        for single, batch in zip(singles, batched):
            assert single["trace"] == batch["trace"]
            assert single["summary"] == batch["summary"]
            assert single["meta"] == batch["meta"]

    def test_batched_jit_matches_reference(self):
        specs = [
            scenario("line_scaling", n=n, sim={"duration": 15.0}, backend="jit")
            for n in (4, 6)
        ]
        batched = execute_specs_batched(specs)
        for spec, payload in zip(specs, batched):
            reference = execute_spec(spec.with_backend("reference"))
            assert reference["trace"] == payload["trace"]
            assert reference["summary"] == payload["summary"]
