"""Tests for repro.lower_bounds."""

import math

import pytest

from repro.lower_bounds import analytic, insertion_bound, shifting
from repro.network.edge import EdgeParams
from repro.sim.delay import DirectionalDelay
from repro.sim.drift import RampAdversary, TwoGroupAdversary


class TestAnalyticBounds:
    def test_global_skew_lower_bound(self):
        assert analytic.global_skew_lower_bound([1.0] * 10) == 5.0

    def test_global_skew_lower_bound_rejects_negative(self):
        with pytest.raises(ValueError):
            analytic.global_skew_lower_bound([-1.0])

    def test_local_skew_base(self, params):
        base = analytic.local_skew_base(params)
        assert base == pytest.approx(
            min(1 / params.rho, (params.beta - params.alpha) / (params.alpha * params.rho))
        )
        assert base > 1.0

    def test_local_skew_lower_bound_grows_with_diameter(self, params):
        assert analytic.local_skew_lower_bound(1000.0, params) > analytic.local_skew_lower_bound(
            10.0, params
        )

    def test_local_skew_lower_bound_small_diameter(self, params):
        assert analytic.local_skew_lower_bound(1.0, params) == 0.0

    def test_local_skew_lower_bound_is_logarithmic(self, params):
        # Doubling the diameter adds a constant, as log would.
        d1 = analytic.local_skew_lower_bound(100.0, params)
        d2 = analytic.local_skew_lower_bound(200.0, params)
        d3 = analytic.local_skew_lower_bound(400.0, params)
        assert d2 - d1 == pytest.approx(d3 - d2, rel=1e-6)

    def test_stabilization_time_lower_bound_linear_in_diameter(self, params):
        small = analytic.stabilization_time_lower_bound(10.0, params)
        large = analytic.stabilization_time_lower_bound(20.0, params)
        assert large == pytest.approx(2 * small)

    def test_stabilization_time_constant_range(self, params):
        with pytest.raises(ValueError):
            analytic.stabilization_time_lower_bound(10.0, params, c1=0.5)

    def test_insertion_skew_lower_bound(self):
        value = analytic.insertion_skew_lower_bound(64)
        assert value > 64 / 2 - 2
        assert analytic.insertion_skew_lower_bound(2) == 0.0

    def test_insertion_skew_constant_range(self):
        with pytest.raises(ValueError):
            analytic.insertion_skew_lower_bound(64, c1=0.2)

    def test_drift_accumulation(self):
        assert analytic.drift_accumulation(0.01, 100.0) == pytest.approx(2.0)

    def test_gradient_trade_off_bound(self):
        assert analytic.gradient_trade_off_bound(2.0, 100.0) == 50.0
        with pytest.raises(ValueError):
            analytic.gradient_trade_off_bound(0.0, 100.0)


class TestShiftingScenario:
    def test_build(self, params):
        scenario = shifting.build(8, params)
        assert scenario.n == 8
        assert scenario.endpoints == (0, 7)
        assert isinstance(scenario.drift, RampAdversary)
        assert isinstance(scenario.delay, DirectionalDelay)
        assert scenario.expected_lower_bound == pytest.approx(7 / 2)
        assert scenario.graph.node_count == 8

    def test_build_with_custom_edges(self, params):
        scenario = shifting.build(5, params, edge_params=EdgeParams(epsilon=2.0))
        assert scenario.expected_lower_bound == pytest.approx(4.0)

    def test_build_validation(self, params):
        with pytest.raises(ValueError):
            shifting.build(1, params)

    def test_minimum_time_to_accumulate(self, params):
        assert shifting.minimum_time_to_accumulate(2.0, params) == pytest.approx(
            2.0 / (2 * params.rho)
        )
        with pytest.raises(ValueError):
            shifting.minimum_time_to_accumulate(-1.0, params)


class TestInsertionBoundScenario:
    def test_build(self, params):
        scenario = insertion_bound.build(16, params, skew_buildup_time=100.0)
        assert scenario.n == 16
        assert scenario.new_edge == (0, 16)
        assert scenario.insertion_time == pytest.approx(100.0)
        assert isinstance(scenario.drift, TwoGroupAdversary)
        assert scenario.skew_lower_bound > 0
        assert scenario.persistence_lower_bound > 0

    def test_inner_pair_inside_line(self, params):
        scenario = insertion_bound.build(32, params, skew_buildup_time=50.0)
        u, v = scenario.inner_pair
        assert 0 < u < v < 32

    def test_persistence_scales_with_n(self, params):
        small = insertion_bound.build(16, params, skew_buildup_time=50.0)
        large = insertion_bound.build(32, params, skew_buildup_time=50.0)
        assert large.persistence_lower_bound == pytest.approx(
            2 * small.persistence_lower_bound
        )

    def test_validation(self, params):
        with pytest.raises(ValueError):
            insertion_bound.build(2, params, skew_buildup_time=50.0)
        with pytest.raises(ValueError):
            insertion_bound.build(16, params, skew_buildup_time=0.0)
