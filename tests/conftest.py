"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import pytest

from repro.core.interfaces import NodeAPI
from repro.core.parameters import Parameters
from repro.experiments.spec import ComponentSpec, ScenarioSpec
from repro.network.edge import EdgeParams, NodeId
from repro.network import topology


# ----------------------------------------------------------------------
# Shared spec generators for the differential (equivalence) suites
# ----------------------------------------------------------------------
#: The named scenarios with overrides that shorten the runs while keeping
#: every mechanism (churn, failover, insertion handshake, drift variety,
#: broadcast estimates) in play.  Used by the fastsim, vecsim and
#: streaming-metrics differential suites.
EQUIVALENCE_SCENARIO_OVERRIDES = {
    "line_scaling": {"n": 6, "sim": {"duration": 30.0}},
    "end_to_end_insertion": {
        "n": 6,
        "insertion_time": 10.0,
        "sim": {"duration": 60.0},
    },
    "grid_periodic_churn": {"rows": 3, "cols": 3, "duration": 60.0},
    "random_connected_sliding_window": {"n": 8, "duration": 60.0},
    "star_hub_failover": {"n": 8, "failover_time": 15.0, "duration": 40.0},
    "ring_sinusoidal_drift": {"n": 8, "duration": 30.0},
    "quickstart_line": {"n": 6, "duration": 40.0},
    "line_broadcast": {"n": 6, "sim": {"duration": 30.0}},
    "random_broadcast_delay_storm": {"n": 8, "duration": 60.0},
    "grid_broadcast_partition": {
        "rows": 3,
        "cols": 3,
        "split_time": 10.0,
        "heal_time": 25.0,
        "duration": 50.0,
    },
}


def builtin_scenario_names() -> List[str]:
    """Registry scenario names minus the chaos pack.

    The chaos scenario files register at import time but get their own
    differential and smoke coverage in tests/test_chaos_scenarios.py --
    several exist precisely to exercise the reference fallback, so the
    backend equivalence suites must not enumerate them.
    """
    from repro.experiments import registry

    return [
        name
        for name in registry.SCENARIOS.names()
        if not hasattr(registry.SCENARIOS.get(name), "chaos_family")
    ]

#: Axes of the randomized fuzz-spec generator.
FUZZ_TOPOLOGIES = [
    ("line", lambda rng: {"n": rng.randint(3, 8)}),
    ("ring", lambda rng: {"n": rng.randint(3, 8)}),
    ("star", lambda rng: {"n": rng.randint(3, 8)}),
    ("complete", lambda rng: {"n": rng.randint(3, 6)}),
    ("grid", lambda rng: {"rows": rng.randint(2, 3), "cols": rng.randint(2, 3)}),
    ("binary_tree", lambda rng: {"depth": rng.randint(2, 3)}),
    ("random_tree", lambda rng: {"n": rng.randint(4, 8)}),
    (
        "random_connected",
        lambda rng: {"n": rng.randint(4, 8), "extra_edge_probability": 0.2},
    ),
]
FUZZ_DRIFTS = [
    None,
    ("none", {}),
    ("two_group", {"swap_period": 7.0}),
    ("sinusoidal", {"period": 11.0}),
    ("random_constant", {}),
    ("random_walk", {"period": 3.0}),
    ("ramp", {"reverse_period": 9.0}),
]
FUZZ_DELAYS = [
    None,
    ("zero", {}),
    ("fixed_fraction", {"fraction": 0.3}),
    ("uniform", {"low_fraction": 0.1, "high_fraction": 0.9}),
    ("directional", {}),
]
FUZZ_STRATEGIES = ["zero", "uniform", "underestimate", "overestimate", "toward_observer"]


def make_fuzz_spec(rng, case: int, label_prefix: str) -> ScenarioSpec:
    """One randomized spec over topologies x drifts x delays x strategies.

    Shared by every differential suite (fastsim, vecsim, streaming metrics);
    each suite passes its own seeded ``rng`` so their fuzz populations stay
    distinct but reproducible.
    """
    topology_name, args_fn = FUZZ_TOPOLOGIES[rng.randrange(len(FUZZ_TOPOLOGIES))]
    topology_args = args_fn(rng)
    drift = FUZZ_DRIFTS[rng.randrange(len(FUZZ_DRIFTS))]
    delay = FUZZ_DELAYS[rng.randrange(len(FUZZ_DELAYS))]
    strategy = FUZZ_STRATEGIES[rng.randrange(len(FUZZ_STRATEGIES))]
    sim = {
        "dt": rng.choice([0.05, 0.1]),
        "duration": rng.choice([8.0, 12.0]),
        "sample_interval": 1.0,
        "estimate_strategy": strategy,
    }
    ramp = rng.choice([None, 0.5, 2.0])
    return ScenarioSpec(
        label=f"{label_prefix}/{case}/{topology_name}/{strategy}",
        topology=ComponentSpec(topology_name, topology_args),
        drift=ComponentSpec(*drift) if drift else None,
        delay=ComponentSpec(*delay) if delay else None,
        algorithm=ComponentSpec("aopt", {"global_skew_bound": 25.0}),
        params={"rho": 0.015, "mu": 0.1},
        edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
        sim=sim,
        initial_ramp_per_edge=ramp,
    )


def make_delay_sweep_spec(delay, label_prefix: str) -> ScenarioSpec:
    """Deterministic line spec exercising one delay model (or the default)."""
    return ScenarioSpec(
        label=f"{label_prefix}/{delay[0] if delay else 'default'}",
        topology=ComponentSpec("line", {"n": 5}),
        drift=ComponentSpec("two_group", {"swap_period": 5.0}),
        delay=ComponentSpec(*delay) if delay else None,
        algorithm=ComponentSpec("aopt", {"global_skew_bound": 25.0}),
        params={"rho": 0.015, "mu": 0.1},
        edge={"epsilon": 1.0, "tau": 0.5, "delay": 2.0},
        sim={
            "dt": 0.1,
            "duration": 10.0,
            "sample_interval": 1.0,
            "estimate_strategy": "toward_observer",
        },
        initial_ramp_per_edge=1.0,
    )


@pytest.fixture
def params() -> Parameters:
    """Standard parameters used across the tests (sigma ~ 4.95 >= 3)."""
    return Parameters(rho=0.01, mu=0.1)


@pytest.fixture
def tight_params() -> Parameters:
    """Low-drift parameters (large sigma)."""
    return Parameters(rho=1e-3, mu=0.1)


@pytest.fixture
def edge_params() -> EdgeParams:
    return EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)


@pytest.fixture
def line5(edge_params) -> "DynamicGraph":
    return topology.line(5, edge_params)


class FakeNodeAPI(NodeAPI):
    """A scriptable NodeAPI for unit-testing algorithms without an engine."""

    def __init__(
        self,
        node_id: NodeId,
        *,
        edge_params: Optional[EdgeParams] = None,
    ):
        self._node_id = node_id
        self.time = 0.0
        self.hardware_value = 0.0
        self.logical_value = 0.0
        self.neighbor_set: Set[NodeId] = set()
        self.estimates: Dict[NodeId, float] = {}
        self.errors: Dict[NodeId, float] = {}
        self.edge_parameters: Dict[NodeId, EdgeParams] = {}
        self.default_edge_params = edge_params or EdgeParams()
        self.sent: List[Tuple[NodeId, object]] = []
        self.scheduled: List[Tuple[float, Callable[[float], None]]] = []

    # -- NodeAPI -------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def now(self) -> float:
        return self.time

    def hardware(self) -> float:
        return self.hardware_value

    def logical(self) -> float:
        return self.logical_value

    def neighbors(self) -> Set[NodeId]:
        return set(self.neighbor_set)

    def estimate(self, neighbor: NodeId) -> Optional[float]:
        return self.estimates.get(neighbor)

    def estimate_error(self, neighbor: NodeId) -> float:
        return self.errors.get(neighbor, self.edge_params(neighbor).epsilon)

    def edge_params(self, neighbor: NodeId) -> EdgeParams:
        return self.edge_parameters.get(neighbor, self.default_edge_params)

    def send(self, neighbor: NodeId, payload: object) -> bool:
        if neighbor not in self.neighbor_set:
            return False
        self.sent.append((neighbor, payload))
        return True

    def schedule(self, delay: float, callback: Callable[[float], None]) -> None:
        self.scheduled.append((self.time + delay, callback))

    # -- test helpers ---------------------------------------------------
    def advance(self, dt: float, rate: float = 1.0, multiplier: float = 1.0) -> None:
        """Advance the fake clocks by ``dt`` at the given rates."""
        self.time += dt
        self.hardware_value += rate * dt
        self.logical_value += rate * multiplier * dt

    def fire_due(self, up_to: float) -> int:
        """Fire scheduled callbacks whose time has been reached."""
        due = [(t, cb) for (t, cb) in self.scheduled if t <= up_to + 1e-12]
        self.scheduled = [(t, cb) for (t, cb) in self.scheduled if t > up_to + 1e-12]
        for t, cb in sorted(due, key=lambda item: item[0]):
            cb(t)
        return len(due)


@pytest.fixture
def fake_api() -> FakeNodeAPI:
    return FakeNodeAPI(0)
