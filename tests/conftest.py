"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import pytest

from repro.core.interfaces import NodeAPI
from repro.core.parameters import Parameters
from repro.network.edge import EdgeParams, NodeId
from repro.network import topology


@pytest.fixture
def params() -> Parameters:
    """Standard parameters used across the tests (sigma ~ 4.95 >= 3)."""
    return Parameters(rho=0.01, mu=0.1)


@pytest.fixture
def tight_params() -> Parameters:
    """Low-drift parameters (large sigma)."""
    return Parameters(rho=1e-3, mu=0.1)


@pytest.fixture
def edge_params() -> EdgeParams:
    return EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)


@pytest.fixture
def line5(edge_params) -> "DynamicGraph":
    return topology.line(5, edge_params)


class FakeNodeAPI(NodeAPI):
    """A scriptable NodeAPI for unit-testing algorithms without an engine."""

    def __init__(
        self,
        node_id: NodeId,
        *,
        edge_params: Optional[EdgeParams] = None,
    ):
        self._node_id = node_id
        self.time = 0.0
        self.hardware_value = 0.0
        self.logical_value = 0.0
        self.neighbor_set: Set[NodeId] = set()
        self.estimates: Dict[NodeId, float] = {}
        self.errors: Dict[NodeId, float] = {}
        self.edge_parameters: Dict[NodeId, EdgeParams] = {}
        self.default_edge_params = edge_params or EdgeParams()
        self.sent: List[Tuple[NodeId, object]] = []
        self.scheduled: List[Tuple[float, Callable[[float], None]]] = []

    # -- NodeAPI -------------------------------------------------------
    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def now(self) -> float:
        return self.time

    def hardware(self) -> float:
        return self.hardware_value

    def logical(self) -> float:
        return self.logical_value

    def neighbors(self) -> Set[NodeId]:
        return set(self.neighbor_set)

    def estimate(self, neighbor: NodeId) -> Optional[float]:
        return self.estimates.get(neighbor)

    def estimate_error(self, neighbor: NodeId) -> float:
        return self.errors.get(neighbor, self.edge_params(neighbor).epsilon)

    def edge_params(self, neighbor: NodeId) -> EdgeParams:
        return self.edge_parameters.get(neighbor, self.default_edge_params)

    def send(self, neighbor: NodeId, payload: object) -> bool:
        if neighbor not in self.neighbor_set:
            return False
        self.sent.append((neighbor, payload))
        return True

    def schedule(self, delay: float, callback: Callable[[float], None]) -> None:
        self.scheduled.append((self.time + delay, callback))

    # -- test helpers ---------------------------------------------------
    def advance(self, dt: float, rate: float = 1.0, multiplier: float = 1.0) -> None:
        """Advance the fake clocks by ``dt`` at the given rates."""
        self.time += dt
        self.hardware_value += rate * dt
        self.logical_value += rate * multiplier * dt

    def fire_due(self, up_to: float) -> int:
        """Fire scheduled callbacks whose time has been reached."""
        due = [(t, cb) for (t, cb) in self.scheduled if t <= up_to + 1e-12]
        self.scheduled = [(t, cb) for (t, cb) in self.scheduled if t > up_to + 1e-12]
        for t, cb in sorted(due, key=lambda item: item[0]):
            cb(t)
        return len(due)


@pytest.fixture
def fake_api() -> FakeNodeAPI:
    return FakeNodeAPI(0)
