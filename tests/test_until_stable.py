"""``until_stable`` early exit: truncation semantics and cache isolation.

The load-bearing guarantee: a truncated run's observer report is
*bit-identical* to the full run's report restricted to the same sample
window.  Watchdogs only fire at sample-record instants and the engines only
check the stop flag right after recording, so the truncated run IS a prefix
of the full run -- replaying the full trace up to the stop time through a
fresh pipeline must reproduce the truncated report exactly, on every
backend.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentRunner, execute_spec, registry, scenario
from repro.experiments.executor import ResultCache
from repro.experiments.results import build_run_pipeline, trace_from_payload
from repro.fastsim.backend import backend_available

BACKENDS = ["reference", "fast"] + (["vec"] if backend_available("vec") else [])

#: line_scaling n=6 at default duration: converges around a third of the
#: way in, so the early exit is a real (~3x) truncation.
def stable_spec(backend="reference"):
    return scenario("line_scaling", n=6, until_stable=True, backend=backend)


class TestSpecSurface:
    def test_flag_round_trips_and_validates(self):
        spec = stable_spec()
        assert spec.until_stable
        assert spec.to_dict()["until_stable"] is True
        clone = type(spec).from_dict(spec.to_dict())
        assert clone.until_stable
        assert not scenario("line_scaling", n=6).until_stable
        with pytest.raises(Exception):
            scenario("line_scaling", n=6, until_stable="yes")

    def test_with_until_stable_helper(self):
        spec = scenario("line_scaling", n=6)
        assert spec.with_until_stable().until_stable
        assert not spec.with_until_stable(False).until_stable

    def test_content_hash_excludes_until_stable(self):
        # until_stable changes *how long* we observe, not *what* we run:
        # it is an observation detail, outside the canonical identity.
        full = scenario("line_scaling", n=6)
        assert stable_spec().content_hash() == full.content_hash()

    def test_cache_key_gets_stable_suffix(self, tmp_path):
        cache = ResultCache(tmp_path)
        full = scenario("line_scaling", n=6)
        assert cache.key_for(stable_spec()) == cache.key_for(full) + ".stable"

    def test_cache_isolation_between_full_and_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = scenario("line_scaling", n=4, sim={"duration": 5.0})
        cache.store(spec, execute_spec(spec))
        assert cache.load(spec) is not None
        assert cache.load(spec.with_until_stable()) is None


class TestEarlyExit:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_stops_early_with_fewer_samples(self, backend):
        full = execute_spec(scenario("line_scaling", n=6, backend=backend))
        truncated = execute_spec(stable_spec(backend))
        assert truncated["stopped_early"] is True
        assert full["stopped_early"] is False
        assert (
            truncated["observers"]["sample_count"]
            < full["observers"]["sample_count"] / 2
        )
        conv = truncated["observers"]["observers"]["watchdog_convergence"]
        assert conv["fired"] == 1
        # The last recorded sample is the one that tripped the stop.
        assert truncated["trace"]["samples"][-1]["time"] == conv["first_fired"]

    def test_zero_initial_skew_runs_to_full_duration(self):
        # Nothing to converge: the armed watchdog never fires and the run
        # must quietly complete instead of hanging or stopping at t=0.
        spec = scenario("quickstart_line", n=4, until_stable=True)
        payload = execute_spec(spec)
        assert payload["stopped_early"] is False

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_truncated_report_is_bit_identical_to_restricted_full_report(
        self, backend
    ):
        """The acceptance criterion: truncated == full restricted to the
        same window, compared as serialised JSON (bit-for-bit)."""
        truncated = execute_spec(stable_spec(backend))
        stop_time = truncated["observers"]["observers"]["watchdog_convergence"][
            "first_fired"
        ]
        full = execute_spec(scenario("line_scaling", n=6, backend=backend))
        trace = trace_from_payload(full["trace"])

        spec = stable_spec(backend)
        built = registry.build_scenario(spec)
        pipeline = build_run_pipeline(
            spec,
            graph=built.graph,
            base_edges=built.base_edges,
            config=built.config,
            meta=built.meta,
            global_skew_bound=built.global_skew_bound,
        )
        for sample in trace:
            if sample.time <= stop_time + 1e-12:
                pipeline.observe_sample(sample)
        restricted = pipeline.finalize().to_payload()
        assert json.dumps(restricted, sort_keys=True) == json.dumps(
            truncated["observers"], sort_keys=True
        )

    def test_truncated_traces_identical_across_backends(self):
        reference = execute_spec(stable_spec("reference"))
        for backend in BACKENDS[1:]:
            other = execute_spec(stable_spec(backend))
            assert other["trace"] == reference["trace"], backend
            assert other["summary"] == reference["summary"], backend
            assert other["observers"] == reference["observers"], backend

    def test_insertion_scenario_stops_at_stabilization(self):
        spec = scenario(
            "end_to_end_insertion", n=6, insertion_time=10.0, until_stable=True
        )
        payload = execute_spec(spec)
        assert payload["stopped_early"] is True
        stab = payload["observers"]["observers"]["watchdog_stabilization"]
        assert stab["fired"] == 1
        assert payload["trace"]["samples"][-1]["time"] == stab["first_fired"]


class TestSweepIntegration:
    def test_runner_caches_stable_runs_separately(self, tmp_path):
        runner = ExperimentRunner(tmp_path)
        spec = scenario("line_scaling", n=4, sim={"duration": 40.0})
        (full_run,), _ = runner.run_all([spec])
        (stable_run,), stats = runner.run_all([spec.with_until_stable()])
        assert stats.cached == 0  # the full result must not shadow it
        assert stable_run.stopped_early or (
            # n=4 at 40s may or may not converge; either way the payloads
            # are cached under distinct keys.
            True
        )
        (again,), stats2 = runner.run_all([spec.with_until_stable()])
        assert stats2.cached == 1
        assert again.summary.to_dict() == stable_run.summary.to_dict()

    def test_stopped_early_survives_the_cache(self, tmp_path):
        runner = ExperimentRunner(tmp_path)
        spec = stable_spec()
        (live,), _ = runner.run_all([spec])
        (cached,), stats = runner.run_all([spec])
        assert stats.cached == 1
        assert live.stopped_early is True
        assert cached.stopped_early is True
