"""Tests for repro.sim.runner."""

import pytest

from repro.baselines.hardware_only import hardware_only_factory
from repro.core.algorithm import AOPT
from repro.core import insertion as insertion_mod
from repro.network import topology
from repro.network.edge import EdgeParams
from repro.sim.runner import (
    RunnerError,
    SimulationConfig,
    build_engine,
    default_aopt_config,
    minimum_kappa,
    run_aopt,
    run_simulation,
)


class TestSimulationConfig:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.dt > 0
        assert config.estimate_mode == "oracle"

    def test_validation(self):
        with pytest.raises(RunnerError):
            SimulationConfig(dt=0.0)
        with pytest.raises(RunnerError):
            SimulationConfig(duration=-1.0)
        with pytest.raises(RunnerError):
            SimulationConfig(sample_interval=0.0)
        with pytest.raises(RunnerError):
            SimulationConfig(broadcast_interval=0.0)
        with pytest.raises(RunnerError):
            SimulationConfig(estimate_mode="telepathy")


class TestHelpers:
    def test_minimum_kappa_uses_edge_params(self, params):
        graph = topology.line(4, EdgeParams(epsilon=2.0, tau=0.5))
        graph.set_edge_params(0, 1, EdgeParams(epsilon=0.5, tau=0.1))
        value = minimum_kappa(graph, params)
        assert value == pytest.approx(params.kappa_for(0.5, 0.1))

    def test_default_aopt_config_derives_bound_and_levels(self, params):
        graph = topology.line(6)
        config = SimulationConfig(params=params)
        aopt_config = default_aopt_config(graph, config)
        assert aopt_config.max_level >= 1
        assert aopt_config.global_skew.value(0.0) > 0

    def test_default_aopt_config_accepts_overrides(self, params):
        graph = topology.line(6)
        config = SimulationConfig(params=params)
        aopt_config = default_aopt_config(
            graph,
            config,
            global_skew_bound=123.0,
            insertion_duration=insertion_mod.scaled_insertion_duration(0.1),
            immediate_insertion=True,
        )
        assert aopt_config.global_skew.value(0.0) == 123.0
        assert aopt_config.immediate_insertion


class TestRunning:
    def test_build_engine_oracle_mode(self, params):
        graph = topology.line(3)
        config = SimulationConfig(params=params, dt=0.1, duration=5.0)
        engine = build_engine(graph, hardware_only_factory(), config)
        engine.run(1.0)
        assert engine.time == pytest.approx(1.0)

    def test_run_simulation_returns_trace_and_engine(self, params):
        graph = topology.line(3)
        config = SimulationConfig(params=params, dt=0.1, duration=5.0)
        result = run_simulation(graph, hardware_only_factory(), config)
        assert result.trace.final().time == pytest.approx(5.0)
        assert result.engine.time == pytest.approx(5.0)

    def test_run_aopt_oracle(self, params):
        graph = topology.line(4)
        config = SimulationConfig(params=params, dt=0.1, duration=5.0)
        result = run_aopt(graph, config)
        assert isinstance(result.engine.algorithm(0), AOPT)
        assert result.trace.max_global_skew() < 1.0

    def test_run_aopt_broadcast_mode(self, params):
        graph = topology.line(3)
        config = SimulationConfig(
            params=params, dt=0.1, duration=5.0, estimate_mode="broadcast"
        )
        result = run_aopt(graph, config)
        assert result.engine.transport.sent_count > 0

    def test_deterministic_with_seeds(self, params):
        graph = topology.line(4)

        def run_once():
            config = SimulationConfig(
                params=params,
                dt=0.1,
                duration=10.0,
                estimate_strategy="uniform",
                estimate_seed=7,
                delay_seed=11,
            )
            return run_aopt(graph, config).trace.final().logical

        assert run_once() == run_once()
