"""Tests for repro.sim.drift."""

import pytest

from repro.sim.drift import (
    ConstantDrift,
    DriftError,
    NoDrift,
    RampAdversary,
    RandomConstantDrift,
    RandomWalkDrift,
    SinusoidalDrift,
    SurpriseSwapAdversary,
    TwoGroupAdversary,
    half_split,
)

RHO = 0.01
NODES = list(range(8))


def assert_within_envelope(model, nodes=NODES, times=(0.0, 1.0, 7.3, 100.0)):
    for node in nodes:
        for t in times:
            rate = model.rate(node, t)
            assert 1 - RHO - 1e-12 <= rate <= 1 + RHO + 1e-12


class TestBasics:
    def test_no_drift(self):
        model = NoDrift(RHO)
        assert model.rate(0, 5.0) == 1.0

    def test_bad_rho_rejected(self):
        with pytest.raises(DriftError):
            NoDrift(1.5)

    def test_clamp(self):
        model = NoDrift(RHO)
        assert model.clamp(2.0) == 1 + RHO
        assert model.clamp(0.0) == 1 - RHO

    def test_constant_drift(self):
        model = ConstantDrift(RHO, {0: RHO, 1: -RHO})
        assert model.rate(0, 0.0) == 1 + RHO
        assert model.rate(1, 0.0) == 1 - RHO
        assert model.rate(5, 0.0) == 1.0

    def test_constant_drift_rejects_excessive_offset(self):
        with pytest.raises(DriftError):
            ConstantDrift(RHO, {0: 2 * RHO})

    def test_random_constant_within_envelope(self):
        assert_within_envelope(RandomConstantDrift(RHO, NODES, seed=1))

    def test_random_constant_deterministic(self):
        a = RandomConstantDrift(RHO, NODES, seed=5)
        b = RandomConstantDrift(RHO, NODES, seed=5)
        assert all(a.rate(n, 0.0) == b.rate(n, 0.0) for n in NODES)


class TestRandomWalk:
    def test_within_envelope(self):
        assert_within_envelope(RandomWalkDrift(RHO, NODES, period=1.0, seed=2))

    def test_rates_change_over_epochs(self):
        model = RandomWalkDrift(RHO, NODES, period=1.0, seed=3)
        early = model.rate(0, 0.5)
        later = model.rate(0, 50.5)
        assert early != later or any(
            model.rate(n, 0.5) != model.rate(n, 50.5) for n in NODES
        )

    def test_bad_period_rejected(self):
        with pytest.raises(DriftError):
            RandomWalkDrift(RHO, NODES, period=0.0)


class TestTwoGroup:
    def test_fast_and_slow_groups(self):
        model = TwoGroupAdversary(RHO, [0, 1], [2, 3])
        assert model.rate(0, 0.0) == 1 + RHO
        assert model.rate(2, 0.0) == 1 - RHO
        assert model.rate(7, 0.0) == 1.0

    def test_overlap_rejected(self):
        with pytest.raises(DriftError):
            TwoGroupAdversary(RHO, [0, 1], [1, 2])

    def test_swapping(self):
        model = TwoGroupAdversary(RHO, [0], [1], swap_period=10.0)
        assert model.rate(0, 5.0) == 1 + RHO
        assert model.rate(0, 15.0) == 1 - RHO
        assert model.rate(1, 15.0) == 1 + RHO

    def test_bad_swap_period(self):
        with pytest.raises(DriftError):
            TwoGroupAdversary(RHO, [0], [1], swap_period=0.0)

    def test_half_split(self):
        first, second = half_split([0, 1, 2, 3, 4])
        assert first == [0, 1]
        assert second == [2, 3, 4]


class TestRamp:
    def test_extremes(self):
        model = RampAdversary(RHO, NODES)
        assert model.rate(NODES[0], 0.0) == pytest.approx(1 - RHO)
        assert model.rate(NODES[-1], 0.0) == pytest.approx(1 + RHO)

    def test_monotone_along_order(self):
        model = RampAdversary(RHO, NODES)
        rates = [model.rate(n, 0.0) for n in NODES]
        assert rates == sorted(rates)

    def test_unknown_node_neutral(self):
        model = RampAdversary(RHO, NODES)
        assert model.rate(99, 0.0) == 1.0

    def test_single_node(self):
        model = RampAdversary(RHO, [0])
        assert model.rate(0, 0.0) == 1.0

    def test_reversal(self):
        model = RampAdversary(RHO, NODES, reverse_period=10.0)
        assert model.rate(NODES[0], 5.0) == pytest.approx(1 - RHO)
        assert model.rate(NODES[0], 15.0) == pytest.approx(1 + RHO)

    def test_empty_nodes_rejected(self):
        with pytest.raises(DriftError):
            RampAdversary(RHO, [])

    def test_within_envelope(self):
        assert_within_envelope(RampAdversary(RHO, NODES))


class TestCompositeModels:
    def test_surprise_swap(self):
        model = SurpriseSwapAdversary(
            RHO, NoDrift(RHO), TwoGroupAdversary(RHO, [0], [1]), switch_time=10.0
        )
        assert model.rate(0, 5.0) == 1.0
        assert model.rate(0, 15.0) == 1 + RHO

    def test_surprise_swap_negative_time_rejected(self):
        with pytest.raises(DriftError):
            SurpriseSwapAdversary(RHO, NoDrift(RHO), NoDrift(RHO), switch_time=-1.0)

    def test_sinusoidal_within_envelope(self):
        assert_within_envelope(SinusoidalDrift(RHO, period=30.0))

    def test_sinusoidal_bad_period(self):
        with pytest.raises(DriftError):
            SinusoidalDrift(RHO, period=0.0)
