"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clocks import HardwareClock, LogicalClock
from repro.core.insertion import compute_insertion_times
from repro.core.max_estimate import MaxEstimateTracker
from repro.core.neighbor_sets import NeighborLevels
from repro.core.parameters import ParameterError, Parameters
from repro.core.triggers import NeighborView, fast_trigger_level, slow_trigger_level
from repro.analysis import legality
from repro.analysis.report import Table
from repro.network.edge import EdgeKey

# Parameter strategies ------------------------------------------------------

valid_rho = st.floats(min_value=1e-5, max_value=0.02)
valid_mu = st.floats(min_value=0.05, max_value=0.1)


def make_params(rho, mu):
    return Parameters(rho=rho, mu=mu)


class TestParameterProperties:
    @given(rho=valid_rho, mu=valid_mu)
    @settings(max_examples=50, deadline=None)
    def test_sigma_exceeds_one_and_envelope_orders(self, rho, mu):
        params = make_params(rho, mu)
        if not params.is_valid():
            return
        assert params.sigma > 1.0
        assert params.alpha < params.beta
        assert params.self_stabilization_rate > 0

    @given(
        rho=valid_rho,
        mu=valid_mu,
        epsilon=st.floats(min_value=0.01, max_value=10.0),
        tau=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_kappa_and_delta_satisfy_constraints(self, rho, mu, epsilon, tau):
        params = make_params(rho, mu)
        if not params.is_valid():
            return
        kappa = params.kappa_for(epsilon, tau)
        assert kappa > 4 * (epsilon + mu * tau)
        delta = params.delta_for(kappa, epsilon, tau)
        assert 0 < delta < kappa / 2 - 2 * epsilon - 2 * mu * tau

    @given(
        rho=valid_rho,
        mu=valid_mu,
        bound=st.floats(min_value=1.0, max_value=1e4),
        distance=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_gradient_bound_monotone_in_distance(self, rho, mu, bound, distance):
        params = make_params(rho, mu)
        if not params.is_valid():
            return
        # Monotonicity under doubling needs sigma >= sqrt(2): doubling the
        # weight lowers the level s(p) by at most ceil(log_sigma 2) <= 2,
        # which the factor-2 weight increase then dominates.  For sigma
        # arbitrarily close to 1 the (s(p)+1)*kappa_p bound genuinely dips
        # at level boundaries, so the property does not hold there.
        if params.sigma < math.sqrt(2.0):
            return
        shorter = params.gradient_skew_bound(distance, bound)
        longer = params.gradient_skew_bound(2 * distance, bound)
        assert longer >= shorter >= 0


class TestClockProperties:
    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=-1.0, max_value=1.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_logical_clock_monotone_and_within_envelope(self, steps):
        rho, mu = 0.01, 0.1
        hardware = HardwareClock(rho)
        logical = LogicalClock()
        elapsed = 0.0
        previous = 0.0
        for dt, drift_fraction, fast in steps:
            rate = 1.0 + drift_fraction * rho
            hardware.advance(dt, rate)
            logical.advance(dt, rate, 1.0 + mu if fast else 1.0)
            elapsed += dt
            assert logical.value >= previous - 1e-12
            previous = logical.value
        assert logical.value >= (1 - rho) * elapsed - 1e-9
        assert logical.value <= (1 + rho) * (1 + mu) * elapsed + 1e-9

    @given(
        increments=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=3.0),
                st.floats(min_value=0.0, max_value=3.3),
            ),
            min_size=1,
            max_size=40,
        ),
        remotes=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_max_estimate_at_least_own_clock(self, increments, remotes):
        tracker = MaxEstimateTracker(0.01)
        hardware = 0.0
        logical = 0.0
        for hardware_step, logical_step in increments:
            hardware += hardware_step
            logical += min(logical_step, hardware_step * 1.1)
            tracker.advance(hardware, logical)
            assert tracker.value >= logical - 1e-9
        for remote in remotes:
            before = tracker.value
            tracker.observe_remote(remote)
            assert tracker.value >= before


class TestNeighborLevelProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["discover", "promote", "remove", "full"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_subset_chain_always_holds(self, operations):
        levels = NeighborLevels(6)
        for op, neighbor, level in operations:
            if op == "discover":
                levels.discover(neighbor)
            elif op == "promote":
                if neighbor in levels:
                    levels.promote(neighbor, level)
            elif op == "remove":
                levels.remove(neighbor)
            else:
                levels.add_fully_inserted(neighbor)
            assert levels.subset_chain_holds()


class TestInsertionScheduleProperties:
    @given(
        anchor=st.floats(min_value=0.0, max_value=1e5),
        duration=st.floats(min_value=1.0, max_value=1e4),
        levels=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_schedule_structure(self, anchor, duration, levels):
        schedule = compute_insertion_times(
            anchor, duration, levels, neighbor=1, global_skew_estimate=10.0
        )
        assert schedule.anchor >= anchor - 1e-6
        assert schedule.anchor - anchor <= duration + 1e-6
        times = schedule.level_times
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))
        assert times[0] == pytest.approx(schedule.anchor)
        assert times[-1] <= schedule.anchor + duration + 1e-6


class TestTriggerProperties:
    @given(
        logical=st.floats(min_value=0.0, max_value=1000.0),
        offsets=st.lists(
            st.floats(min_value=-50.0, max_value=50.0), min_size=1, max_size=6
        ),
        levels=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_lemma_5_3_triggers_mutually_exclusive(self, logical, offsets, levels):
        params = Parameters(rho=0.01, mu=0.1)
        epsilon, tau = 1.0, 0.5
        kappa = params.kappa_for(epsilon, tau)
        delta = params.delta_for(kappa, epsilon, tau)
        views = [
            NeighborView(
                neighbor=i,
                estimate=max(0.0, logical + offset),
                kappa=kappa,
                epsilon=epsilon,
                tau=tau,
                delta=delta,
                level=level,
            )
            for i, (offset, level) in enumerate(zip(offsets, levels * len(offsets)))
        ]
        fast = fast_trigger_level(logical, views, params, max_level=4)
        slow = slow_trigger_level(logical, views, params, max_level=4)
        assert fast is None or slow is None


class TestLegalityProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=4, max_size=4
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_small_skews_always_legal(self, values):
        params = Parameters(rho=0.01, mu=0.1)
        logical = dict(enumerate(values))
        edges = [(0, 1, 20.0), (1, 2, 20.0), (2, 3, 20.0)]
        sequence = legality.gradient_sequence(100.0, params, 3)
        assert legality.is_legal(logical, {1: edges, 2: edges, 3: edges}, sequence)


class TestMiscProperties:
    @given(a=st.integers(min_value=0, max_value=100), b=st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_edge_key_symmetric(self, a, b):
        if a == b:
            with pytest.raises(ValueError):
                EdgeKey.of(a, b)
        else:
            assert EdgeKey.of(a, b) == EdgeKey.of(b, a)

    @given(
        rows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=10 ** 6), st.floats(allow_nan=False, allow_infinity=False)),
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_table_renders_any_rows(self, rows):
        table = Table("T", ["a", "b"])
        for a, b in rows:
            table.add_row(a, b)
        text = table.render()
        assert "T" in text
        assert len(text.splitlines()) == 4 + len(rows)
