"""Smoke tests for the python -m repro.experiments command line."""

import json

import pytest

from repro.experiments import cli


def run_cli(*argv):
    return cli.main(list(argv))


class TestList:
    def test_lists_scenarios_and_components(self, capsys):
        assert run_cli("list") == 0
        out = capsys.readouterr().out
        for required in (
            "grid_periodic_churn",
            "random_connected_sliding_window",
            "star_hub_failover",
            "ring_sinusoidal_drift",
            "line_scaling",
            "end_to_end_insertion",
        ):
            assert required in out
        assert "topologies:" in out
        assert "algorithms:" in out


class TestRun:
    def test_run_executes_then_serves_from_cache(self, tmp_path, capsys):
        args = (
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        assert run_cli(*args) == 0
        first = capsys.readouterr().out
        assert "quickstart_line/n=4/AOPT" in first
        assert "0 from cache, 1 executed" in first
        assert run_cli(*args) == 0
        second = capsys.readouterr().out
        assert "1 from cache, 0 executed" in second

    def test_run_json_output(self, tmp_path, capsys):
        assert (
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "n=4",
                "--set",
                "sim.duration=4.0",
                "--cache-dir",
                str(tmp_path),
                "--json",
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["total"] == 1
        (run,) = payload["runs"]
        assert run["summary"]["node_count"] == 4
        assert run["spec"]["topology"]["args"] == {"n": 4}

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        assert run_cli("run", "nope", "--cache-dir", str(tmp_path)) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweep:
    def sweep_args(self, tmp_path, *extra):
        return (
            "sweep",
            "line_scaling",
            "--grid",
            "n=4,5",
            "--grid",
            "algorithm=AOPT,MaxPropagation",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
            *extra,
        )

    def test_sweep_then_full_cache_hit(self, tmp_path, capsys):
        assert run_cli(*self.sweep_args(tmp_path)) == 0
        first = capsys.readouterr().out
        assert "4 spec(s): 0 from cache, 4 executed" in first
        assert run_cli(*self.sweep_args(tmp_path, "--workers", "2")) == 0
        second = capsys.readouterr().out
        assert "4 spec(s): 4 from cache, 0 executed" in second

    def test_sweep_requires_a_grid(self, tmp_path, capsys):
        assert run_cli("sweep", "line_scaling", "--cache-dir", str(tmp_path)) == 2
        assert "--grid" in capsys.readouterr().err

    def test_malformed_set_rejected(self, tmp_path, capsys):
        assert (
            run_cli("run", "quickstart_line", "--set", "oops", "--cache-dir", str(tmp_path))
            == 2
        )
        assert "key=value" in capsys.readouterr().err


class TestCacheCommand:
    def test_cache_listing_and_clear(self, tmp_path, capsys):
        run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        capsys.readouterr()
        assert run_cli("cache", "--cache-dir", str(tmp_path)) == 0
        assert "1 cache entries" in capsys.readouterr().out
        assert run_cli("cache", "--cache-dir", str(tmp_path), "--clear") == 0
        assert "removed 1" in capsys.readouterr().out
