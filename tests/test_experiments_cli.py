"""Smoke tests for the python -m repro.experiments command line."""

import json

import pytest

from repro.experiments import cli


def run_cli(*argv):
    return cli.main(list(argv))


class TestList:
    def test_lists_scenarios_and_components(self, capsys):
        assert run_cli("list") == 0
        out = capsys.readouterr().out
        for required in (
            "grid_periodic_churn",
            "random_connected_sliding_window",
            "star_hub_failover",
            "ring_sinusoidal_drift",
            "line_scaling",
            "end_to_end_insertion",
        ):
            assert required in out
        assert "topologies:" in out
        assert "algorithms:" in out


class TestRun:
    def test_run_executes_then_serves_from_cache(self, tmp_path, capsys):
        args = (
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        assert run_cli(*args) == 0
        first = capsys.readouterr().out
        assert "quickstart_line/n=4/AOPT" in first
        assert "0 from cache, 1 executed" in first
        assert run_cli(*args) == 0
        second = capsys.readouterr().out
        assert "1 from cache, 0 executed" in second

    def test_run_json_output(self, tmp_path, capsys):
        assert (
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "n=4",
                "--set",
                "sim.duration=4.0",
                "--cache-dir",
                str(tmp_path),
                "--json",
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["total"] == 1
        (run,) = payload["runs"]
        assert run["summary"]["node_count"] == 4
        assert run["spec"]["topology"]["args"] == {"n": 4}

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        assert run_cli("run", "nope", "--cache-dir", str(tmp_path)) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSweep:
    def sweep_args(self, tmp_path, *extra):
        return (
            "sweep",
            "line_scaling",
            "--grid",
            "n=4,5",
            "--grid",
            "algorithm=AOPT,MaxPropagation",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
            *extra,
        )

    def test_sweep_then_full_cache_hit(self, tmp_path, capsys):
        assert run_cli(*self.sweep_args(tmp_path)) == 0
        first = capsys.readouterr().out
        assert "4 spec(s): 0 from cache, 4 executed" in first
        assert run_cli(*self.sweep_args(tmp_path, "--workers", "2")) == 0
        second = capsys.readouterr().out
        assert "4 spec(s): 4 from cache, 0 executed" in second

    def test_sweep_requires_a_grid(self, tmp_path, capsys):
        assert run_cli("sweep", "line_scaling", "--cache-dir", str(tmp_path)) == 2
        assert "--grid" in capsys.readouterr().err

    def test_malformed_set_rejected(self, tmp_path, capsys):
        assert (
            run_cli("run", "quickstart_line", "--set", "oops", "--cache-dir", str(tmp_path))
            == 2
        )
        assert "key=value" in capsys.readouterr().err


class TestBackendSelection:
    def test_run_with_fast_backend_executes_and_caches_separately(
        self, tmp_path, capsys
    ):
        base = (
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        assert run_cli(*base, "--set", "backend=fast") == 0
        first = capsys.readouterr().out
        assert "0 from cache, 1 executed" in first
        # The reference run of the same scenario is a distinct cache entry.
        assert run_cli(*base) == 0
        assert "0 from cache, 1 executed" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.fast.json"))) == 1
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_unknown_backend_fails_cleanly(self, tmp_path, capsys):
        assert (
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "backend=warp",
                "--cache-dir",
                str(tmp_path),
            )
            == 2
        )
        assert "unknown backend" in capsys.readouterr().err

    def test_unsupported_fast_scenario_falls_back_to_reference(self, tmp_path, capsys):
        assert (
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "n=4",
                "--set",
                "sim.duration=2.0",
                "--set",
                "algorithm='MaxPropagation'",
                "--set",
                "backend=fast",
                "--cache-dir",
                str(tmp_path),
            )
            == 0
        )
        assert "fell back to reference" in capsys.readouterr().out

    def test_unsupported_fast_scenario_fails_cleanly_when_strict(self, tmp_path, capsys):
        assert (
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "n=4",
                "--set",
                "sim.duration=2.0",
                "--set",
                "algorithm='MaxPropagation'",
                "--set",
                "backend=fast",
                "--strict-backend",
                "--cache-dir",
                str(tmp_path),
            )
            == 2
        )
        assert "AOPT" in capsys.readouterr().err

    def test_list_mentions_backends(self, capsys):
        assert run_cli("list") == 0
        assert "backends:" in capsys.readouterr().out


class TestBench:
    def bench_args(self, *extra):
        return (
            "bench",
            "--sizes",
            "6",
            "--topologies",
            "line",
            "--duration",
            "2.0",
            *extra,
        )

    def test_bench_smoke_writes_json(self, tmp_path, capsys):
        output = tmp_path / "BENCH_fastsim.json"
        assert run_cli(*self.bench_args("--output", str(output))) == 0
        table = capsys.readouterr().out
        assert "speedup" in table
        assert "identical" in table
        payload = json.loads(output.read_text())
        (entry,) = payload["results"]
        assert entry["topology"] == "line"
        assert entry["n"] == 6
        assert entry["reference_seconds"] > 0
        assert entry["fast_seconds"] > 0
        assert entry["traces_identical"] is True
        assert payload["backends"] == ["reference", "fast"]

    def test_bench_json_stdout(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert run_cli(*self.bench_args("--output", str(output), "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "backend_speed"
        assert payload["results"][0]["speedup"] > 0

    def test_bench_rejects_bad_topology(self, capsys):
        assert (
            run_cli("bench", "--sizes", "6", "--topologies", "mobius", "--output", "")
            == 2
        )
        assert "unknown bench topology" in capsys.readouterr().err

    def test_bench_broadcast_estimate_mode(self, tmp_path, capsys):
        output = tmp_path / "BENCH_msgsim.json"
        assert (
            run_cli(
                *self.bench_args(
                    "--estimate-mode", "broadcast", "--output", str(output)
                )
            )
            == 0
        )
        assert "(broadcast estimates)" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload["config"]["estimate_mode"] == "broadcast"
        (entry,) = payload["results"]
        assert entry["estimate_mode"] == "broadcast"
        assert entry["traces_identical"] is True

    def test_bench_float32_requires_jit_backend(self, capsys):
        assert run_cli(*self.bench_args("--float32", "--output", "")) == 2
        assert "add 'jit'" in capsys.readouterr().err

    def test_bench_float32_column_is_timed_not_gated(self, tmp_path, capsys):
        from repro.fastsim.backend import backend_available

        if not backend_available("jit"):
            pytest.skip("jit backend unavailable (no provider)")
        output = tmp_path / "bench_f32.json"
        assert (
            run_cli(
                *self.bench_args(
                    "--backends",
                    "vec,jit",
                    "--float32",
                    "--output",
                    str(output),
                )
            )
            == 0
        )
        table = capsys.readouterr().out
        assert "f32 [s] (approx)" in table
        payload = json.loads(output.read_text())
        (entry,) = payload["results"]
        assert entry["jit_float32_seconds"] > 0
        assert entry["jit_float32_speedup_over_jit"] > 0
        # The approx-only column never joins the equivalence verdict: the
        # verdict covers the exact backends only and must stay true.
        assert entry["traces_identical"] is True
        assert payload["config"]["float32"] is True


class TestCacheCommand:
    def test_cache_listing_and_clear(self, tmp_path, capsys):
        run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        capsys.readouterr()
        assert run_cli("cache", "--cache-dir", str(tmp_path)) == 0
        assert "1 cache entries" in capsys.readouterr().out
        assert run_cli("cache", "--cache-dir", str(tmp_path), "--clear") == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cache_stats_line_includes_bytes_and_backend_breakdown(
        self, tmp_path, capsys
    ):
        for backend in ("reference", "fast"):
            run_cli(
                "run",
                "quickstart_line",
                "--set",
                "n=4",
                "--set",
                "sim.duration=4.0",
                "--set",
                f"backend={backend}",
                "--cache-dir",
                str(tmp_path),
            )
        capsys.readouterr()
        assert run_cli("cache", "--cache-dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "2 cache entries" in out
        assert "bytes" in out
        assert "fast: 1" in out and "reference: 1" in out

    def test_cache_prune_older_than_and_max_bytes(self, tmp_path, capsys):
        import os
        import time as time_mod

        run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        capsys.readouterr()
        # Fresh entry survives an age-based prune ...
        assert run_cli(
            "cache", "--cache-dir", str(tmp_path), "--prune-older-than", "3600"
        ) == 0
        assert "pruned 0" in capsys.readouterr().out
        # ... an aged one does not.
        (entry,) = list(tmp_path.glob("*.json"))
        old = time_mod.time() - 7200
        os.utime(entry, (old, old))
        assert run_cli(
            "cache", "--cache-dir", str(tmp_path), "--prune-older-than", "3600"
        ) == 0
        assert "pruned 1" in capsys.readouterr().out
        # --max-bytes evicts down to the budget (0 = everything).
        run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--cache-dir",
            str(tmp_path),
        )
        capsys.readouterr()
        assert run_cli("cache", "--cache-dir", str(tmp_path), "--max-bytes", "0") == 0
        out = capsys.readouterr().out
        assert "pruned 1" in out
        assert "0 cache entries" in out


class TestObserversAndTrace:
    """--observers / --trace flags of the streaming metrics pipeline (PR 5)."""

    def test_run_with_trace_none_and_observers(self, tmp_path, capsys):
        status = run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--trace",
            "none",
            "--observers",
            "global_skew,local_skew,mode_counts",
            "--json",
            "--cache-dir",
            str(tmp_path),
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        (run,) = payload["runs"]
        assert run["spec"]["trace"] == "none"
        assert run["spec"]["observers"] == ["global_skew", "local_skew", "mode_counts"]

    def test_unknown_observer_fails_cleanly(self, tmp_path, capsys):
        status = run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--observers",
            "does_not_exist",
            "--cache-dir",
            str(tmp_path),
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "unknown observer" in err
        assert "global_skew" in err  # the known names are listed

    def test_set_trace_pseudo_override_also_works(self, tmp_path, capsys):
        status = run_cli(
            "run",
            "quickstart_line",
            "--set",
            "n=4",
            "--set",
            "sim.duration=4.0",
            "--set",
            "trace=none",
            "--json",
            "--cache-dir",
            str(tmp_path),
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["spec"]["trace"] == "none"

    def test_list_mentions_observers(self, capsys):
        assert run_cli("list") == 0
        out = capsys.readouterr().out
        assert "observers:" in out
        assert "gradient_bound_check" in out

    def test_bench_trace_none_checks_reports(self, tmp_path, capsys):
        status = run_cli(
            "bench",
            "--sizes",
            "8",
            "--topologies",
            "line",
            "--duration",
            "4",
            "--backends",
            "reference,fast",
            "--trace",
            "none",
            "--json",
            "--output",
            "",
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["results"]
        assert entry["trace_mode"] == "none"
        assert entry["reports_identical"] is True

    def test_bench_memory_flag_records_peaks(self, tmp_path, capsys):
        status = run_cli(
            "bench",
            "--sizes",
            "8",
            "--topologies",
            "line",
            "--duration",
            "4",
            "--backends",
            "fast",
            "--memory",
            "--no-check",
            "--json",
            "--output",
            "",
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["results"]
        assert entry["fast_peak_tracemalloc_bytes"] > 0


class TestTelemetryFlags:
    def test_run_until_stable_with_telemetry_stream(self, tmp_path, capsys):
        from repro.telemetry import iter_jsonl, validate_jsonl

        stream = tmp_path / "events.jsonl"
        assert run_cli(
            "run", "line_scaling", "--set", "n=5",
            "--until-stable",
            "--telemetry", str(stream),
            "--cache-dir", str(tmp_path / "cache"),
            "--json",
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["spec"]["until_stable"] is True
        assert validate_jsonl(stream) >= 4
        kinds = [r["event"] for r in iter_jsonl(stream)]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert "watchdog_fired" in kinds

    def test_sweep_telemetry_covers_cache_hits(self, tmp_path, capsys):
        from repro.telemetry import iter_jsonl

        cache = tmp_path / "cache"
        assert run_cli(
            "sweep", "line_scaling", "--grid", "n=4,5",
            "--until-stable", "--cache-dir", str(cache),
        ) == 0
        capsys.readouterr()
        stream = tmp_path / "cached.jsonl"
        assert run_cli(
            "sweep", "line_scaling", "--grid", "n=4,5",
            "--until-stable", "--cache-dir", str(cache),
            "--telemetry", str(stream),
        ) == 0
        assert "2 from cache" in capsys.readouterr().out
        records = list(iter_jsonl(stream))
        cached = [r for r in records if r["event"] == "run_finished"]
        assert all(r["state"] == "cached" for r in cached)

    def test_telemetry_creates_missing_parent_directories(
        self, tmp_path, capsys
    ):
        from repro.telemetry import validate_jsonl

        stream = tmp_path / "no" / "such" / "dir" / "x.jsonl"
        assert run_cli(
            "run", "quickstart_line", "--set", "n=4",
            "--telemetry", str(stream),
            "--cache-dir", str(tmp_path / "cache"),
        ) == 0
        capsys.readouterr()
        assert validate_jsonl(stream) >= 4

    def test_until_stable_caches_separately_from_full_runs(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        args = ("run", "line_scaling", "--set", "n=4",
                "--cache-dir", str(cache))
        assert run_cli(*args) == 0
        capsys.readouterr()
        assert run_cli(*args, "--until-stable") == 0
        assert "1 executed" in capsys.readouterr().out
        assert run_cli(*args, "--until-stable") == 0
        assert "1 from cache" in capsys.readouterr().out
