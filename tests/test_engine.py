"""Tests for the simulation engine."""

import pytest

from repro.baselines.hardware_only import hardware_only_factory
from repro.baselines.max_algorithm import max_propagation_factory
from repro.core.interfaces import ClockSyncAlgorithm, ControlDecision
from repro.core.parameters import Parameters
from repro.estimate.oracle_layer import OracleEstimateLayer
from repro.network import topology
from repro.network.edge import EdgeParams
from repro.sim.delay import ZeroDelay
from repro.sim.drift import ConstantDrift, TwoGroupAdversary
from repro.sim.engine import Engine, EngineError


def oracle_factory(strategy="zero"):
    def factory(engine):
        return OracleEstimateLayer(engine.graph, engine.logical_value, strategy=strategy)

    return factory


def make_engine(graph, algorithm_factory, params, **kwargs):
    kwargs.setdefault("dt", 0.1)
    kwargs.setdefault("delay", ZeroDelay())
    return Engine(graph, algorithm_factory, oracle_factory(), params=params, **kwargs)


class RecordingAlgorithm(ClockSyncAlgorithm):
    """Minimal algorithm that records every callback it receives."""

    name = "Recording"

    def __init__(self):
        super().__init__()
        self.events = []

    def on_start(self, t, initial_neighbors):
        self.events.append(("start", t, sorted(initial_neighbors)))

    def on_edge_discovered(self, t, neighbor):
        self.events.append(("up", t, neighbor))

    def on_edge_lost(self, t, neighbor):
        self.events.append(("down", t, neighbor))

    def on_message(self, t, sender, payload):
        self.events.append(("msg", t, sender))

    def control(self, t):
        return ControlDecision(multiplier=1.0)


class TestEngineBasics:
    def test_rejects_nonpositive_dt(self, params):
        with pytest.raises(EngineError):
            make_engine(topology.line(3), hardware_only_factory(), params, dt=0.0)

    def test_clocks_advance_with_time(self, params):
        engine = make_engine(topology.line(3), hardware_only_factory(), params)
        engine.run(10.0)
        assert engine.time == pytest.approx(10.0)
        for node in engine.nodes:
            assert engine.logical_value(node) == pytest.approx(10.0)
            assert engine.hardware_value(node) == pytest.approx(10.0)

    def test_run_until_and_negative_duration(self, params):
        engine = make_engine(topology.line(3), hardware_only_factory(), params)
        engine.run_until(5.0)
        assert engine.time == pytest.approx(5.0)
        with pytest.raises(EngineError):
            engine.run(-1.0)
        with pytest.raises(EngineError):
            engine.run_until(1.0)

    def test_drift_applied(self, params):
        drift = ConstantDrift(params.rho, {0: params.rho, 1: -params.rho})
        engine = make_engine(
            topology.line(2), hardware_only_factory(), params, drift=drift
        )
        engine.run(100.0)
        assert engine.hardware_value(0) == pytest.approx(100.0 * (1 + params.rho))
        assert engine.hardware_value(1) == pytest.approx(100.0 * (1 - params.rho))
        assert engine.global_skew() == pytest.approx(2 * params.rho * 100.0)

    def test_initial_logical_values(self, params):
        engine = make_engine(
            topology.line(2),
            hardware_only_factory(),
            params,
            initial_logical={0: 5.0, 1: 0.0},
        )
        assert engine.logical_value(0) == 5.0
        assert engine.global_skew() == pytest.approx(5.0)

    def test_unknown_node_rejected(self, params):
        engine = make_engine(topology.line(2), hardware_only_factory(), params)
        with pytest.raises(EngineError):
            engine.logical_value(17)

    def test_engine_copies_graph(self, params):
        graph = topology.line(3)
        graph.schedule_edge_up(1.0, 0, 2)
        engine = make_engine(graph, hardware_only_factory(), params)
        engine.run(5.0)
        assert engine.graph.has_edge(0, 2)
        assert not graph.has_edge(0, 2)
        assert len(graph.pending_events()) == 2

    def test_trace_sampling(self, params):
        engine = make_engine(topology.line(2), hardware_only_factory(), params, sample_interval=1.0)
        trace = engine.run(10.0)
        assert len(trace) >= 10
        assert trace.final().time == pytest.approx(10.0)

    def test_snapshots(self, params):
        engine = make_engine(topology.line(3), hardware_only_factory(), params)
        engine.run(1.0)
        assert set(engine.logical_snapshot()) == {0, 1, 2}
        assert set(engine.hardware_snapshot()) == {0, 1, 2}


class TestCallbacks:
    def test_on_start_receives_initial_neighbors(self, params):
        algorithms = {}

        def factory(node_id):
            algorithms[node_id] = RecordingAlgorithm()
            return algorithms[node_id]

        engine = make_engine(topology.line(3), factory, params)
        del engine
        assert algorithms[1].events[0] == ("start", 0.0, [0, 2])

    def test_edge_events_reported_to_algorithms(self, params):
        algorithms = {}

        def factory(node_id):
            algorithms[node_id] = RecordingAlgorithm()
            return algorithms[node_id]

        graph = topology.line(3)
        graph.schedule_edge_up(1.0, 0, 2)
        graph.schedule_edge_down(3.0, 0, 1)
        engine = make_engine(graph, factory, params)
        engine.run(5.0)
        ups = [e for e in algorithms[0].events if e[0] == "up"]
        assert any(e[2] == 2 and e[1] == pytest.approx(1.0, abs=0.2) for e in ups)
        assert any(e[0] == "down" and e[2] == 1 for e in algorithms[0].events)
        assert any(e[0] == "down" and e[2] == 0 for e in algorithms[1].events)

    def test_messages_delivered_to_algorithm(self, params):
        engine = make_engine(
            topology.line(2), max_propagation_factory(params.rho), params
        )
        engine.run(3.0)
        assert engine.transport.delivered_count > 0

    def test_jump_decisions_applied(self, params):
        drift = ConstantDrift(params.rho, {0: params.rho, 1: -params.rho})
        engine = make_engine(
            topology.line(2), max_propagation_factory(params.rho), params, drift=drift
        )
        engine.run(50.0)
        # The slower node keeps jumping to the max estimate, so the skew stays
        # far below the 2*rho*t that uncorrected drift would produce.
        assert engine.global_skew() < 0.5 * (2 * params.rho * 50.0)


class TestDiameterTracking:
    def test_tracker_becomes_finite_after_communication(self, params):
        engine = make_engine(
            topology.line(3),
            max_propagation_factory(params.rho),
            params,
            track_diameter=True,
        )
        assert engine.current_diameter() is None
        engine.run(10.0)
        assert engine.current_diameter() is not None
        assert engine.current_diameter() > 0

    def test_trace_records_diameter(self, params):
        engine = make_engine(
            topology.line(3),
            max_propagation_factory(params.rho),
            params,
            track_diameter=True,
        )
        trace = engine.run(10.0)
        assert trace.final().diameter is not None
