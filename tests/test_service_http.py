"""End-to-end tests of the sweep service HTTP API and the stdlib client.

A real ``ThreadingHTTPServer`` on an ephemeral localhost port, driven
through :class:`repro.service.client.ServiceClient` -- the same path the
CI smoke job and the docs walkthrough use.
"""

import json
import threading

import pytest

import repro.experiments.executor as executor_mod
from repro.experiments import scenario
from repro.service import ServiceConfig, SweepServer, SweepService
from repro.service.client import ClientError, JobFailed, ServiceClient

TINY_SIM = {"duration": 4.0, "dt": 0.1}


def tiny_spec(n=4, **overrides):
    return scenario("quickstart_line", n=n, sim=dict(TINY_SIM), **overrides)


@pytest.fixture
def server(tmp_path):
    service = SweepService(tmp_path / "cache", config=ServiceConfig(workers=4))
    srv = SweepServer(service, "127.0.0.1", 0)
    srv.start_background()
    yield srv
    srv.shutdown()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


class TestHealthAndSpecs:
    def test_healthz_reports_version_and_cache_format(self, client):
        from repro import __version__
        from repro.experiments.executor import CACHE_FORMAT_VERSION

        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["cache_format_version"] == CACHE_FORMAT_VERSION
        assert "cache" in payload and "jobs" in payload

    def test_specs_lists_registry(self, client):
        payload = client.specs()
        names = {entry["name"] for entry in payload["scenarios"]}
        assert "quickstart_line" in names
        assert "line" in payload["topologies"]
        backends = {entry["name"] for entry in payload["backends"]}
        assert {"reference", "fast", "vec"} <= backends
        observers = {entry["name"] for entry in payload["observers"]}
        assert "global_skew" in observers


class TestSubmitPollFetch:
    def test_full_submit_poll_fetch_cycle(self, server, client):
        spec = tiny_spec()
        job = client.submit([spec])
        assert job["state"] in ("queued", "running", "done")
        job = client.wait(job["id"])
        assert job["state"] == "done"
        (entry,) = job["specs"]
        assert entry["state"] == "done"
        assert entry["spec_hash"] == spec.content_hash()
        payload = client.result(entry["result_key"])
        assert payload["spec_hash"] == spec.content_hash()
        assert payload["summary"]["node_count"] == 4

    def test_result_bytes_equal_on_disk_cache_payload(self, server, client):
        job = client.wait(client.submit([tiny_spec()])["id"])
        key = job["specs"][0]["result_key"]
        disk = server.service.cache.path_for_key(key).read_bytes()
        assert client.result_bytes(key) == disk

    def test_resubmit_is_served_from_cache_without_executing(
        self, server, client, monkeypatch
    ):
        spec = tiny_spec()
        client.wait(client.submit([spec])["id"])

        def boom(_spec):
            raise AssertionError("resubmission must not execute")

        monkeypatch.setattr(executor_mod, "execute_spec", boom)
        job = client.submit([spec])
        assert job["state"] == "done"
        assert job["counts"]["cached"] == 1

    def test_grid_submission_expands_server_side(self, client):
        job = client.submit_grid(
            "quickstart_line", grid={"n": [4, 5]}, base={"sim": dict(TINY_SIM)}
        )
        job = client.wait(job["id"])
        assert job["total"] == 2
        labels = {entry["label"] for entry in job["specs"]}
        assert len(labels) == 2

    def test_client_run_convenience_returns_payloads_in_order(self, client):
        specs = [tiny_spec(n=4), tiny_spec(n=5)]
        payloads = client.run(specs)
        assert [p["summary"]["node_count"] for p in payloads] == [4, 5]

    def test_eight_concurrent_http_clients_coalesce_to_one_execution(
        self, server, client, monkeypatch
    ):
        calls = []
        real = executor_mod.execute_spec

        def counting(spec, *args, **kwargs):
            calls.append(spec.content_hash())
            return real(spec, *args, **kwargs)

        monkeypatch.setattr(executor_mod, "execute_spec", counting)
        spec = tiny_spec(n=6)
        results = []
        barrier = threading.Barrier(8)

        def one_client():
            own = ServiceClient(server.url, timeout=30.0)
            barrier.wait()
            job = own.submit([spec])
            if job["state"] not in ("done", "failed"):
                job = own.wait(job["id"])
            results.append(job)

        threads = [threading.Thread(target=one_client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert all(job["state"] == "done" for job in results)
        assert len(calls) == 1
        assert server.service.counters["specs_executed"] == 1


class TestErrorHandling:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as err:
            client.job("deadbeef")
        assert err.value.status == 404

    def test_malformed_result_key_is_400(self, client):
        with pytest.raises(ClientError) as err:
            client.result_bytes("..%2Fetc%2Fpasswd")
        assert err.value.status == 400

    def test_unknown_result_key_is_404(self, client):
        with pytest.raises(ClientError) as err:
            client.result_bytes("ab" * 32)
        assert err.value.status == 404

    def test_invalid_spec_body_is_400(self, client):
        with pytest.raises(ClientError) as err:
            client._json("POST", "/sweeps", {"specs": [{"nonsense": True}]})
        assert err.value.status == 400

    def test_unknown_scenario_is_400(self, client):
        with pytest.raises(ClientError) as err:
            client.submit_grid("no_such_scenario", grid={"n": [4]})
        assert err.value.status == 400
        assert "no_such_scenario" in str(err.value)

    def test_malformed_content_length_is_400(self, server):
        # A bogus Content-Length must come back as a JSON 400, not a
        # dropped connection from an unhandled ValueError in the handler.
        import http.client

        host, port = server.address
        for bogus in ("not-a-number", "-5"):
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                conn.putrequest("POST", "/sweeps")
                conn.putheader("Content-Length", bogus)
                conn.putheader("Content-Type", "application/json")
                conn.endheaders()
                resp = conn.getresponse()
                assert resp.status == 400
                assert "Content-Length" in json.loads(resp.read())["error"]
            finally:
                conn.close()

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ClientError) as err:
            client._json("GET", "/nope")
        assert err.value.status == 404

    def test_failed_job_raises_jobfailed_with_payload(
        self, server, client, monkeypatch
    ):
        def boom(_spec, *args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(executor_mod, "execute_spec", boom)
        job = client.submit([tiny_spec(n=7)])
        with pytest.raises(JobFailed) as err:
            client.wait(job["id"])
        assert "engine exploded" in err.value.job["error"]

    def test_connection_refused_is_clienterror(self):
        dead = ServiceClient("http://127.0.0.1:9", timeout=1.0)
        with pytest.raises(ClientError) as err:
            dead.healthz()
        assert err.value.status is None


class TestServeCli:
    def test_serve_subcommand_runs_a_real_daemon(self, tmp_path):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        log_file = tmp_path / "svc.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--log-file",
                str(log_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            # The daemon prints its bound address (port 0 = ephemeral).
            line = proc.stderr.readline()
            assert "sweep service on" in line, line
            url = line.strip().rsplit(" ", 1)[-1]
            client = ServiceClient(url, timeout=10.0)
            client.wait_until_ready(timeout=20.0)
            payloads = client.run([tiny_spec()], timeout=60.0)
            assert payloads[0]["summary"]["node_count"] == 4
            assert log_file.is_file()
            events = [
                json.loads(l)["event"] for l in log_file.read_text().splitlines()
            ]
            assert "job_submitted" in events
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestJobEvents:
    def test_events_endpoint_streams_schema_valid_records(self, server, client):
        from repro.telemetry import validate_records

        spec = scenario("line_scaling", n=5, until_stable=True)
        job = client.wait(client.submit([spec])["id"])
        payload = client.job_events(job["id"])
        assert payload["job"] == job["id"]
        assert payload["events"], "a live execution must buffer events"
        validate_records(payload["events"])
        kinds = {e["event"] for e in payload["events"]}
        assert {"sweep_started", "run_started", "run_finished",
                "watchdog_fired", "sweep_finished"} <= kinds
        fired = [e for e in payload["events"] if e["event"] == "watchdog_fired"]
        assert fired[0]["watchdog"] == "watchdog_convergence"
        assert not fired[0].get("replayed")

    def test_since_cursor_resumes_without_rereading(self, server, client):
        job = client.wait(client.submit([tiny_spec()])["id"])
        first = client.job_events(job["id"])
        assert first["next"] == len(first["events"])
        second = client.job_events(job["id"], since=first["next"])
        assert second["events"] == []
        assert second["next"] == first["next"]
        # A cursor mid-stream returns exactly the suffix.
        middle = client.job_events(job["id"], since=1)
        assert middle["events"] == first["events"][1:]

    def test_cached_submission_replays_watchdog_events(self, server, client):
        from repro.telemetry import validate_records

        spec = scenario("line_scaling", n=5, until_stable=True)
        client.wait(client.submit([spec])["id"])
        cached_job = client.submit([spec])
        assert cached_job["state"] == "done"
        payload = client.job_events(cached_job["id"])
        validate_records(payload["events"])
        fired = [e for e in payload["events"] if e["event"] == "watchdog_fired"]
        assert fired and all(e["replayed"] is True for e in fired)

    def test_healthz_exposes_watchdog_counters(self, server, client):
        spec = scenario("line_scaling", n=5, until_stable=True)
        before = client.healthz()
        assert "watchdogs_fired" in before["counters"]
        client.wait(client.submit([spec])["id"])
        after = client.healthz()
        assert after["counters"]["watchdogs_fired"] == 1
        assert after["watchdogs"] == {"watchdog_convergence": 1}
        # A cache-served resubmission must not inflate the live counters.
        client.submit([spec])
        again = client.healthz()
        assert again["counters"]["watchdogs_fired"] == 1

    def test_events_for_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as err:
            client.job_events("nope")
        assert err.value.status == 404

    def test_bad_since_is_400(self, server, client):
        job = client.wait(client.submit([tiny_spec()])["id"])
        with pytest.raises(ClientError) as err:
            client._json("GET", f"/jobs/{job['id']}/events?since=abc")
        assert err.value.status == 400

    def test_unknown_job_subresource_is_404(self, server, client):
        job = client.wait(client.submit([tiny_spec()])["id"])
        with pytest.raises(ClientError) as err:
            client._json("GET", f"/jobs/{job['id']}/nope")
        assert err.value.status == 404
