"""Unit tests for repro.metrics: reducers, pipeline, views, registry."""

import pytest

from repro.experiments import execute_spec, registry, scenario
from repro.experiments.results import build_run_pipeline, report_from_trace
from repro.metrics import (
    DEFAULT_OBSERVERS,
    MetricsError,
    ObserverContext,
    ObserverReport,
    build_pipeline,
    make_observer,
    observer_names,
    streaming,
)
from repro.metrics.views import ColumnsView, TraceSampleView
from repro.sim.trace import TraceSample


def make_sample(time, logical, modes=None, max_estimates=None):
    nodes = list(logical)
    return TraceSample(
        time=time,
        logical=dict(logical),
        hardware=dict(logical),
        multipliers={n: 1.0 for n in nodes},
        modes=dict(modes) if modes else {n: "slow" for n in nodes},
        max_estimates=dict(max_estimates) if max_estimates else dict(logical),
    )


# ----------------------------------------------------------------------
# Scalar reducers
# ----------------------------------------------------------------------
class TestPredictFinalTime:
    @pytest.mark.parametrize(
        "duration,dt",
        [(10.0, 0.1), (10.0, 0.05), (7.3, 0.1), (33.0, 0.07), (0.0, 0.1), (1.0, 0.3)],
    )
    def test_matches_engine_final_sample(self, duration, dt):
        """The prediction is bit-equal to the engine's forced final sample."""
        spec = scenario(
            "quickstart_line", n=3, duration=duration, dt=dt
        )
        payload = execute_spec(spec)
        final_time = payload["trace"]["samples"][-1]["time"]
        assert streaming.predict_final_time(duration, dt) == final_time


class TestPeakTracker:
    def test_tracks_running_max_from_start(self):
        tracker = streaming.PeakTracker(start=2.0)
        for time, value in [(0.0, 9.0), (1.0, 8.0), (2.0, 3.0), (3.0, 5.0), (4.0, 4.0)]:
            tracker.update(time, value)
        assert tracker.peak == 5.0  # samples before t=2 are ignored

    def test_empty_is_zero(self):
        assert streaming.PeakTracker().peak == 0.0


class TestHoldDetector:
    def test_candidate_resets_on_violation(self):
        detector = streaming.HoldDetector(bound=1.0)
        for time, value in [(0.0, 2.0), (1.0, 0.5), (2.0, 1.5), (3.0, 0.9), (4.0, 0.8)]:
            detector.update(time, value)
        assert detector.candidate == 3.0

    def test_never_converges(self):
        detector = streaming.HoldDetector(bound=1.0)
        detector.update(0.0, 2.0)
        detector.update(1.0, 3.0)
        assert detector.candidate is None


class TestStabilizationTracker:
    def test_matches_post_hoc_semantics(self):
        tracker = streaming.StabilizationTracker(bound=1.0, event_time=2.0)
        for time, value in [(0.0, 9.0), (2.0, 3.0), (3.0, 0.5), (4.0, 0.4)]:
            tracker.update(time, value)
        stabilized, at_time, elapsed, max_skew, final = tracker.result()
        assert (stabilized, at_time, elapsed) == (True, 3.0, 1.0)
        assert (max_skew, final) == (3.0, 0.4)

    def test_dwell_requirement(self):
        tracker = streaming.StabilizationTracker(bound=1.0, event_time=0.0, dwell=5.0)
        tracker.update(0.0, 2.0)
        tracker.update(1.0, 0.5)
        tracker.update(2.0, 0.5)
        assert tracker.result()[0] is False

    def test_no_samples_after_event_raises(self):
        tracker = streaming.StabilizationTracker(bound=1.0, event_time=10.0)
        tracker.update(0.0, 2.0)
        with pytest.raises(ValueError, match="no samples after the event"):
            tracker.result()

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            streaming.StabilizationTracker(bound=-1.0, event_time=0.0)


class TestEventSnapshot:
    def test_latest_at_or_before_event(self):
        snapshot = streaming.EventSnapshot(2.0)
        for time, value in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]:
            snapshot.update(time, value)
        assert snapshot.value == 3.0

    def test_falls_back_to_first_sample(self):
        snapshot = streaming.EventSnapshot(-5.0)
        snapshot.update(0.0, 1.0)
        snapshot.update(1.0, 2.0)
        assert snapshot.value == 1.0  # Trace.sample_at clamps to the first


class TestGradientCounter:
    def test_counts_and_collects(self):
        pairs = [(0, 1, 1.0, 2.0), (0, 2, 2.0, 4.0)]
        counter = streaming.GradientCounter(pairs, collect=True)
        counter.update_skews(1.0, [2.5, 1.0])  # first violates
        counter.update_skews(2.0, [1.0, 4.5])  # second violates
        assert counter.count == 2
        assert counter.collected == [(1.0, 0, 2.5), (2.0, 1, 4.5)]


class TestDistanceGroupMax:
    def test_drops_zero_groups_by_default(self):
        acc = streaming.DistanceGroupMax()
        acc.update(1.0, 0.0)
        acc.update(2.0, 3.0)
        acc.update(2.0, 1.0)
        assert acc.result() == {2.0: 3.0}

    def test_keep_zeros_preserves_all_keys(self):
        acc = streaming.DistanceGroupMax([1.0, 2.0], keep_zeros=True)
        acc.update(2.0, 3.0)
        assert acc.result() == {1.0: 0.0, 2.0: 3.0}


# ----------------------------------------------------------------------
# Registry, report and pipeline
# ----------------------------------------------------------------------
class TestRegistry:
    def test_default_set_is_registered(self):
        for name in DEFAULT_OBSERVERS:
            assert name in observer_names()

    def test_unknown_observer_raises(self):
        with pytest.raises(MetricsError, match="unknown observer"):
            make_observer("nope", ObserverContext())

    def test_duplicate_selection_rejected(self):
        with pytest.raises(MetricsError, match="duplicate"):
            build_pipeline(["global_skew", "global_skew"], graph=None)


class TestObserverReport:
    def test_payload_round_trip(self):
        report = ObserverReport(sample_count=3, payloads={"global_skew": {"max": 1.0}})
        restored = ObserverReport.from_payload(report.to_payload())
        assert restored == report
        assert ObserverReport.from_payload(None) is None

    def test_get_and_contains(self):
        report = ObserverReport(sample_count=1, payloads={"a": {"x": 1}})
        assert "a" in report and "b" not in report
        assert report.get("b", "fallback") == "fallback"


class TestPipelineReplay:
    def test_streaming_equals_replay_of_trace(self):
        """Live streaming and post-hoc replay produce identical reports."""
        spec = scenario("line_scaling", n=5, sim={"duration": 20.0})
        payload = execute_spec(spec)
        from repro.experiments.results import trace_from_payload

        trace = trace_from_payload(payload["trace"])
        scenario_obj = registry.build_scenario(spec)
        replayed = report_from_trace(
            spec,
            trace,
            graph=scenario_obj.graph,
            base_edges=scenario_obj.base_edges,
            config=scenario_obj.config,
            meta=scenario_obj.meta,
            global_skew_bound=scenario_obj.global_skew_bound,
        )
        assert replayed.to_payload() == payload["observers"]

    def test_empty_replay_yields_neutral_payloads(self):
        pipeline = build_pipeline(
            ["global_skew", "convergence_time", "mode_counts"], graph=None
        )
        report = pipeline.replay([])
        assert report.sample_count == 0
        assert report.get("global_skew") == {
            "initial": 0.0,
            "max": 0.0,
            "final": 0.0,
            "steady_max": 0.0,
        }
        assert report.get("convergence_time") == {"halving_time": None}
        assert report.get("mode_counts") == {"counts": {}}


class TestViews:
    def test_dict_and_columns_views_agree(self):
        sample = make_sample(
            1.0,
            {0: 0.0, 1: 2.5, 2: 1.0},
            modes={0: "slow", 1: "fast", 2: "slow"},
            max_estimates={0: 2.0, 1: 2.5, 2: 2.25},
        )
        dict_view = TraceSampleView().set_sample(sample)
        columns_view = ColumnsView([0, 1, 2], {0: 0, 1: 1, 2: 2}).set_columns(
            1.0, [0.0, 2.5, 1.0], [2.0, 2.5, 2.25], [0, 1, 0]
        )
        edges = [(0, 1), (1, 2)]
        assert dict_view.global_skew() == columns_view.global_skew() == 2.5
        assert dict_view.max_pair_skew("e", edges) == columns_view.max_pair_skew("e", edges)
        assert dict_view.pair_skew(0, 2) == columns_view.pair_skew(0, 2) == 1.0
        assert dict_view.max_estimate_lag() == columns_view.max_estimate_lag() == 0.5
        dict_counts, col_counts = [0, 0, 0], [0, 0, 0]
        dict_view.mode_counts_update(dict_counts)
        columns_view.mode_counts_update(col_counts)
        assert dict_counts == col_counts == [2, 1, 0]

    def test_array_view_agrees_with_dict_view(self):
        np = pytest.importorskip("numpy")
        from repro.metrics.views import ArrayView

        sample = make_sample(
            1.0,
            {0: 0.0, 1: 2.5, 2: 1.0},
            max_estimates={0: 2.0, 1: 2.5, 2: 2.25},
        )
        dict_view = TraceSampleView().set_sample(sample)
        array_view = ArrayView([0, 1, 2], {0: 0, 1: 1, 2: 2}).set_columns(
            1.0,
            np.asarray([0.0, 2.5, 1.0]),
            np.asarray([2.0, 2.5, 2.25]),
            np.asarray([0, 0, 0]),
        )
        edges = [(0, 1), (1, 2)]
        assert array_view.global_skew() == dict_view.global_skew()
        assert array_view.max_pair_skew("e", edges) == dict_view.max_pair_skew("e", edges)
        assert array_view.max_estimate_lag() == dict_view.max_estimate_lag()
        assert array_view.count_exceeding("g", edges, [1.0, 2.0]) == dict_view.count_exceeding(
            "g", edges, [1.0, 2.0]
        )


class TestEngineHook:
    def test_trace_none_keeps_no_samples(self):
        spec = scenario("quickstart_line", n=4, duration=10.0)
        scenario_obj = registry.build_scenario(spec)
        from repro.fastsim.backend import get_backend

        engine = get_backend("fast").build(
            scenario_obj.graph, scenario_obj.algorithm_factory, scenario_obj.config
        )
        pipeline = build_run_pipeline(
            spec,
            graph=scenario_obj.graph,
            base_edges=scenario_obj.base_edges,
            config=scenario_obj.config,
            meta=scenario_obj.meta,
            global_skew_bound=scenario_obj.global_skew_bound,
        )
        engine.configure_recording(pipeline, record_trace=False)
        trace = engine.run(scenario_obj.config.duration)
        assert len(trace) == 0
        report = pipeline.finalize()
        assert report.sample_count == 11  # samples at t=0..9 plus the forced final
