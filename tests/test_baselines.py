"""Tests for the baseline algorithms."""

import pytest

from repro.baselines.hardware_only import HardwareOnly, hardware_only_factory
from repro.baselines.immediate_insertion import (
    ImmediateInsertionGradient,
    immediate_insertion_factory,
)
from repro.baselines.max_algorithm import MaxPropagation, max_propagation_factory
from repro.baselines.threshold_gradient import ThresholdGradient, threshold_gradient_factory
from repro.core.algorithm import AOPTConfig
from repro.core import insertion as insertion_mod
from repro.core.skew_estimates import StaticGlobalSkewEstimate
from repro.estimate.messages import ClockBroadcast
from repro.network.edge import EdgeParams

from conftest import FakeNodeAPI


class TestHardwareOnly:
    def test_always_slow(self):
        algorithm = HardwareOnly()
        algorithm.bind(FakeNodeAPI(0))
        decision = algorithm.control(0.0)
        assert decision.multiplier == 1.0
        assert decision.jump_to is None

    def test_factory(self):
        assert isinstance(hardware_only_factory()(3), HardwareOnly)


class TestMaxPropagation:
    def _node(self, rho=0.01):
        algorithm = MaxPropagation(rho)
        api = FakeNodeAPI(0)
        algorithm.bind(api)
        return algorithm, api

    def test_jumps_to_received_maximum(self):
        algorithm, api = self._node()
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        algorithm.on_message(0.0, 1, ClockBroadcast(sender=1, logical=7.0, max_estimate=7.0))
        decision = algorithm.control(0.0)
        assert decision.jump_to == pytest.approx(7.0)
        assert algorithm.mode() == "fast"

    def test_no_jump_when_at_maximum(self):
        algorithm, api = self._node()
        api.logical_value = 10.0
        api.hardware_value = 10.0
        decision = algorithm.control(0.0)
        assert decision.jump_to is None
        assert algorithm.mode() == "slow"

    def test_broadcasts_periodically(self):
        algorithm, api = self._node()
        api.neighbor_set = {1, 2}
        algorithm.on_start(0.0, [1, 2])
        algorithm.control(0.0)
        assert len(api.sent) == 2
        api.advance(0.5)
        algorithm.control(0.5)
        assert len(api.sent) == 2

    def test_edge_discovery_and_loss(self):
        algorithm, api = self._node()
        algorithm.on_edge_discovered(0.0, 4)
        api.neighbor_set = {4}
        algorithm.control(0.0)
        assert api.sent and api.sent[0][0] == 4
        algorithm.on_edge_lost(1.0, 4)
        api.sent.clear()
        api.advance(2.0)
        algorithm.control(2.0)
        assert api.sent == []

    def test_invalid_broadcast_interval(self):
        with pytest.raises(ValueError):
            MaxPropagation(0.01, broadcast_interval=0.0)

    def test_factory(self):
        assert isinstance(max_propagation_factory(0.01)(2), MaxPropagation)


class TestThresholdGradient:
    def _node(self, params, threshold=5.0, blocking=True):
        algorithm = ThresholdGradient(params, threshold, blocking=blocking)
        api = FakeNodeAPI(0)
        algorithm.bind(api)
        return algorithm, api

    def test_fast_when_neighbor_ahead(self, params):
        algorithm, api = self._node(params)
        api.neighbor_set = {1}
        algorithm.on_start(0.0, [1])
        api.estimates = {1: 10.0}
        decision = algorithm.control(0.0)
        assert decision.multiplier == pytest.approx(1 + params.mu)

    def test_blocking_neighbor_behind_forces_slow(self, params):
        algorithm, api = self._node(params)
        api.neighbor_set = {1, 2}
        algorithm.on_start(0.0, [1, 2])
        api.logical_value = 10.0
        api.hardware_value = 10.0
        api.estimates = {1: 20.0, 2: 2.0}
        decision = algorithm.control(0.0)
        assert decision.multiplier == 1.0

    def test_non_blocking_variant_ignores_laggards(self, params):
        algorithm, api = self._node(params, blocking=False)
        api.neighbor_set = {1, 2}
        algorithm.on_start(0.0, [1, 2])
        api.logical_value = 10.0
        api.hardware_value = 10.0
        api.estimates = {1: 20.0, 2: 2.0}
        decision = algorithm.control(0.0)
        assert decision.multiplier == pytest.approx(1 + params.mu)

    def test_max_estimate_fallback(self, params):
        algorithm, api = self._node(params)
        algorithm.max_tracker.observe_remote(3.0)
        decision = algorithm.control(0.0)
        assert decision.multiplier == pytest.approx(1 + params.mu)

    def test_never_jumps(self, params):
        algorithm, api = self._node(params)
        algorithm.max_tracker.observe_remote(100.0)
        assert algorithm.control(0.0).jump_to is None

    def test_invalid_threshold(self, params):
        with pytest.raises(ValueError):
            ThresholdGradient(params, 0.0)

    def test_factory(self, params):
        algorithm = threshold_gradient_factory(params, 4.0, blocking=False)(1)
        assert isinstance(algorithm, ThresholdGradient)
        assert not algorithm.blocking


class TestImmediateInsertion:
    def _config(self, params, immediate=False):
        return AOPTConfig(
            params=params,
            global_skew=StaticGlobalSkewEstimate(50.0),
            max_level=4,
            insertion_duration=insertion_mod.scaled_insertion_duration(0.01),
            immediate_insertion=immediate,
        )

    def test_forces_immediate_flag(self, params):
        algorithm = ImmediateInsertionGradient(self._config(params, immediate=False))
        assert algorithm.config.immediate_insertion

    def test_new_edges_fully_inserted_at_once(self, params):
        algorithm = ImmediateInsertionGradient(self._config(params))
        api = FakeNodeAPI(0, edge_params=EdgeParams())
        algorithm.bind(api)
        api.neighbor_set = {7}
        algorithm.on_edge_discovered(0.0, 7)
        assert algorithm.levels.is_fully_inserted(7)
        assert api.scheduled == []

    def test_factory(self, params):
        algorithm = immediate_insertion_factory(self._config(params))(0)
        assert isinstance(algorithm, ImmediateInsertionGradient)
        assert algorithm.name == "ImmediateInsertion"
