"""Tests for repro.network.topology."""

import pytest

from repro.network import topology
from repro.network.dynamic_graph import GraphError
from repro.network.edge import EdgeParams


class TestLine:
    def test_line_structure(self):
        graph = topology.line(5)
        assert graph.node_count == 5
        assert graph.edge_count() == 4
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_single_node_line(self):
        graph = topology.line(1)
        assert graph.node_count == 1
        assert graph.edge_count() == 0

    def test_line_is_connected(self):
        assert topology.line(10).is_connected()

    def test_line_edge_params_applied(self):
        params = EdgeParams(epsilon=3.0)
        graph = topology.line(4, params)
        assert graph.edge_params(1, 2).epsilon == 3.0

    def test_invalid_size(self):
        with pytest.raises(GraphError):
            topology.line(0)


class TestRing:
    def test_ring_structure(self):
        graph = topology.ring(6)
        assert graph.edge_count() == 6
        assert graph.has_edge(5, 0)

    def test_ring_minimum_size(self):
        with pytest.raises(GraphError):
            topology.ring(2)

    def test_ring_every_node_degree_two(self):
        graph = topology.ring(7)
        assert all(len(graph.symmetric_neighbors(v)) == 2 for v in graph.nodes)


class TestStarAndComplete:
    def test_star(self):
        graph = topology.star(5)
        assert graph.edge_count() == 4
        assert len(graph.symmetric_neighbors(0)) == 4

    def test_star_minimum_size(self):
        with pytest.raises(GraphError):
            topology.star(1)

    def test_complete(self):
        graph = topology.complete(5)
        assert graph.edge_count() == 10
        assert topology.hop_diameter(graph) == 1


class TestGridAndTrees:
    def test_grid_structure(self):
        graph = topology.grid(3, 4)
        assert graph.node_count == 12
        assert graph.edge_count() == 3 * 3 + 2 * 4
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 4)

    def test_grid_invalid_dimensions(self):
        with pytest.raises(GraphError):
            topology.grid(0, 3)

    def test_binary_tree(self):
        graph = topology.binary_tree(3)
        assert graph.node_count == 15
        assert graph.edge_count() == 14
        assert graph.is_connected()

    def test_binary_tree_depth_zero(self):
        graph = topology.binary_tree(0)
        assert graph.node_count == 1

    def test_random_tree_connected_and_acyclic(self):
        graph = topology.random_tree(20, seed=3)
        assert graph.is_connected()
        assert graph.edge_count() == 19

    def test_random_tree_deterministic_with_seed(self):
        a = topology.random_tree(15, seed=7)
        b = topology.random_tree(15, seed=7)
        assert {tuple(e) for e in a.edges()} == {tuple(e) for e in b.edges()}


class TestRandomConnected:
    def test_connected(self):
        graph = topology.random_connected(15, 0.2, seed=1)
        assert graph.is_connected()

    def test_extra_edges_added(self):
        sparse = topology.random_connected(15, 0.0, seed=1)
        dense = topology.random_connected(15, 0.5, seed=1)
        assert dense.edge_count() > sparse.edge_count()

    def test_probability_out_of_range(self):
        with pytest.raises(GraphError):
            topology.random_connected(5, 1.5)


class TestHelpers:
    def test_from_edge_list(self):
        graph = topology.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.edge_count() == 3

    def test_hop_diameter_line(self):
        assert topology.hop_diameter(topology.line(6)) == 5

    def test_hop_diameter_ring(self):
        assert topology.hop_diameter(topology.ring(6)) == 3

    def test_hop_diameter_requires_connected(self):
        graph = topology.from_edge_list(4, [(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            topology.hop_diameter(graph)
