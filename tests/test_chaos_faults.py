"""Unit tests for the chaos fault family (``repro.chaos.faults``).

Covers the pure graph transformations, the node-reset event plumbing in
:class:`DynamicGraph` and the reference engine, the ``DelaySpikeStorm``
windowed delay amplifier, and the fast/vec backends' clean rejection of
node resets (which drives the established reference fallback).
"""

import pytest

from repro.chaos import faults
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.fastsim.engine import UnsupportedScenarioError
from repro.network import topology
from repro.network.dynamic_graph import GraphError, NodeResetEvent
from repro.network.edge import EdgeParams
from repro.sim.delay import (
    DelayError,
    DelayModel,
    DelaySpikeStorm,
    FixedFractionDelay,
    ZeroDelay,
)
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

PARAMS = Parameters(rho=0.01, mu=0.1)
EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)
FAST_INSERTION = insertion_mod.scaled_insertion_duration(0.02)


def run(graph, *, duration, drift=None):
    config = SimulationConfig(
        params=PARAMS,
        dt=0.05,
        duration=duration,
        drift=drift,
        estimate_strategy="toward_observer",
    )
    aopt_config = default_aopt_config(
        graph, config, insertion_duration=FAST_INSERTION
    )
    return run_simulation(graph, aopt_factory(aopt_config), config)


class TestNodeResetEvents:
    def test_schedule_and_pop_in_time_order(self):
        graph = topology.line(3, EDGE)
        graph.schedule_node_reset(9.0, 2, value=1.5)
        graph.schedule_node_reset(4.0, 0)
        pending = graph.pending_node_resets()
        assert pending == [NodeResetEvent(4.0, 0, 0.0), NodeResetEvent(9.0, 2, 1.5)]
        popped = graph.pop_node_resets_until(5.0)
        assert popped == [NodeResetEvent(4.0, 0, 0.0)]
        assert graph.pending_node_resets() == [NodeResetEvent(9.0, 2, 1.5)]

    def test_unknown_node_rejected(self):
        graph = topology.line(3, EDGE)
        with pytest.raises(GraphError):
            graph.schedule_node_reset(1.0, 99)

    def test_copy_carries_pending_resets(self):
        graph = topology.line(3, EDGE)
        graph.schedule_node_reset(5.0, 1)
        clone = graph.copy()
        assert clone.pending_node_resets() == graph.pending_node_resets()
        clone.pop_node_resets_until(10.0)
        # The copy is independent: draining it leaves the original intact.
        assert graph.pending_node_resets()


class TestEngineNodeReset:
    def test_reset_restarts_clocks_from_value(self):
        graph = topology.line(3, EDGE)
        graph.schedule_node_reset(5.0, 1, value=0.0)
        result = run(graph, duration=10.0)
        # Unit rates (no drift): the reborn node's hardware clock restarts
        # from zero at t=5 and reads ~5 at t=10; survivors read ~10.
        assert result.engine.hardware_value(1) == pytest.approx(5.0, abs=0.2)
        assert result.engine.hardware_value(0) == pytest.approx(10.0, abs=0.2)

    def test_crash_restart_rejoins_and_recovers(self):
        graph = topology.line(4, EDGE)
        scenario, meta = faults.crash_restart(
            graph, EDGE, crash_time=10.0, downtime=5.0, node=2
        )
        result = run(scenario, duration=120.0)
        engine = result.engine
        # Rebirth happened: node 2's hardware clock is younger by ~15.
        assert engine.hardware_value(2) == pytest.approx(105.0, abs=1.0)
        # The reborn node was pulled back up to its neighbors.
        skews = [
            abs(engine.logical_value(2) - engine.logical_value(nbr))
            for nbr in (1, 3)
        ]
        assert max(skews) < 5.0
        assert meta["restart_time"] == 15.0


class TestDelaySpikeStorm:
    def test_storm_windows_repeat(self):
        storm = DelaySpikeStorm(
            ZeroDelay(), period=40.0, width=10.0, start=20.0, factor=4.0
        )
        assert not storm.in_storm(0.0)
        assert not storm.in_storm(19.9)
        assert storm.in_storm(20.0)
        assert storm.in_storm(29.9)
        assert not storm.in_storm(30.0)
        assert storm.in_storm(60.0)  # second window

    def test_amplifies_inside_window_only(self):
        inner = FixedFractionDelay(0.1)
        storm = DelaySpikeStorm(inner, period=40.0, width=10.0, factor=4.0)
        bound = 2.0
        assert storm.delay(0, 1, 5.0, bound) == pytest.approx(0.8)  # 0.2 * 4
        assert storm.delay(0, 1, 15.0, bound) == pytest.approx(0.2)

    def test_amplified_delay_clamps_to_bound(self):
        storm = DelaySpikeStorm(
            FixedFractionDelay(0.9), period=10.0, width=10.0, factor=100.0
        )
        assert storm.delay(0, 1, 0.0, 2.0) == pytest.approx(2.0)

    def test_edge_restriction_is_undirected(self):
        storm = DelaySpikeStorm(
            FixedFractionDelay(0.5),
            period=10.0,
            width=10.0,
            factor=2.0,
            edges=[(3, 2)],
        )
        assert storm.affects(2, 3)
        assert storm.affects(3, 2)
        assert not storm.affects(0, 1)
        assert storm.delay(0, 1, 0.0, 1.0) == pytest.approx(0.5)
        assert storm.delay(2, 3, 0.0, 1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 0.0, "width": 1.0},
            {"period": 10.0, "width": 0.0},
            {"period": 10.0, "width": 11.0},
            {"period": 10.0, "width": 1.0, "start": -1.0},
            {"period": 10.0, "width": 1.0, "factor": -2.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(DelayError):
            DelaySpikeStorm(ZeroDelay(), **kwargs)

    def test_inner_must_be_a_delay_model(self):
        with pytest.raises(DelayError):
            DelaySpikeStorm(lambda *a: 0.0, period=10.0, width=1.0)
        assert isinstance(DelaySpikeStorm(ZeroDelay(), period=1.0, width=0.5), DelayModel)


class TestCorrelatedMassChurn:
    def test_victims_lose_all_edges_together(self):
        graph = topology.line(6, EDGE)
        scenario, meta = faults.correlated_mass_churn(
            graph,
            EDGE,
            horizon=100.0,
            victims=[2, 3],
            period=60.0,
            outage=10.0,
            start=20.0,
        )
        assert meta["victims"] == [2, 3]
        # Edges incident to 2 or 3 on a line: (1,2), (2,3), (3,4) -- the
        # victim-victim edge is listed exactly once.
        assert sorted(tuple(e) for e in meta["churned_edges"]) == [
            (1, 2), (2, 3), (3, 4),
        ]
        # Two cycles fit before the horizon: [20, 30] and [80, 90].
        assert meta["outage_windows"] == [[20.0, 30.0], [80.0, 90.0]]
        # The transformation is pure: the input graph has no events.
        assert not graph.pending_events()

    def test_sampled_victims_are_deterministic_in_seed(self):
        graph = topology.ring(8, EDGE)
        _, meta_a = faults.correlated_mass_churn(
            graph, EDGE, horizon=50.0, k=3, seed=7
        )
        _, meta_b = faults.correlated_mass_churn(
            graph, EDGE, horizon=50.0, k=3, seed=7
        )
        assert meta_a["victims"] == meta_b["victims"]
        assert len(meta_a["victims"]) == 3

    def test_validation(self):
        graph = topology.line(4, EDGE)
        with pytest.raises(GraphError):
            faults.correlated_mass_churn(graph, EDGE, horizon=50.0, outage=0.0)
        with pytest.raises(GraphError):
            faults.correlated_mass_churn(
                graph, EDGE, horizon=50.0, period=5.0, outage=10.0
            )
        with pytest.raises(GraphError):
            faults.correlated_mass_churn(graph, EDGE, horizon=50.0, k=4)
        with pytest.raises(GraphError):
            faults.correlated_mass_churn(
                graph, EDGE, horizon=50.0, victims=[0, 1, 2, 3]
            )


class TestPartitionThenHeal:
    def test_line_half_split_cuts_exactly_the_middle_edge(self):
        graph = topology.line(6, EDGE)
        scenario, meta = faults.partition_then_heal(
            graph, EDGE, split_time=10.0, heal_time=40.0
        )
        assert meta["cut_edges"] == [[2, 3]]
        assert meta["partition_sizes"] == [3, 3]
        assert scenario.pending_events()

    def test_star_split_isolates_the_leaves_from_the_hub_side(self):
        graph = topology.star(5, EDGE)  # hub 0, leaves 1..4
        _, meta = faults.partition_then_heal(
            graph, EDGE, split_time=5.0, heal_time=15.0, split_fraction=0.4
        )
        # Cut at index 2: {0, 1} vs {2, 3, 4}; the crossing edges are the
        # hub's spokes into the upper set.
        assert sorted(tuple(e) for e in meta["cut_edges"]) == [(0, 2), (0, 3), (0, 4)]

    def test_validation(self):
        graph = topology.line(4, EDGE)
        with pytest.raises(GraphError):
            faults.partition_then_heal(graph, EDGE, split_time=10.0, heal_time=10.0)
        with pytest.raises(GraphError):
            faults.partition_then_heal(
                graph, EDGE, split_time=1.0, heal_time=2.0, split_fraction=1.5
            )


class TestCrashRestart:
    def test_defaults_to_the_middle_node(self):
        graph = topology.line(5, EDGE)
        scenario, meta = faults.crash_restart(graph, EDGE, crash_time=10.0)
        assert meta["crashed_node"] == 2
        assert meta["restart_time"] == 20.0
        assert sorted(tuple(e) for e in meta["dropped_edges"]) == [(1, 2), (2, 3)]
        resets = scenario.pending_node_resets()
        assert len(resets) == 1
        assert resets[0].time == 20.0
        assert resets[0].node == 2

    def test_validation(self):
        graph = topology.line(4, EDGE)
        with pytest.raises(GraphError):
            faults.crash_restart(graph, EDGE, crash_time=1.0, downtime=0.0)
        with pytest.raises(GraphError):
            faults.crash_restart(graph, EDGE, crash_time=1.0, node=99)


class TestBackendGate:
    """Backends without reset support must refuse, not silently ignore."""

    def test_fast_backend_rejects_pending_node_resets(self):
        from repro.fastsim.backend import get_backend

        graph = topology.line(4, EDGE)
        scenario, _ = faults.crash_restart(graph, EDGE, crash_time=5.0, downtime=2.0)
        config = SimulationConfig(params=PARAMS, dt=0.05, duration=10.0)
        aopt_config = default_aopt_config(
            scenario, config, insertion_duration=FAST_INSERTION
        )
        with pytest.raises(UnsupportedScenarioError):
            get_backend("fast").build(
                scenario, aopt_factory(aopt_config), config
            )

    def test_executor_falls_back_to_reference_with_identical_result(self, tmp_path):
        import dataclasses

        from repro.experiments import registry, scenario as named_scenario
        from repro.experiments.executor import ResultCache, run_sweep

        spec = named_scenario(
            "chaos_crash_restart_line", sim={"duration": 12.0}
        )
        ref = dataclasses.replace(spec, backend="reference")
        fast = dataclasses.replace(spec, backend="fast")
        cache = ResultCache(tmp_path / "cache")
        runs, stats = run_sweep([ref, fast], cache=cache, use_cache=False)
        assert stats.fallbacks == 1
        assert runs[1].requested_backend == "fast"
        assert runs[1].spec.backend == "reference"
        # The fallback re-ran the same materialised scenario: results agree
        # bit-for-bit because seeds derive from the backend-free hash.
        assert (
            runs[0].summary.final_global_skew
            == runs[1].summary.final_global_skew
        )
