"""Watchdog observer semantics: firing, silence, and backend agreement.

Three layers:

* unit -- synthetic samples through a hand-built pipeline, pinning the
  edge-trigger / fire-once semantics and the telemetry side channel;
* adversarial -- a ramped-skew sample stream must fire the global-skew
  watchdog (and only it);
* clean end-to-end -- on the paper's scenarios the gradient-bound watchdog
  stays silent, the convergence/stabilization watchdogs fire, and all
  watchdog payloads agree bit-for-bit across the three backends.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import Parameters
from repro.experiments import execute_spec, registry, scenario
from repro.experiments.results import stop_watchdog_for
from repro.fastsim.backend import backend_available
from repro.metrics import (
    OBSERVERS,
    WATCHDOG_NAMES,
    build_pipeline,
    is_watchdog_name,
)
from repro.metrics.watchdogs import MAX_EVENT_RECORDS, Watchdog
from repro.network import topology
from repro.sim.trace import TraceSample

BACKENDS = ["reference", "fast"] + (["vec"] if backend_available("vec") else [])

#: Observer selection exercising every watchdog next to the default set.
ALL_WATCHDOGS = (
    "global_skew",
    "local_skew",
    "convergence_time",
    "mode_counts",
    "stabilization_window",
    "gradient_bound_check",
) + WATCHDOG_NAMES


def line_sample(time, offsets):
    """A TraceSample for a line graph with the given logical offsets."""
    nodes = range(len(offsets))
    return TraceSample(
        time=time,
        logical={i: time + offsets[i] for i in nodes},
        hardware={i: time for i in nodes},
        multipliers={i: 1.0 for i in nodes},
        modes={i: "fast" for i in nodes},
        max_estimates={i: time for i in nodes},
    )


def skew_pipeline(bound=1.0, **kwargs):
    return build_pipeline(
        ("watchdog_global_skew",),
        graph=topology.line(3),
        params=Parameters(),
        global_skew_bound=bound,
        duration=10.0,
        dt=1.0,
        **kwargs,
    )


class TestRegistry:
    def test_watchdogs_are_registered_observers(self):
        assert set(WATCHDOG_NAMES) <= set(OBSERVERS)
        for name in WATCHDOG_NAMES:
            assert is_watchdog_name(name)
            assert issubclass(OBSERVERS[name], Watchdog)
        assert not is_watchdog_name("global_skew")

    def test_stop_watchdog_selection(self):
        plain = scenario("line_scaling", n=4)
        assert stop_watchdog_for(plain, {}) == "watchdog_convergence"
        insertion = scenario("end_to_end_insertion", n=6, insertion_time=10.0)
        meta = registry.build_scenario(insertion).meta
        assert stop_watchdog_for(insertion, meta) == "watchdog_stabilization"


class TestGlobalSkewWatchdogUnit:
    def test_adversarial_ramp_fires_per_excursion(self):
        fired = []
        pipeline = skew_pipeline(
            bound=1.0, sink=lambda event, **f: fired.append((event, f))
        )
        # Two excursions above the ceiling; consecutive violating samples
        # within one excursion must not re-fire.
        for t, skew in enumerate([0.5, 1.5, 2.0, 0.5, 3.0, 0.2]):
            pipeline.observe_sample(line_sample(float(t), [0.0, 0.0, skew]))
        payload = pipeline.finalize().payloads["watchdog_global_skew"]
        assert payload["applicable"]
        assert payload["fired"] == 2
        assert payload["first_fired"] == 1.0
        assert payload["threshold"] == 1.0
        assert [e["time"] for e in payload["events"]] == [1.0, 4.0]
        events = [f for event, f in fired if event == "watchdog_fired"]
        assert [e["sim_time"] for e in events] == [1.0, 4.0]
        assert all(e["watchdog"] == "watchdog_global_skew" for e in events)

    def test_quiet_run_stays_silent(self):
        pipeline = skew_pipeline(bound=5.0)
        for t in range(4):
            pipeline.observe_sample(line_sample(float(t), [0.0, 0.1, 0.2]))
        payload = pipeline.finalize().payloads["watchdog_global_skew"]
        assert payload["fired"] == 0
        assert payload["first_fired"] is None
        assert payload["events"] == []

    def test_inapplicable_without_a_bound(self):
        pipeline = skew_pipeline(bound=None)
        pipeline.observe_sample(line_sample(0.0, [0.0, 0.0, 99.0]))
        payload = pipeline.finalize().payloads["watchdog_global_skew"]
        assert payload == {"applicable": False}

    def test_event_records_are_capped_but_counter_is_exact(self):
        pipeline = skew_pipeline(bound=1.0)
        for t in range(2 * (MAX_EVENT_RECORDS + 10)):
            # Alternate above/below the ceiling: every odd sample fires.
            skew = 2.0 if t % 2 else 0.0
            pipeline.observe_sample(line_sample(float(t), [0.0, 0.0, skew]))
        payload = pipeline.finalize().payloads["watchdog_global_skew"]
        assert payload["fired"] == MAX_EVENT_RECORDS + 10
        assert len(payload["events"]) == MAX_EVENT_RECORDS

    def test_armed_watchdog_requests_stop_on_first_fire(self):
        pipeline = build_pipeline(
            ("watchdog_global_skew",),
            graph=topology.line(3),
            params=Parameters(),
            global_skew_bound=1.0,
            duration=10.0,
            dt=1.0,
            stop_on="watchdog_global_skew",
        )
        pipeline.observe_sample(line_sample(0.0, [0.0, 0.0, 0.5]))
        assert not pipeline.stop_requested
        pipeline.observe_sample(line_sample(1.0, [0.0, 0.0, 2.0]))
        assert pipeline.stop_requested
        assert pipeline.watchdogs_fired == {"watchdog_global_skew": 1}


class TestConvergenceWatchdogUnit:
    def test_fires_once_at_first_halving(self):
        pipeline = build_pipeline(
            ("watchdog_convergence",),
            graph=topology.line(3),
            params=Parameters(),
            duration=10.0,
            dt=1.0,
        )
        for t, skew in enumerate([4.0, 3.0, 2.0, 1.0, 2.0, 1.5]):
            pipeline.observe_sample(line_sample(float(t), [0.0, 0.0, skew]))
        payload = pipeline.finalize().payloads["watchdog_convergence"]
        assert payload["threshold"] == 2.0
        assert payload["fired"] == 1
        assert payload["first_fired"] == 2.0

    def test_zero_initial_skew_never_fires(self):
        pipeline = build_pipeline(
            ("watchdog_convergence",),
            graph=topology.line(3),
            params=Parameters(),
            duration=10.0,
            dt=1.0,
        )
        for t in range(4):
            pipeline.observe_sample(line_sample(float(t), [0.0, 0.0, 0.0]))
        payload = pipeline.finalize().payloads["watchdog_convergence"]
        assert payload["threshold"] is None
        assert payload["fired"] == 0


class TestCleanScenariosAcrossBackends:
    """On the paper's scenarios the algorithm honors its proven bounds, so
    the violation watchdogs must stay silent -- on every backend, with
    bit-identical payloads."""

    @pytest.fixture(scope="class")
    def payloads(self):
        # Default duration: long enough for convergence to actually happen.
        base = scenario("line_scaling", n=6).with_observers(*ALL_WATCHDOGS)
        return {
            backend: execute_spec(base.with_backend(backend))
            for backend in BACKENDS
        }

    def test_gradient_bound_watchdog_stays_silent(self, payloads):
        for backend in BACKENDS:
            payload = payloads[backend]["observers"]["observers"]
            gradient = payload["watchdog_gradient_bound"]
            assert gradient["applicable"], backend
            assert gradient["fired"] == 0, backend
            # ... and the passive checker agrees there were no violations.
            assert payload["gradient_bound_check"]["violations"] == 0

    def test_global_skew_watchdog_stays_silent(self, payloads):
        for backend in BACKENDS:
            skew = payloads[backend]["observers"]["observers"]["watchdog_global_skew"]
            assert skew["applicable"], backend
            assert skew["fired"] == 0, backend

    def test_watchdog_payloads_identical_across_backends(self, payloads):
        reference = payloads["reference"]["observers"]["observers"]
        for backend in BACKENDS[1:]:
            other = payloads[backend]["observers"]["observers"]
            for name in WATCHDOG_NAMES:
                assert reference[name] == other[name], (backend, name)

    def test_convergence_watchdog_fires_identically(self, payloads):
        for backend in BACKENDS:
            conv = payloads[backend]["observers"]["observers"]["watchdog_convergence"]
            assert conv["fired"] >= 1, backend
            assert (
                conv["first_fired"]
                == payloads["reference"]["observers"]["observers"][
                    "watchdog_convergence"
                ]["first_fired"]
            )


class TestStabilizationWatchdog:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fires_after_insertion(self, backend):
        # Default duration: the Theta(G/mu) insertion window must fit.
        spec = scenario(
            "end_to_end_insertion", n=6, insertion_time=10.0, backend=backend
        ).with_observers(*ALL_WATCHDOGS)
        payload = execute_spec(spec)["observers"]["observers"]
        stab = payload["watchdog_stabilization"]
        assert stab["applicable"]
        assert stab["fired"] == 1
        assert stab["first_fired"] >= 10.0
        # The passive window observer and the live watchdog agree on when
        # stabilization happened.
        window = payload["stabilization_window"]
        if window.get("stabilized"):
            assert stab["first_fired"] == pytest.approx(
                10.0 + window["elapsed_since_event"]
            )

    def test_inapplicable_on_static_scenarios(self):
        spec = scenario("line_scaling", n=4, sim={"duration": 10.0})
        spec = spec.with_observers("global_skew", "watchdog_stabilization")
        payload = execute_spec(spec)["observers"]["observers"]
        assert payload["watchdog_stabilization"] == {"applicable": False}
