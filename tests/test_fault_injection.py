"""Fault-injection and heterogeneous-network integration tests.

These tests stress conditions the analysis allows but the happy path rarely
exercises: messages lost when edges disappear mid-flight, repeatedly flapping
edges, partitions that heal, and networks whose edges have very different
uncertainties (the weighted gradient bound of the paper).
"""

import pytest

from repro.analysis import gradient, skew
from repro.core.algorithm import aopt_factory
from repro.core import insertion as insertion_mod
from repro.core.parameters import Parameters
from repro.network import paths, topology
from repro.network.edge import EdgeParams
from repro.sim.drift import TwoGroupAdversary, half_split
from repro.sim.runner import SimulationConfig, default_aopt_config, run_simulation

PARAMS = Parameters(rho=0.01, mu=0.1)
EDGE = EdgeParams(epsilon=1.0, tau=0.5, delay=2.0)
FAST_INSERTION = insertion_mod.scaled_insertion_duration(0.02)


def run(graph, *, duration, drop_messages=False, global_skew_bound=None, drift=None):
    config = SimulationConfig(
        params=PARAMS,
        dt=0.05,
        duration=duration,
        drift=drift,
        estimate_strategy="toward_observer",
        drop_messages_on_edge_loss=drop_messages,
    )
    aopt_config = default_aopt_config(
        graph,
        config,
        global_skew_bound=global_skew_bound,
        insertion_duration=FAST_INSERTION,
    )
    return aopt_config, run_simulation(graph, aopt_factory(aopt_config), config)


class TestMessageLoss:
    def test_messages_dropped_on_edge_loss_do_not_break_safety(self):
        graph = topology.line(5, EDGE)
        # The middle edge flaps several times; in-flight messages are dropped.
        for t in (10.0, 30.0, 50.0):
            graph.schedule_edge_down(t, 2, 3)
            graph.schedule_edge_up(t + 5.0, 2, 3, params=EDGE)
        fast, slow = half_split(graph.nodes)
        aopt_config, result = run(
            graph,
            duration=120.0,
            drop_messages=True,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        )
        assert result.engine.transport.dropped_count >= 0
        assert result.trace.max_global_skew() <= aopt_config.global_skew.value(0.0)
        for node in result.engine.nodes:
            assert result.engine.algorithm(node).levels.subset_chain_holds()

    def test_flapping_edge_never_gets_stuck_half_inserted(self):
        graph = topology.line(4, EDGE)
        graph.schedule_edge_up(5.0, 0, 3, params=EDGE)
        graph.schedule_edge_down(6.0, 0, 3)
        graph.schedule_edge_up(20.0, 0, 3, params=EDGE)
        _, result = run(graph, duration=400.0, global_skew_bound=20.0)
        # The second appearance must eventually complete the insertion.
        assert result.engine.algorithm(0).levels.is_fully_inserted(3)
        assert result.engine.algorithm(3).levels.is_fully_inserted(0)


class TestPartitionAndHeal:
    def test_partition_heals_and_skew_recovers(self):
        graph = topology.line(6, EDGE)
        graph.schedule_edge_down(10.0, 2, 3)
        graph.schedule_edge_up(60.0, 2, 3, params=EDGE)
        fast, slow = half_split(graph.nodes)
        aopt_config, result = run(
            graph,
            duration=700.0,
            global_skew_bound=30.0,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        )
        # While partitioned the two halves drift apart, but after healing the
        # final skew across the healed edge is far below the partition-era peak.
        peak = skew.max_skew_between(result.trace, 2, 3, start=10.0)
        final = result.trace.final().skew(2, 3)
        assert final < peak
        assert result.engine.algorithm(2).levels.is_fully_inserted(3)

    def test_clocks_respect_envelope_through_partition(self):
        graph = topology.line(4, EDGE)
        graph.schedule_edge_down(5.0, 1, 2)
        _, result = run(graph, duration=50.0, global_skew_bound=20.0)
        duration = result.trace.final().time
        for node in result.engine.nodes:
            value = result.engine.logical_value(node)
            assert PARAMS.alpha * duration - 1e-6 <= value <= PARAMS.beta * duration + 1e-6


class TestHeterogeneousEdges:
    def test_weighted_gradient_bound_holds(self):
        # A line whose edges alternate between precise and very noisy links.
        graph = topology.line(7)
        precise = EdgeParams(epsilon=0.25, tau=0.1, delay=0.5)
        noisy = EdgeParams(epsilon=2.0, tau=1.0, delay=4.0)
        for i in range(6):
            graph.set_edge_params(i, i + 1, precise if i % 2 == 0 else noisy)
        fast, slow = half_split(graph.nodes)
        aopt_config, result = run(
            graph,
            duration=150.0,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        )
        violations = gradient.check_trace(
            result.trace, result.engine.graph, aopt_config.global_skew.value(0.0), PARAMS
        )
        assert violations == []

    def test_precise_edges_carry_less_skew_than_noisy_ones(self):
        graph = topology.line(7)
        precise = EdgeParams(epsilon=0.25, tau=0.1, delay=0.5)
        noisy = EdgeParams(epsilon=2.0, tau=1.0, delay=4.0)
        for i in range(6):
            graph.set_edge_params(i, i + 1, precise if i % 2 == 0 else noisy)
        fast, slow = half_split(graph.nodes)
        _, result = run(
            graph,
            duration=250.0,
            drift=TwoGroupAdversary(PARAMS.rho, fast, slow),
        )
        start = skew.steady_state_window(result.trace, 0.5)[0]
        precise_edges = [(i, i + 1) for i in range(0, 6, 2)]
        noisy_edges = [(i, i + 1) for i in range(1, 6, 2)]
        precise_skew = skew.max_local_skew(result.trace, precise_edges, start=start)
        noisy_skew = skew.max_local_skew(result.trace, noisy_edges, start=start)
        # The permissible skew is proportional to kappa_e, and the algorithm
        # indeed keeps the precise links tighter than the noisy ones.
        assert precise_skew <= noisy_skew

    def test_kappa_weighted_distance_used_in_bound(self):
        graph = topology.line(3)
        graph.set_edge_params(0, 1, EdgeParams(epsilon=0.25, tau=0.1))
        graph.set_edge_params(1, 2, EdgeParams(epsilon=2.0, tau=1.0))
        weight = paths.kappa_weight(graph, PARAMS)
        assert weight(0, 1) < weight(1, 2)
        total = paths.weighted_distance(graph, 0, 2, weight)
        assert total == pytest.approx(weight(0, 1) + weight(1, 2))
