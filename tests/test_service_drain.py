"""Graceful shutdown of the sweep service: drain semantics end to end.

Direct :meth:`SweepService.drain` calls, the HTTP 503 surface during a
drain, :meth:`SweepServer.shutdown` with a drain timeout, and the real
daemon under SIGTERM with ``--drain-timeout`` (the systemd/docker-stop
path).
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.experiments import scenario
from repro.service import (
    JsonlLog,
    ServiceConfig,
    ServiceUnavailableError,
    SweepServer,
    SweepService,
)
from repro.service.client import ClientError, ServiceClient

TINY_SIM = {"duration": 4.0, "dt": 0.1}


def tiny_spec(n=4, **overrides):
    return scenario("quickstart_line", n=n, sim=dict(TINY_SIM), **overrides)


class TestDrainDirect:
    def test_drain_fails_queued_jobs_with_clear_status(self, tmp_path):
        # Never started: submissions stay queued, so the drain must fail
        # them all -- deterministically, no worker race.
        service = SweepService(tmp_path / "cache")
        job_a = service.submit([tiny_spec()])
        job_b = service.submit([tiny_spec(n=5)])
        summary = service.drain(timeout=5.0)
        assert summary == {
            "failed_queued_jobs": 2,
            "stuck_workers": 0,
            "clean": True,
        }
        for job in (job_a, job_b):
            assert job.state == "failed"
            assert "shutting down" in job.error
            assert all(entry["state"] == "failed" for entry in job.progress)

    def test_submit_during_drain_is_rejected(self, tmp_path):
        service = SweepService(tmp_path / "cache")
        service.drain(timeout=1.0)
        with pytest.raises(ServiceUnavailableError):
            service.submit([tiny_spec()])

    def test_drain_is_idempotent_and_stop_is_a_noop_after(self, tmp_path):
        service = SweepService(tmp_path / "cache").start()
        first = service.drain(timeout=5.0)
        assert first["clean"]
        second = service.drain(timeout=1.0)
        assert second["failed_queued_jobs"] == 0
        service.stop()  # must not raise or hang

    def test_inflight_jobs_finish_within_the_drain_bound(self, tmp_path):
        service = SweepService(
            tmp_path / "cache", config=ServiceConfig(workers=2)
        ).start()
        job = service.submit([tiny_spec()])
        job.wait(timeout=60.0)
        assert job.state == "done"
        summary = service.drain(timeout=10.0)
        assert summary["clean"]
        assert summary["stuck_workers"] == 0

    def test_drain_writes_lifecycle_events_and_flushes_the_log(self, tmp_path):
        log_path = tmp_path / "svc.jsonl"
        service = SweepService(tmp_path / "cache", log=JsonlLog(log_path)).start()
        service.submit([tiny_spec()])
        service.drain(timeout=10.0)
        events = [
            json.loads(line)["event"]
            for line in log_path.read_text().splitlines()
        ]
        assert "service_draining" in events
        assert "service_drained" in events
        drained = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
            if json.loads(line)["event"] == "service_drained"
        ]
        assert drained[0]["clean"] is True

    def test_restart_after_drain_accepts_submissions_again(self, tmp_path):
        service = SweepService(tmp_path / "cache").start()
        service.drain(timeout=5.0)
        service.start()
        job = service.submit([tiny_spec()])
        job.wait(timeout=60.0)
        assert job.state == "done"
        service.stop()


class TestDrainOverHttp:
    def test_post_during_drain_returns_503(self, tmp_path):
        service = SweepService(tmp_path / "cache", config=ServiceConfig(workers=1))
        server = SweepServer(service, "127.0.0.1", 0)
        server.start_background()
        try:
            client = ServiceClient(server.url, timeout=10.0, retries=0)
            service.drain(timeout=5.0)
            with pytest.raises(ClientError) as excinfo:
                client.submit([tiny_spec()])
            assert excinfo.value.status == 503
            assert "draining" in str(excinfo.value)
            # Reads stay up while draining: health and results still serve.
            assert client.healthz()["status"] == "ok"
        finally:
            server.shutdown()

    def test_server_shutdown_with_drain_timeout(self, tmp_path):
        service = SweepService(tmp_path / "cache", config=ServiceConfig(workers=1))
        server = SweepServer(service, "127.0.0.1", 0)
        server.start_background()
        client = ServiceClient(server.url, timeout=10.0)
        job = client.submit([tiny_spec()])
        client.wait(job["id"], timeout=60.0)
        server.shutdown(drain_timeout=10.0)
        assert not service._running
        # Shutdown is idempotent.
        server.shutdown(drain_timeout=1.0)


class TestServeSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        log_file = tmp_path / "svc.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--log-file",
                str(log_file),
                "--drain-timeout",
                "10",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stderr.readline()
            assert "sweep service on" in line, line
            url = line.strip().rsplit(" ", 1)[-1]
            client = ServiceClient(url, timeout=10.0)
            client.wait_until_ready(timeout=20.0)
            job = client.submit([tiny_spec()])
            client.wait(job["id"], timeout=60.0)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == 0, stderr
        assert "SIGTERM" in stderr
        assert "draining" in stderr
        events = [
            json.loads(line)["event"] for line in log_file.read_text().splitlines()
        ]
        assert "service_draining" in events
        assert "service_drained" in events
