"""The packaged chaos scenario pack: load, lint, register, run.

Every shipped ``*.json`` file must parse, validate cleanly, register as a
first-class scenario, and actually run (shortened) on the reference
backend.  The adversarial shifting scenarios additionally run at full
length so the measured skew can be held against the analytic lower bound
-- the acceptance check of the chaos pack.
"""

import dataclasses
import json

import pytest

from repro.chaos import adversarial, loader, validate
from repro.experiments import registry, scenario
from repro.experiments.executor import execute_spec
from repro.experiments.spec import SpecError

PACK_FILES, PACK_ERRORS = loader.load_packaged_scenarios()
PACK_NAMES = [sf.name for sf in PACK_FILES]

#: One cheap representative per non-adversarial family for the smoke run
#: (adversarial files get their own full-length tests below).
SMOKE_DURATION = 6.0


class TestPackLoads:
    def test_pack_ships_at_least_twenty_files(self):
        assert len(PACK_FILES) >= 20

    def test_pack_loads_without_errors(self):
        assert PACK_ERRORS == []
        assert loader.LOAD_ERRORS == []

    def test_every_family_is_represented(self):
        families = {sf.name: sf.family for sf in PACK_FILES}
        assert set(families.values()) == set(loader.FAMILIES)

    def test_all_files_register_as_scenarios(self):
        for sf in PACK_FILES:
            assert sf.name in registry.SCENARIOS
            builder = registry.SCENARIOS.get(sf.name)
            assert builder.chaos_family == sf.family
            assert f"[chaos/{sf.family}]" in builder.__doc__

    def test_registered_builder_reproduces_the_file_spec(self):
        for sf in PACK_FILES:
            assert scenario(sf.name).content_hash() == sf.spec.content_hash()

    def test_builders_accept_sim_overrides_and_reject_others(self):
        spec = scenario(PACK_NAMES[0], sim={"duration": 3.0})
        assert spec.sim["duration"] == 3.0
        # Untouched sim keys survive the merge.
        assert spec.sim["dt"] == PACK_FILES[0].spec.sim["dt"]
        with pytest.raises(SpecError):
            scenario(PACK_NAMES[0], topology=("ring", {"n": 4}))

    def test_comment_lines_are_stripped(self):
        text = "# header\n{\n# inline full-line comment\n\"a\": 1}\n"
        assert loader.parse_commented_json(text) == {"a": 1}


class TestValidateLint:
    def test_packaged_pack_is_clean(self):
        report = validate.validate_pack()
        assert report.ok, "\n".join(report.describe())
        assert report.problem_count == 0
        assert len(report.files) == len(PACK_FILES)

    def test_broken_user_file_is_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json", encoding="utf-8")
        good = {
            "chaos_format": 1,
            "name": "user_chaos_ok",
            "family": "crash_restart",
            "description": "valid user scenario",
            "spec": PACK_FILES[0].spec.to_dict(),
        }
        (tmp_path / "good.json").write_text(json.dumps(good), encoding="utf-8")
        report = validate.validate_pack([tmp_path])
        assert not report.ok
        assert any("broken.json" in problem for problem in report.global_problems)
        # The good user file passes: schema + build, registration not required.
        by_name = {f.name: f for f in report.files}
        assert by_name["user_chaos_ok"].ok

    def test_missing_watchdog_observer_is_a_problem(self, tmp_path):
        payload = {
            "chaos_format": 1,
            "name": "user_chaos_no_watchdog",
            "family": "crash_restart",
            "spec": dict(PACK_FILES[0].spec.to_dict(), observers=["global_skew"]),
        }
        (tmp_path / "no_watchdog.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        report = validate.validate_pack([tmp_path])
        by_name = {f.name: f for f in report.files}
        problems = by_name["user_chaos_no_watchdog"].problems
        assert any("watchdog" in problem for problem in problems)

    def test_describe_renders_a_summary_line(self):
        lines = validate.validate_pack().describe()
        assert lines[-1].endswith("problem(s)")
        assert any(line.startswith("ok") for line in lines)


class TestScenarioSmokeRuns:
    """Every packaged file runs (shortened) on the reference backend."""

    @pytest.mark.parametrize("name", PACK_NAMES)
    def test_runs_shortened_on_reference(self, name):
        spec = scenario(name, sim={"duration": SMOKE_DURATION})
        payload = execute_spec(spec)
        summary = payload["summary"]
        assert summary["node_count"] >= 2
        assert summary["final_global_skew"] is not None

    @pytest.mark.parametrize(
        "name",
        [
            "chaos_mass_churn_line",
            "chaos_partition_line_half",
            "chaos_delay_storm_line",
        ],
    )
    def test_fast_backend_matches_reference_exactly(self, name):
        """Edge churn and delay storms are fast-backend compatible: the
        payloads must agree bit-for-bit (same differential contract as the
        built-in scenario equivalence suite)."""
        spec = scenario(name, sim={"duration": SMOKE_DURATION})
        reference = execute_spec(spec.with_backend("reference"))
        fast = execute_spec(spec.with_backend("fast"))
        assert reference["trace"] == fast["trace"]
        assert reference["summary"] == fast["summary"]

    def test_crash_restart_degrades_cleanly_off_reference(self, tmp_path):
        from repro.experiments.executor import ResultCache, run_sweep

        spec = scenario("chaos_crash_restart_line", sim={"duration": SMOKE_DURATION})
        fast = dataclasses.replace(spec, backend="fast")
        cache = ResultCache(tmp_path / "cache")
        runs, stats = run_sweep([fast], cache=cache, use_cache=False)
        assert stats.fallbacks == 1
        assert runs[0].requested_backend == "fast"
        assert runs[0].spec.backend == "reference"

    def test_strict_backend_refuses_instead_of_falling_back(self, tmp_path):
        from repro.experiments.executor import ResultCache, run_sweep
        from repro.fastsim.engine import UnsupportedScenarioError

        spec = scenario("chaos_crash_restart_line", sim={"duration": SMOKE_DURATION})
        fast = dataclasses.replace(spec, backend="fast")
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(UnsupportedScenarioError):
            run_sweep([fast], cache=cache, use_cache=False, strict_backend=True)


class TestAdversarialShifting:
    def test_files_match_their_derivation_exactly(self):
        by_name = {sf.name: sf for sf in PACK_FILES}
        for name in adversarial.PACKAGED_VARIANTS:
            sf = by_name[name]
            expected = adversarial.expected_spec(name)
            assert expected.content_hash() == sf.spec.content_hash()
            assert sf.family == "adversarial_shifting"

    def test_expectations_carry_the_analytic_bound(self):
        by_name = {sf.name: sf for sf in PACK_FILES}
        accumulate = by_name["chaos_shifting_accumulate_n6"]
        assert accumulate.expect["min_final_global_skew"] == pytest.approx(
            accumulate.spec.notes["expected_lower_bound"]
        )
        aopt = by_name["chaos_shifting_aopt_n6"]
        assert aopt.expect["max_final_global_skew"] == pytest.approx(
            aopt.spec.notes["global_skew_bound"]
        )

    def test_accumulation_run_exceeds_the_lower_bound(self):
        """The acceptance check: measured skew >= analytic Omega(D) bound.

        ``hardware_only`` applies no correction, so the final skew is
        exactly what the ramp adversary built; at ``duration_factor *
        t_min`` it must clear the bound with margin.
        """
        by_name = {sf.name: sf for sf in PACK_FILES}
        sf = by_name["chaos_shifting_accumulate_n6"]
        payload = execute_spec(sf.spec)
        measured = payload["summary"]["final_global_skew"]
        assert measured >= sf.expect["min_final_global_skew"]
        # The construction is exact: 2 * rho * duration.
        rho = sf.spec.params["rho"]
        duration = sf.spec.sim["duration"]
        assert measured == pytest.approx(2.0 * rho * duration, rel=1e-6)

    def test_aopt_holds_skew_below_its_bound_under_the_adversary(self):
        by_name = {sf.name: sf for sf in PACK_FILES}
        sf = by_name["chaos_shifting_aopt_n6"]
        # A prefix of the full run suffices for the upper bound: the
        # envelope must hold at *all* times, so any duration is a valid
        # check and the short one keeps the suite fast.
        spec = scenario(sf.name, sim={"duration": 60.0})
        payload = execute_spec(spec)
        assert (
            payload["summary"]["max_global_skew"]
            <= sf.expect["max_final_global_skew"]
        )

    def test_adversarial_specs_fall_back_from_fast_bitwise_identically(self):
        by_name = {sf.name: sf for sf in PACK_FILES}
        sf = by_name["chaos_shifting_accumulate_n6"]
        short = scenario(sf.name, sim={"duration": 20.0})
        from repro.experiments.executor import run_sweep

        runs, stats = run_sweep(
            [short, dataclasses.replace(short, backend="fast")],
            use_cache=False,
        )
        assert stats.fallbacks == 1
        assert (
            runs[0].summary.final_global_skew
            == runs[1].summary.final_global_skew
        )

    def test_shifting_spec_validates_inputs(self):
        with pytest.raises(SpecError):
            adversarial.shifting_spec("x", n=6, algorithm="nope")
        with pytest.raises(SpecError):
            adversarial.shifting_spec("x", n=6, duration_factor=1.0)

    def test_render_round_trips_through_the_loader(self, tmp_path):
        name = "chaos_shifting_accumulate_n6"
        path = tmp_path / f"{name}.json"
        path.write_text(adversarial.render_file(name), encoding="utf-8")
        sf = loader.load_scenario_file(path)
        assert sf.name == name
        assert sf.spec.content_hash() == adversarial.expected_spec(name).content_hash()
