"""Tests for repro.core.triggers (Definitions 4.5 - 4.7 and Lemma 5.3)."""

import pytest

from repro.core.parameters import Parameters
from repro.core.triggers import (
    NeighborView,
    evaluate_triggers,
    fast_trigger_at_level,
    fast_trigger_level,
    slow_trigger_at_level,
    slow_trigger_level,
    views_at_level,
)


def make_view(params, neighbor, estimate, *, level=5, epsilon=1.0, tau=0.5):
    kappa = params.kappa_for(epsilon, tau)
    delta = params.delta_for(kappa, epsilon, tau)
    return NeighborView(
        neighbor=neighbor,
        estimate=estimate,
        kappa=kappa,
        epsilon=epsilon,
        tau=tau,
        delta=delta,
        level=level,
    )


@pytest.fixture
def kappa(params):
    return params.kappa_for(1.0, 0.5)


class TestNeighborView:
    def test_validation(self, params):
        with pytest.raises(ValueError):
            NeighborView(1, 0.0, kappa=0.0, epsilon=1.0, tau=0.5, delta=0.1, level=1)
        with pytest.raises(ValueError):
            NeighborView(1, 0.0, kappa=4.0, epsilon=-1.0, tau=0.5, delta=0.1, level=1)
        with pytest.raises(ValueError):
            NeighborView(1, 0.0, kappa=4.0, epsilon=1.0, tau=0.5, delta=0.1, level=-1)

    def test_views_at_level_filters(self, params):
        views = [make_view(params, 1, 0.0, level=1), make_view(params, 2, 0.0, level=3)]
        assert len(views_at_level(views, 1)) == 2
        assert len(views_at_level(views, 2)) == 1
        assert len(views_at_level(views, 4)) == 0


class TestFastTrigger:
    def test_fires_when_neighbor_far_ahead(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical + kappa + 1.0)
        assert fast_trigger_at_level(logical, 1, [view], params)

    def test_does_not_fire_without_neighbor_ahead(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical + kappa / 2)
        assert not fast_trigger_at_level(logical, 1, [view], params)

    def test_blocked_by_neighbor_far_behind(self, params, kappa):
        logical = 100.0
        ahead = make_view(params, 1, logical + kappa + 1.0)
        behind = make_view(params, 2, logical - 2 * kappa)
        assert not fast_trigger_at_level(logical, 1, [ahead, behind], params)

    def test_estimate_error_compensation(self, params, kappa):
        # The trigger fires already when the *estimate* is s*kappa - epsilon
        # ahead, so that the condition on true values is implied.
        logical = 100.0
        view = make_view(params, 1, logical + kappa - 0.9)
        assert fast_trigger_at_level(logical, 1, [view], params)

    def test_higher_level_needs_larger_skew(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical + kappa + 1.0)
        assert fast_trigger_at_level(logical, 1, [view], params)
        assert not fast_trigger_at_level(logical, 2, [view], params)

    def test_no_views_means_no_trigger(self, params):
        assert not fast_trigger_at_level(100.0, 1, [], params)

    def test_level_zero_rejected(self, params, kappa):
        with pytest.raises(ValueError):
            fast_trigger_at_level(100.0, 0, [make_view(params, 1, 100.0)], params)

    def test_fast_trigger_level_returns_smallest(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical + 3 * kappa)
        assert fast_trigger_level(logical, [view], params, max_level=5) == 1


class TestSlowTrigger:
    def test_fires_when_neighbor_far_behind(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical - 2 * kappa)
        assert slow_trigger_at_level(logical, 1, [view], params)

    def test_does_not_fire_without_neighbor_behind(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical - kappa / 2)
        assert not slow_trigger_at_level(logical, 1, [view], params)

    def test_blocked_by_neighbor_far_ahead(self, params, kappa):
        logical = 100.0
        behind = make_view(params, 1, logical - 2 * kappa)
        ahead = make_view(params, 2, logical + 3 * kappa)
        assert not slow_trigger_at_level(logical, 1, [behind, ahead], params)

    def test_no_views_means_no_trigger(self, params):
        assert not slow_trigger_at_level(100.0, 1, [], params)

    def test_slow_trigger_level_returns_smallest(self, params, kappa):
        logical = 100.0
        view = make_view(params, 1, logical - 3 * kappa)
        assert slow_trigger_level(logical, [view], params, max_level=5) == 1

    def test_level_zero_rejected(self, params, kappa):
        with pytest.raises(ValueError):
            slow_trigger_at_level(100.0, 0, [make_view(params, 1, 100.0)], params)


class TestMutualExclusion:
    """Lemma 5.3: fast and slow triggers are never simultaneously satisfied."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_configurations(self, params, seed):
        import random

        rng = random.Random(seed)
        logical = 100.0
        kappa = params.kappa_for(1.0, 0.5)
        views = [
            make_view(
                params,
                i,
                logical + rng.uniform(-6 * kappa, 6 * kappa),
                level=rng.randint(1, 4),
            )
            for i in range(1, 6)
        ]
        fast = fast_trigger_level(logical, views, params, max_level=4)
        slow = slow_trigger_level(logical, views, params, max_level=4)
        assert fast is None or slow is None


class TestEvaluateTriggers:
    def test_slow_takes_precedence(self, params, kappa):
        logical = 100.0
        behind = make_view(params, 1, logical - 2 * kappa)
        decision = evaluate_triggers(logical, logical, [behind], params, max_level=4)
        assert decision.mode == "slow"
        assert decision.level == 1

    def test_fast_trigger_mode(self, params, kappa):
        logical = 100.0
        ahead = make_view(params, 1, logical + 2 * kappa)
        decision = evaluate_triggers(logical, logical + 10, [ahead], params, max_level=4)
        assert decision.mode == "fast"
        assert decision.level == 1

    def test_max_estimate_slow_when_at_max(self, params):
        decision = evaluate_triggers(100.0, 100.0, [], params, max_level=4)
        assert decision.mode == "slow"
        assert "max estimate" in decision.reason

    def test_max_estimate_fast_when_lagging(self, params):
        decision = evaluate_triggers(100.0, 100.0 + 2 * params.iota, [], params, max_level=4)
        assert decision.mode == "fast"

    def test_free_zone_between_max_estimate_triggers(self, params):
        decision = evaluate_triggers(100.0, 100.0 + params.iota / 2, [], params, max_level=4)
        assert decision.mode == "free"
