"""Tests for repro.analysis.stabilization."""

import pytest

from repro.analysis import stabilization
from repro.sim.trace import Trace, TraceSample


def sample(t, values):
    nodes = list(values)
    return TraceSample(
        time=t,
        logical=dict(values),
        hardware=dict(values),
        multipliers={n: 1.0 for n in nodes},
        modes={n: "slow" for n in nodes},
        max_estimates={n: max(values.values()) for n in nodes},
    )


def converging_trace():
    """Skew between nodes 0 and 1 decays linearly from 10 to 0 over 10 time units."""
    trace = Trace(1.0)
    for t in range(16):
        skew = max(0.0, 10.0 - t)
        trace.record(sample(float(t), {0: float(t), 1: float(t) + skew}))
    return trace


class TestStabilizationTime:
    def test_detects_first_stable_crossing(self):
        trace = converging_trace()
        result = stabilization.stabilization_time(
            trace, 0, 1, bound=3.0, event_time=0.0
        )
        assert result.stabilized
        assert result.stabilization_time == pytest.approx(7.0)
        assert result.elapsed_since_event == pytest.approx(7.0)
        assert result.max_skew_after_event == pytest.approx(10.0)
        assert result.final_skew == pytest.approx(0.0)

    def test_event_time_offsets_measurement(self):
        trace = converging_trace()
        result = stabilization.stabilization_time(
            trace, 0, 1, bound=3.0, event_time=5.0
        )
        assert result.elapsed_since_event == pytest.approx(2.0)

    def test_requires_persistent_crossing(self):
        trace = Trace(1.0)
        skews = [5.0, 1.0, 6.0, 1.0, 1.0]
        for t, skew in enumerate(skews):
            trace.record(sample(float(t), {0: float(t), 1: float(t) + skew}))
        result = stabilization.stabilization_time(trace, 0, 1, bound=2.0, event_time=0.0)
        assert result.stabilized
        assert result.stabilization_time == pytest.approx(3.0)

    def test_never_stabilizes(self):
        trace = Trace(1.0)
        for t in range(5):
            trace.record(sample(float(t), {0: 0.0, 1: 10.0}))
        result = stabilization.stabilization_time(trace, 0, 1, bound=1.0, event_time=0.0)
        assert not result.stabilized
        assert result.stabilization_time is None

    def test_dwell_requirement(self):
        trace = converging_trace()
        result = stabilization.stabilization_time(
            trace, 0, 1, bound=0.5, event_time=0.0, dwell=100.0
        )
        assert not result.stabilized

    def test_validation(self):
        trace = converging_trace()
        with pytest.raises(ValueError):
            stabilization.stabilization_time(trace, 0, 1, bound=-1.0, event_time=0.0)
        with pytest.raises(ValueError):
            stabilization.stabilization_time(trace, 0, 1, bound=1.0, event_time=100.0)


class TestGlobalConvergenceAndRate:
    def test_global_skew_convergence_time(self):
        trace = converging_trace()
        t = stabilization.global_skew_convergence_time(trace, bound=4.0)
        assert t == pytest.approx(6.0)

    def test_global_skew_never_converges(self):
        trace = Trace(1.0)
        for t in range(5):
            trace.record(sample(float(t), {0: 0.0, 1: 10.0}))
        assert stabilization.global_skew_convergence_time(trace, bound=1.0) is None

    def test_decrease_rate(self):
        trace = converging_trace()
        rate = stabilization.decrease_rate(trace, start=0.0, end=10.0)
        assert rate == pytest.approx(1.0)

    def test_decrease_rate_insufficient_window(self):
        trace = converging_trace()
        assert stabilization.decrease_rate(trace, start=100.0, end=200.0) is None
