"""Tests for repro.core.parameters."""

import math

import pytest

from repro.core.parameters import DEFAULT_PARAMETERS, ParameterError, Parameters


class TestValidation:
    def test_default_parameters_are_valid(self):
        DEFAULT_PARAMETERS.validate()

    def test_sigma_matches_equation_8(self, params):
        assert params.sigma == pytest.approx((1 - params.rho) * params.mu / (2 * params.rho))

    def test_rho_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            Parameters(rho=0.0).validate()
        with pytest.raises(ParameterError):
            Parameters(rho=1.5).validate()

    def test_mu_above_one_tenth_rejected(self):
        with pytest.raises(ParameterError):
            Parameters(rho=0.001, mu=0.2).validate()

    def test_mu_too_small_for_sigma_rejected(self):
        # mu must exceed 2*rho/(1-rho) for sigma > 1.
        with pytest.raises(ParameterError):
            Parameters(rho=0.05, mu=0.1).validate()

    def test_strict_sigma_enforced_when_requested(self):
        borderline = Parameters(rho=0.02, mu=0.1)  # sigma = 2.45
        borderline.validate()
        with pytest.raises(ParameterError):
            borderline.validate(strict_sigma=True)

    def test_negative_iota_rejected(self):
        with pytest.raises(ParameterError):
            Parameters(iota=-1.0).validate()

    def test_kappa_margin_must_exceed_one(self):
        with pytest.raises(ParameterError):
            Parameters(kappa_margin=1.0).validate()

    def test_delta_fraction_bounds(self):
        with pytest.raises(ParameterError):
            Parameters(delta_fraction=0.0).validate()
        with pytest.raises(ParameterError):
            Parameters(delta_fraction=1.0).validate()

    def test_is_valid_reports_without_raising(self):
        assert Parameters(rho=0.01, mu=0.1).is_valid()
        assert not Parameters(rho=0.05, mu=0.1).is_valid()

    def test_with_mu_and_with_rho_return_copies(self, params):
        changed = params.with_mu(0.08)
        assert changed.mu == 0.08
        assert params.mu == 0.1
        changed = params.with_rho(0.002)
        assert changed.rho == 0.002
        assert params.rho == 0.01


class TestDerivedQuantities:
    def test_rate_envelope(self, params):
        assert params.alpha == pytest.approx(1 - params.rho)
        assert params.beta == pytest.approx((1 + params.rho) * (1 + params.mu))
        assert params.alpha < 1.0 < params.beta

    def test_self_stabilization_rate_positive(self, params):
        assert params.self_stabilization_rate > 0

    def test_self_stabilization_rate_formula(self, params):
        expected = params.mu * (1 - params.rho) - 2 * params.rho
        assert params.self_stabilization_rate == pytest.approx(expected)

    def test_b_constant_satisfies_equation_12_lower_end(self, tight_params):
        assert tight_params.b_constant >= 320 * 2 ** 7

    def test_fast_mode_always_catches_up(self, params):
        # (1 + mu)(1 - rho) > 1 + rho must hold so fast nodes catch slow ones.
        assert (1 + params.mu) * (1 - params.rho) > 1 + params.rho


class TestEdgeQuantities:
    def test_kappa_satisfies_equation_9(self, params):
        epsilon, tau = 1.0, 0.5
        kappa = params.kappa_for(epsilon, tau)
        assert kappa > 4 * (epsilon + params.mu * tau)

    def test_kappa_scales_with_epsilon(self, params):
        assert params.kappa_for(2.0, 0.5) > params.kappa_for(1.0, 0.5)

    def test_kappa_positive_even_for_zero_uncertainty(self, params):
        assert params.kappa_for(0.0, 0.0) > 0

    def test_kappa_rejects_negative_inputs(self, params):
        with pytest.raises(ParameterError):
            params.kappa_for(-1.0, 0.5)

    def test_delta_in_open_interval(self, params):
        epsilon, tau = 1.0, 0.5
        kappa = params.kappa_for(epsilon, tau)
        delta = params.delta_for(kappa, epsilon, tau)
        assert 0 < delta < kappa / 2 - 2 * epsilon - 2 * params.mu * tau

    def test_delta_rejects_too_small_kappa(self, params):
        with pytest.raises(ParameterError):
            params.delta_for(1.0, 1.0, 0.5)


class TestInsertionDurations:
    def test_static_duration_matches_equation_10(self, params):
        g = 50.0
        expected = (
            20 * (1 + params.mu) / (1 - params.rho)
            + 56 * params.mu
            + (8 + 56 * params.mu) / params.sigma
        ) * g / params.mu
        assert params.insertion_duration(g) == pytest.approx(expected)

    def test_static_duration_scales_linearly(self, params):
        assert params.insertion_duration(100.0) == pytest.approx(
            2 * params.insertion_duration(50.0)
        )

    def test_static_duration_rejects_nonpositive_bound(self, params):
        with pytest.raises(ParameterError):
            params.insertion_duration(0.0)

    def test_dynamic_duration_is_power_of_two(self, tight_params):
        duration = tight_params.insertion_duration_dynamic(10.0, 2.0, 0.5)
        assert math.log2(duration) == pytest.approx(round(math.log2(duration)))

    def test_dynamic_duration_at_least_ell(self, tight_params):
        g, delay, tau = 10.0, 2.0, 0.5
        ell = (1 + tight_params.rho) * (1 + tight_params.mu) * (delay + 2 * tau) + (
            8 * tight_params.b_constant * g / tight_params.mu
        )
        assert tight_params.insertion_duration_dynamic(g, delay, tau) >= ell

    def test_dynamic_duration_rejects_bad_inputs(self, tight_params):
        with pytest.raises(ParameterError):
            tight_params.insertion_duration_dynamic(0.0, 2.0, 0.5)
        with pytest.raises(ParameterError):
            tight_params.insertion_duration_dynamic(10.0, -1.0, 0.5)


class TestLevelsAndGradient:
    def test_levels_grow_with_global_skew(self, params):
        assert params.levels_for(1000.0, 4.0) > params.levels_for(10.0, 4.0)

    def test_levels_at_least_one(self, params):
        assert params.levels_for(1.0, 4.0) == 1

    def test_levels_override(self):
        p = Parameters(rho=0.01, mu=0.1, max_level=7)
        assert p.levels_for(1000.0, 4.0) == 7

    def test_levels_rejects_nonpositive(self, params):
        with pytest.raises(ParameterError):
            params.levels_for(0.0, 4.0)

    def test_gradient_sequence_non_increasing(self, params):
        seq = params.gradient_sequence(100.0, 6)
        assert all(seq[i] >= seq[i + 1] for i in range(1, 6))

    def test_gradient_sequence_starts_at_twice_bound(self, params):
        seq = params.gradient_sequence(100.0, 4)
        assert seq[1] == pytest.approx(200.0)
        assert seq[2] == pytest.approx(200.0)
        assert seq[3] == pytest.approx(200.0 / params.sigma)

    def test_gradient_sequence_rejects_zero_levels(self, params):
        with pytest.raises(ParameterError):
            params.gradient_sequence(100.0, 0)

    def test_gradient_skew_bound_increases_with_distance(self, params):
        g = 100.0
        assert params.gradient_skew_bound(8.0, g) > params.gradient_skew_bound(4.0, g)

    def test_gradient_skew_bound_zero_distance(self, params):
        assert params.gradient_skew_bound(0.0, 100.0) == 0.0

    def test_gradient_skew_bound_sublinear_in_distance_ratio(self, params):
        # The bound per unit distance shrinks as the distance grows
        # (the log(D/d) factor), which is the gradient property's signature.
        g = 1000.0
        per_unit_short = params.gradient_skew_bound(1.0, g) / 1.0
        per_unit_long = params.gradient_skew_bound(100.0, g) / 100.0
        assert per_unit_long < per_unit_short

    def test_gradient_bound_reflects_log_base(self):
        # A larger mu (larger sigma) gives a smaller bound at the same distance.
        loose = Parameters(rho=0.01, mu=0.05)
        tight = Parameters(rho=0.01, mu=0.1)
        assert tight.gradient_skew_bound(2.0, 500.0) <= loose.gradient_skew_bound(2.0, 500.0)

    def test_local_skew_bound_is_single_edge_gradient_bound(self, params):
        assert params.local_skew_bound(4.2, 100.0) == pytest.approx(
            params.gradient_skew_bound(4.2, 100.0)
        )
